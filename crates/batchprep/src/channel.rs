//! A std-only bounded multi-producer multi-consumer channel.
//!
//! `std::sync::mpsc` is single-consumer, but batch preparation needs MPMC in
//! two places: the pinned-buffer pool (any worker returns a slot, any worker
//! claims one) and the prepared-batch stream (many workers produce, the
//! consumer — possibly cloned — drains). This module provides the minimal
//! bounded channel both need, built on `Mutex<VecDeque>` + two condvars.
//!
//! Semantics match the conventional MPMC contract: `send` blocks while the
//! buffer is full and fails once every receiver is gone; `recv` drains
//! buffered messages even after every sender is gone, then reports
//! disconnection. Endpoints are clone-counted; dropping the last endpoint of
//! either side wakes all waiters on the other.

use salient_tensor::sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The message could not be delivered because every receiver was dropped.
/// The unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Every sender was dropped and the buffer is empty.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Why a non-blocking receive returned nothing.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is currently empty (senders still connected).
    Empty,
    /// Every sender was dropped and the buffer is empty.
    Disconnected,
}

/// Why a bounded-wait receive returned nothing.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the buffer still empty.
    Timeout,
    /// Every sender was dropped and the buffer is empty.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// Creates a bounded MPMC channel with room for `cap` in-flight messages.
///
/// # Panics
///
/// Panics if `cap == 0` (rendezvous channels are not needed here).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender { inner: Arc::clone(&inner) },
        Receiver { inner },
    )
}

/// The producing endpoint; clone freely across worker threads.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while the buffer is full. Fails (returning
    /// the value) once every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock_unpoisoned(&self.inner.state);
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.inner.cap {
                st.queue.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = wait_unpoisoned(&self.inner.not_full, st);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.inner.state).senders += 1;
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.inner.state);
        st.senders -= 1;
        if st.senders == 0 {
            // Receivers blocked on an empty buffer must observe disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

/// The consuming endpoint; clone freely across consumer threads.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Takes the next message, blocking while the buffer is empty and at
    /// least one sender is alive.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock_unpoisoned(&self.inner.state);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = wait_unpoisoned(&self.inner.not_empty, st);
        }
    }

    /// Takes the next message if one is buffered, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock_unpoisoned(&self.inner.state);
        match st.queue.pop_front() {
            Some(v) => {
                self.inner.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Like [`Receiver::recv`], but gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        // lint: allow(determinism, monotonic deadline for a caller-supplied timeout; no wall-clock data escapes)
        let deadline = Instant::now() + timeout;
        let mut st = lock_unpoisoned(&self.inner.state);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            // lint: allow(determinism, remaining-time computation against the monotonic deadline above)
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) =
                wait_timeout_unpoisoned(&self.inner.not_empty, st, deadline - now);
            st = guard;
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner.state).queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that yields until every sender disconnects and
    /// the buffer drains.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.inner.state).receivers += 1;
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let buffered = {
            let mut st = lock_unpoisoned(&self.inner.state);
            st.receivers -= 1;
            if st.receivers == 0 {
                // No receiver can ever take these messages; drop them now so
                // resources they own (e.g. pinned staging slots) are released
                // immediately rather than when the last *sender* departs.
                // Senders blocked on a full buffer must observe disconnect.
                self.inner.not_full.notify_all();
                std::mem::take(&mut st.queue)
            } else {
                VecDeque::new()
            }
        };
        // Run the queued messages' destructors outside the channel lock:
        // they may send on other channels (slot-return paths).
        drop(buffered);
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Blocking iterator over a [`Receiver`]; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_blocks_until_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let h = thread::spawn(move || tx.send(2).is_ok());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(h.join().unwrap());
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_drains_after_all_senders_drop() {
        let (tx, rx) = bounded(8);
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(3u32), Err(SendError(3)));
    }

    #[test]
    fn recv_timeout_expires_and_recovers() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_under_contention_delivers_everything_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().collect::<Vec<i32>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> =
            (0..4).flat_map(|p| (0..250).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn queued_messages_drop_when_last_receiver_departs() {
        let (tx, rx) = bounded(4);
        let token = std::sync::Arc::new(());
        tx.send(std::sync::Arc::clone(&token)).unwrap();
        tx.send(std::sync::Arc::clone(&token)).unwrap();
        assert_eq!(std::sync::Arc::strong_count(&token), 3);
        drop(rx);
        // The buffered messages were destroyed eagerly, not parked until the
        // sender also departs.
        assert_eq!(std::sync::Arc::strong_count(&token), 1);
        assert!(tx.send(std::sync::Arc::clone(&token)).is_err());
    }

    #[test]
    fn blocking_iter_ends_on_disconnect() {
        let (tx, rx) = bounded(2);
        let h = thread::spawn(move || {
            for i in 0..10u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
