//! # salient-batchprep
//!
//! SALIENT's shared-memory parallel batch preparation (§4.2): worker threads
//! prepare mini-batches end-to-end (sample, then serially slice features and
//! labels straight into pinned staging memory), pulling work from a
//! lock-free dynamic queue. A PyTorch-multiprocessing emulation — static
//! partitioning plus an extra shared-memory copy — is included as the
//! baseline it replaces.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use salient_graph::DatasetConfig;
//! use salient_batchprep::{run_epoch, PrepConfig};
//!
//! let ds = Arc::new(DatasetConfig::tiny(0).build());
//! let cfg = PrepConfig { batch_size: 32, fanouts: vec![5, 3], ..Default::default() };
//! let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
//! let n = handle.batches.iter().count();
//! let stats = handle.join();
//! assert_eq!(stats.batches, n);
//! ```

#![warn(missing_docs)]

mod pinned;
mod prep;
mod queue;
mod slice;
mod stats;

pub mod channel;

pub use pinned::{PinnedPool, PinnedSlot};
pub use prep::{
    run_epoch, BatchResult, EpochHandle, PrepConfig, PrepMode, PreparedBatch, SamplerKind,
};
pub use queue::{
    make_work_items, CompletionCounter, DynamicQueue, RetryQueue, StaticPartition, WorkItem,
    WorkSource,
};
pub use slice::{slice_batch, slice_labels, sliced_bytes};
pub use stats::{EpochPrepStats, FaultStats, PrepTimings};
