//! A bounded pool of reusable "pinned" staging buffers.
//!
//! In SALIENT, "a batch preparation thread writes sliced tensors directly
//! into pinned memory accessible by the main process" (§4.2). Pinned (page-
//! locked) memory enables asynchronous DMA and cannot be allocated per batch
//! without large costs, so a fixed set of slots is recycled; the bounded pool
//! also provides natural backpressure on how many batches are in flight.
//!
//! Here a slot is a pair of host buffers (packed features at the dataset's
//! dtype — f16 by default, so the staged copy moves half the bytes — plus
//! labels). Returning a slot to the pool is automatic on drop.

use crate::channel::{bounded, Receiver, Sender};
use salient_graph::{FeatureRows, FeatureRowsMut, FeatureSlab};
use salient_tensor::Dtype;

#[derive(Debug)]
struct Buffers {
    features: FeatureSlab,
    labels: Vec<u32>,
}

/// A staging buffer checked out of a [`PinnedPool`]; returns itself to the
/// pool when dropped.
#[derive(Debug)]
pub struct PinnedSlot {
    buffers: Option<Buffers>,
    home: Sender<Buffers>,
    used_features: usize,
    used_labels: usize,
}

impl PinnedSlot {
    /// Resizes the slot for a batch of `num_nodes × dim` features and
    /// `num_labels` labels, growing the backing buffers only when needed
    /// (growth is logged in pool statistics as a slot-overflow in real
    /// systems; here we simply grow).
    pub fn prepare(&mut self, num_nodes: usize, dim: usize, num_labels: usize) {
        // lint: allow(panic-freedom, buffers are only None after Drop runs; reaching this is an API-contract bug, not a runtime fault)
        let b = self.buffers.as_mut().expect("slot already returned");
        let need = num_nodes * dim;
        if b.features.len() < need {
            b.features.resize(need);
        }
        if b.labels.len() < num_labels {
            b.labels.resize(num_labels, 0);
        }
        self.used_features = need;
        self.used_labels = num_labels;
    }

    /// The writable feature region sized by the last [`PinnedSlot::prepare`].
    pub fn features_mut(&mut self) -> FeatureRowsMut<'_> {
        let used = self.used_features;
        // lint: allow(panic-freedom, buffers are only None after Drop runs; unreachable through the public API)
        self.buffers.as_mut().expect("slot already returned").features.view_mut(0, used)
    }

    /// The writable label region.
    pub fn labels_mut(&mut self) -> &mut [u32] {
        let used = self.used_labels;
        // lint: allow(panic-freedom, buffers are only None after Drop runs; unreachable through the public API)
        &mut self.buffers.as_mut().expect("slot already returned").labels[..used]
    }

    /// The filled feature region.
    pub fn features(&self) -> FeatureRows<'_> {
        // lint: allow(panic-freedom, buffers are only None after Drop runs; unreachable through the public API)
        self.buffers.as_ref().expect("slot already returned").features.view(0, self.used_features)
    }

    /// The dtype the slot stages features at.
    pub fn dtype(&self) -> Dtype {
        // lint: allow(panic-freedom, buffers are only None after Drop runs; unreachable through the public API)
        self.buffers.as_ref().expect("slot already returned").features.dtype()
    }

    /// The filled label region.
    pub fn labels(&self) -> &[u32] {
        // lint: allow(panic-freedom, buffers are only None after Drop runs; unreachable through the public API)
        &self.buffers.as_ref().expect("slot already returned").labels[..self.used_labels]
    }

    /// Bytes of payload currently staged in this slot (what a CPU→GPU DMA
    /// would move for features + labels). Feature bytes scale with the
    /// slot's dtype: an f16 pool stages half the bytes of an f32 pool.
    pub fn payload_bytes(&self) -> usize {
        self.used_features * self.dtype().size_of()
            + self.used_labels * std::mem::size_of::<u32>()
    }
}

impl Drop for PinnedSlot {
    fn drop(&mut self) {
        if let Some(buffers) = self.buffers.take() {
            // If the pool is gone the buffers are simply freed.
            let _ = self.home.send(buffers);
        }
    }
}

/// A fixed-size pool of staging slots shared by batch-preparation threads.
#[derive(Debug, Clone)]
pub struct PinnedPool {
    rx: Receiver<Buffers>,
    tx: Sender<Buffers>,
    capacity: usize,
}

impl PinnedPool {
    /// Creates a pool of `slots` buffers staging features at `dtype`, each
    /// pre-sized for `nodes_hint × dim` features and `labels_hint` labels.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize, nodes_hint: usize, dim: usize, labels_hint: usize, dtype: Dtype) -> Self {
        assert!(slots > 0, "pool needs at least one slot");
        let (tx, rx) = bounded(slots);
        for _ in 0..slots {
            tx.send(Buffers {
                features: FeatureSlab::new(dtype, nodes_hint * dim),
                labels: vec![0; labels_hint],
            })
            // lint: allow(panic-freedom, both channel endpoints are held locally while filling; send cannot observe a disconnect)
            .expect("filling fresh pool cannot fail");
        }
        PinnedPool { rx, tx, capacity: slots }
    }

    /// Number of slots in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently available (not checked out).
    pub fn available(&self) -> usize {
        self.rx.len()
    }

    /// Checks out a slot, blocking until one is free. This is the
    /// backpressure point bounding in-flight batches.
    pub fn acquire(&self) -> PinnedSlot {
        let buffers = self
            .rx
            .recv()
            // lint: allow(panic-freedom, the pool owns a Sender clone for its whole lifetime, so recv can never see all senders gone)
            .expect("pool sender lives as long as the pool");
        PinnedSlot {
            buffers: Some(buffers),
            home: self.tx.clone(),
            used_features: 0,
            used_labels: 0,
        }
    }

    /// Tries to check out a slot without blocking.
    pub fn try_acquire(&self) -> Option<PinnedSlot> {
        self.rx.try_recv().ok().map(|buffers| PinnedSlot {
            buffers: Some(buffers),
            home: self.tx.clone(),
            used_features: 0,
            used_labels: 0,
        })
    }

    /// Checks out a slot, giving up after `timeout`. Preparation workers use
    /// this so an epoch can be cancelled while every slot is parked in
    /// not-yet-consumed batches.
    pub fn acquire_timeout(&self, timeout: std::time::Duration) -> Option<PinnedSlot> {
        self.rx.recv_timeout(timeout).ok().map(|buffers| PinnedSlot {
            buffers: Some(buffers),
            home: self.tx.clone(),
            used_features: 0,
            used_labels: 0,
        })
    }

    /// Checks out a slot, waiting until one frees or `cancel` is observed
    /// set; returns `None` on cancellation.
    ///
    /// The wait is a condvar sleep, not a spin: cancelling an epoch drops
    /// the prepared-batch receiver, which destroys any parked batches and
    /// returns their slots to the pool — waking this waiter promptly. The
    /// internal timeout slice only bounds the pathological case where no
    /// slot ever returns.
    pub fn acquire_cancellable(
        &self,
        cancel: &std::sync::atomic::AtomicBool,
    ) -> Option<PinnedSlot> {
        use std::sync::atomic::Ordering;
        const SLICE: std::time::Duration = std::time::Duration::from_millis(50);
        loop {
            if cancel.load(Ordering::Acquire) {
                return None;
            }
            match self.rx.recv_timeout(SLICE) {
                Ok(buffers) => {
                    let slot = PinnedSlot {
                        buffers: Some(buffers),
                        home: self.tx.clone(),
                        used_features: 0,
                        used_labels: 0,
                    };
                    if cancel.load(Ordering::Acquire) {
                        // Cancelled while waiting: hand the slot straight
                        // back (via drop) and report cancellation.
                        return None;
                    }
                    return Some(slot);
                }
                Err(crate::channel::RecvTimeoutError::Timeout) => continue,
                Err(crate::channel::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_release_cycles() {
        let pool = PinnedPool::new(2, 16, 4, 8, Dtype::F16);
        assert_eq!(pool.available(), 2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.available(), 0);
        assert!(pool.try_acquire().is_none(), "pool exhausted");
        drop(a);
        assert_eq!(pool.available(), 1);
        drop(b);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn prepare_grows_when_needed() {
        let pool = PinnedPool::new(1, 2, 4, 2, Dtype::F16);
        let mut slot = pool.acquire();
        slot.prepare(100, 4, 50);
        assert_eq!(slot.features_mut().len(), 400);
        assert_eq!(slot.labels_mut().len(), 50);
        assert_eq!(slot.payload_bytes(), 400 * 2 + 50 * 4);
    }

    #[test]
    fn f32_pool_stages_double_the_feature_bytes() {
        let pool = PinnedPool::new(1, 2, 4, 2, Dtype::F32);
        let mut slot = pool.acquire();
        slot.prepare(100, 4, 50);
        assert_eq!(slot.dtype(), Dtype::F32);
        assert_eq!(slot.payload_bytes(), 400 * 4 + 50 * 4);
    }

    #[test]
    fn slot_contents_survive_round_trip() {
        let pool = PinnedPool::new(1, 4, 1, 4, Dtype::F16);
        {
            let mut slot = pool.acquire();
            slot.prepare(2, 1, 2);
            let staged = FeatureSlab::from_f32(Dtype::F16, &[1.5, -2.0]);
            slot.features_mut().copy_from(staged.rows());
            slot.labels_mut()[1] = 42;
            assert_eq!(slot.features().to_f32_vec(), vec![1.5, -2.0]);
            assert_eq!(slot.labels()[1], 42);
        }
        // Buffer reuse is an implementation detail; what matters is the pool
        // refilled.
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn cancellable_acquire_returns_on_cancel() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let pool = PinnedPool::new(1, 1, 1, 1, Dtype::F16);
        let held = pool.acquire(); // exhaust the pool
        let cancel = Arc::new(AtomicBool::new(false));
        let pool2 = pool.clone();
        let cancel2 = Arc::clone(&cancel);
        let waiter = std::thread::spawn(move || pool2.acquire_cancellable(&cancel2).is_none());
        std::thread::sleep(std::time::Duration::from_millis(10));
        cancel.store(true, Ordering::Release);
        assert!(waiter.join().unwrap(), "cancelled acquire must yield None");
        drop(held);
        assert_eq!(pool.available(), 1, "no slot may leak through cancellation");
    }

    #[test]
    fn cancellable_acquire_gets_slot_when_free() {
        use std::sync::atomic::AtomicBool;
        let pool = PinnedPool::new(1, 1, 1, 1, Dtype::F16);
        let cancel = AtomicBool::new(false);
        assert!(pool.acquire_cancellable(&cancel).is_some());
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let pool = PinnedPool::new(1, 1, 1, 1, Dtype::F16);
        let slot = pool.acquire();
        let pool2 = pool.clone();
        let handle = std::thread::spawn(move || {
            let _slot = pool2.acquire(); // blocks until main thread drops
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(slot);
        assert!(handle.join().unwrap());
    }
}
