//! The batch-preparation worker pool.
//!
//! Each worker thread prepares batches *end-to-end* — neighborhood sampling
//! followed by serial slicing into a pinned staging slot — exactly the
//! SALIENT design of §4.2. Two modes are provided:
//!
//! * [`PrepMode::SharedMemory`] (SALIENT): zero-copy — the worker slices
//!   directly into the pinned slot the consumer will hand to the device.
//! * [`PrepMode::Multiprocessing`] (PyTorch-DataLoader emulation): the
//!   worker slices into a private buffer and then *copies* it into the slot,
//!   reproducing the POSIX-shared-memory hop that "effectively halves the
//!   observed memory bandwidth"; work is also partitioned statically.

use crate::channel::{bounded, Receiver};
use crate::pinned::{PinnedPool, PinnedSlot};
use crate::queue::{make_work_items, DynamicQueue, StaticPartition, WorkSource};
use crate::slice::slice_batch;
use crate::stats::{EpochPrepStats, PrepTimings};
use salient_graph::{Dataset, NodeId};
use salient_sampler::{FastSampler, MessageFlowGraph, PygSampler};
use salient_tensor::F16;
use std::sync::Arc;
use std::time::Instant;

/// Work-distribution and copy behaviour of the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrepMode {
    /// SALIENT: shared-memory threads, dynamic queue, slice straight into
    /// pinned memory.
    SharedMemory,
    /// Emulated PyTorch multiprocessing: static partitioning, private slice
    /// buffer, extra copy into the slot.
    Multiprocessing,
}

/// Which neighborhood sampler the workers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// The tuned SALIENT sampler.
    Fast,
    /// The STL-style PyG baseline sampler.
    Pyg,
}

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct PrepConfig {
    /// Number of preparation threads.
    pub num_workers: usize,
    /// Per-hop sampling fanouts (PyG order).
    pub fanouts: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of pinned staging slots (bounds in-flight batches).
    pub slots: usize,
    /// Work distribution / copy mode.
    pub mode: PrepMode,
    /// Sampler implementation.
    pub sampler: SamplerKind,
    /// Base RNG seed (each worker derives its own stream).
    pub seed: u64,
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig {
            num_workers: 2,
            fanouts: vec![15, 10, 5],
            batch_size: 1024,
            slots: 4,
            mode: PrepMode::SharedMemory,
            sampler: SamplerKind::Fast,
            seed: 0,
        }
    }
}

/// A fully prepared mini-batch: sampled MFG plus staged features/labels in a
/// pinned slot, ready for "transfer".
#[derive(Debug)]
pub struct PreparedBatch {
    /// Sequential batch index within the epoch.
    pub batch_id: usize,
    /// The sampled message-flow graph.
    pub mfg: MessageFlowGraph,
    /// Staged features + labels (returns to the pool on drop).
    pub slot: PinnedSlot,
    /// Per-stage preparation cost.
    pub timings: PrepTimings,
}

enum AnySampler {
    Fast(FastSampler),
    Pyg(PygSampler),
}

impl AnySampler {
    fn sample(
        &mut self,
        graph: &salient_graph::CsrGraph,
        batch: &[NodeId],
        fanouts: &[usize],
    ) -> MessageFlowGraph {
        match self {
            AnySampler::Fast(s) => s.sample(graph, batch, fanouts),
            AnySampler::Pyg(s) => s.sample(graph, batch, fanouts),
        }
    }
}

/// Handle to an in-flight epoch of batch preparation: iterate the receiver
/// to consume batches, then call [`EpochHandle::join`] for worker stats.
#[derive(Debug)]
pub struct EpochHandle {
    /// Channel of prepared batches, in completion order.
    pub batches: Receiver<PreparedBatch>,
    handles: Vec<std::thread::JoinHandle<EpochPrepStats>>,
    cancel: Arc<std::sync::atomic::AtomicBool>,
}

impl EpochHandle {
    /// Waits for every worker and returns merged epoch statistics.
    ///
    /// Workers that have not finished are cancelled: batches already sitting
    /// in the channel are discarded and their staging slots recycled.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn join(self) -> EpochPrepStats {
        self.cancel
            .store(true, std::sync::atomic::Ordering::Release);
        drop(self.batches);
        let mut total = EpochPrepStats::default();
        for h in self.handles {
            total.merge(&h.join().expect("batch-prep worker panicked"));
        }
        total
    }
}

/// Launches batch preparation for one epoch over `order` (an already
/// shuffled list of training nodes).
///
/// Returns immediately; batches stream through the handle's channel while
/// workers run. The pinned-slot pool bounds the number of unconsumed
/// batches.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero workers, zero batch
/// size).
pub fn run_epoch(dataset: &Arc<Dataset>, order: &[NodeId], cfg: &PrepConfig) -> EpochHandle {
    assert!(cfg.num_workers > 0, "need at least one worker");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let items = make_work_items(order.len(), cfg.batch_size);
    let source: Arc<dyn WorkSource> = match cfg.mode {
        PrepMode::SharedMemory => DynamicQueue::new(items),
        PrepMode::Multiprocessing => StaticPartition::new(items, cfg.num_workers),
    };
    // Size slots generously from the fanout product to avoid growth in the
    // common case.
    let expansion: usize = cfg.fanouts.iter().map(|f| f + 1).product();
    let nodes_hint = cfg.batch_size * expansion.min(256);
    let pool = PinnedPool::new(cfg.slots, nodes_hint, dataset.features.dim(), cfg.batch_size);
    let (tx, rx) = bounded::<PreparedBatch>(cfg.slots);
    let order: Arc<Vec<NodeId>> = Arc::new(order.to_vec());
    let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let mut handles = Vec::with_capacity(cfg.num_workers);
    for w in 0..cfg.num_workers {
        let dataset = Arc::clone(dataset);
        let order = Arc::clone(&order);
        let source = Arc::clone(&source);
        let pool = pool.clone();
        let tx = tx.clone();
        let cfg = cfg.clone();
        let cancel = Arc::clone(&cancel);
        handles.push(std::thread::spawn(move || {
            let mut sampler = match cfg.sampler {
                SamplerKind::Fast => AnySampler::Fast(FastSampler::new(cfg.seed ^ (w as u64) << 32)),
                SamplerKind::Pyg => AnySampler::Pyg(PygSampler::new(cfg.seed ^ (w as u64) << 32)),
            };
            let mut private: Vec<F16> = Vec::new();
            let mut private_labels: Vec<u32> = Vec::new();
            let mut stats = EpochPrepStats::default();
            let dim = dataset.features.dim();
            'work: while let Some(item) = source.next(w) {
                use std::sync::atomic::Ordering;
                if cancel.load(Ordering::Acquire) {
                    break;
                }
                let batch_nodes = &order[item.start..item.end];

                let t0 = Instant::now();
                let mfg = sampler.sample(&dataset.graph, batch_nodes, &cfg.fanouts);
                let sample = t0.elapsed();

                // Slots can all be parked in unconsumed batches of a
                // cancelled epoch; poll with a timeout so cancellation is
                // observed instead of deadlocking on `acquire`.
                let mut slot = loop {
                    if cancel.load(Ordering::Acquire) {
                        break 'work;
                    }
                    match pool.acquire_timeout(std::time::Duration::from_millis(20)) {
                        Some(s) => break s,
                        None => continue,
                    }
                };
                slot.prepare(mfg.num_nodes(), dim, mfg.batch_size());

                let t1 = Instant::now();
                let mut copy = std::time::Duration::ZERO;
                match cfg.mode {
                    PrepMode::SharedMemory => {
                        // Zero-copy: slice straight into the pinned slot.
                        slice_batch_into(&dataset, &mfg, &mut slot);
                    }
                    PrepMode::Multiprocessing => {
                        // Slice into worker-private memory…
                        private.resize(mfg.num_nodes() * dim, F16::ZERO);
                        private_labels.resize(mfg.batch_size(), 0);
                        slice_batch(&dataset, &mfg, &mut private, &mut private_labels);
                        // …then pay the shared-memory copy.
                        let t2 = Instant::now();
                        slot.features_mut().copy_from_slice(&private);
                        slot.labels_mut().copy_from_slice(&private_labels);
                        copy = t2.elapsed();
                    }
                }
                let slice = t1.elapsed() - copy;

                let timings = PrepTimings { sample, slice, copy };
                stats.add(
                    mfg.num_nodes(),
                    mfg.num_edges(),
                    slot.payload_bytes(),
                    timings,
                );
                let prepared = PreparedBatch {
                    batch_id: item.batch_id,
                    mfg,
                    slot,
                    timings,
                };
                if tx.send(prepared).is_err() {
                    break; // consumer hung up: stop early
                }
            }
            stats
        }));
    }
    EpochHandle {
        batches: rx,
        handles,
        cancel,
    }
}

/// Slices a batch directly into a pinned slot (borrow-splitting helper).
fn slice_batch_into(dataset: &Dataset, mfg: &MessageFlowGraph, slot: &mut PinnedSlot) {
    // Feature and label regions are distinct buffers inside the slot, but the
    // accessor borrows are exclusive; do them sequentially.
    dataset.features.slice_into(&mfg.node_ids, slot.features_mut());
    let batch = &mfg.node_ids[..mfg.batch_size()];
    crate::slice::slice_labels(&dataset.labels, batch, slot.labels_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    fn dataset() -> Arc<Dataset> {
        Arc::new(DatasetConfig::tiny(20).build())
    }

    fn run(mode: PrepMode, workers: usize) -> (Vec<usize>, EpochPrepStats) {
        let ds = dataset();
        let cfg = PrepConfig {
            num_workers: workers,
            fanouts: vec![5, 3],
            batch_size: 32,
            slots: 3,
            mode,
            sampler: SamplerKind::Fast,
            seed: 1,
        };
        let order = ds.splits.train.clone();
        let handle = run_epoch(&ds, &order, &cfg);
        let mut ids: Vec<usize> = handle.batches.iter().map(|b| {
            b.mfg.validate().unwrap();
            assert_eq!(b.slot.labels().len(), b.mfg.batch_size());
            b.batch_id
        }).collect();
        let stats = handle.join();
        ids.sort_unstable();
        (ids, stats)
    }

    #[test]
    fn shared_memory_mode_prepares_every_batch_once() {
        let ds = dataset();
        let expected = ds.splits.train.len().div_ceil(32);
        let (ids, stats) = run(PrepMode::SharedMemory, 3);
        assert_eq!(ids, (0..expected).collect::<Vec<_>>());
        assert_eq!(stats.batches, expected);
        assert_eq!(stats.timings.copy, std::time::Duration::ZERO);
    }

    #[test]
    fn multiprocessing_mode_pays_copy() {
        let ds = dataset();
        let expected = ds.splits.train.len().div_ceil(32);
        let (ids, stats) = run(PrepMode::Multiprocessing, 2);
        assert_eq!(ids.len(), expected);
        assert!(stats.timings.copy > std::time::Duration::ZERO);
    }

    #[test]
    fn sliced_features_match_dataset() {
        let ds = dataset();
        let cfg = PrepConfig {
            num_workers: 1,
            fanouts: vec![4],
            batch_size: 16,
            slots: 2,
            mode: PrepMode::SharedMemory,
            sampler: SamplerKind::Fast,
            seed: 5,
        };
        let order: Vec<NodeId> = ds.splits.train[..32].to_vec();
        let handle = run_epoch(&ds, &order, &cfg);
        for b in handle.batches.iter() {
            let dim = ds.features.dim();
            for (i, &v) in b.mfg.node_ids.iter().enumerate() {
                assert_eq!(&b.slot.features()[i * dim..(i + 1) * dim], ds.features.row(v));
            }
            for (i, &v) in b.mfg.node_ids[..b.mfg.batch_size()].iter().enumerate() {
                assert_eq!(b.slot.labels()[i], ds.labels[v as usize]);
            }
        }
        handle.join();
    }

    #[test]
    fn pyg_sampler_mode_works() {
        let ds = dataset();
        let cfg = PrepConfig {
            sampler: SamplerKind::Pyg,
            batch_size: 32,
            fanouts: vec![5, 3],
            ..Default::default()
        };
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
        let n = handle.batches.iter().count();
        let stats = handle.join();
        assert_eq!(n, stats.batches);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn consumer_can_drop_early() {
        let ds = dataset();
        let cfg = PrepConfig {
            batch_size: 8,
            fanouts: vec![3],
            ..Default::default()
        };
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
        let _first = handle.batches.recv().unwrap();
        // Dropping the handle (and receiver) must not deadlock the workers.
        let _ = handle.join();
    }
}
