//! The batch-preparation worker pool.
//!
//! Each worker thread prepares batches *end-to-end* — neighborhood sampling
//! followed by serial slicing into a pinned staging slot — exactly the
//! SALIENT design of §4.2. Two modes are provided:
//!
//! * [`PrepMode::SharedMemory`] (SALIENT): zero-copy — the worker slices
//!   directly into the pinned slot the consumer will hand to the device.
//! * [`PrepMode::Multiprocessing`] (PyTorch-DataLoader emulation): the
//!   worker slices into a private buffer and then *copies* it into the slot,
//!   reproducing the POSIX-shared-memory hop that "effectively halves the
//!   observed memory bandwidth"; work is also partitioned statically.
//!
//! # Failure model
//!
//! Preparation is supervised. A panic while preparing one work item is
//! caught on the worker, the item is requeued with a bounded retry budget
//! (the retry sampler is re-seeded from the batch id and attempt so retries
//! are deterministic no matter which worker picks them up), and a batch that
//! exhausts its budget is reported as a terminal
//! [`BatchResult::Failed`] marker — the consumer never waits on a batch that
//! will not arrive, and the staging slot always returns to the pool. A panic
//! that kills a whole worker thread is observed by the epoch supervisor,
//! which respawns a replacement (up to [`PrepConfig::respawn_budget`]) or,
//! when the worker set collapses, finishes the epoch with inline
//! preparation on the supervisor thread. Per-epoch fault activity is
//! surfaced as [`FaultStats`] next to [`EpochPrepStats`].

use crate::channel::{bounded, Receiver, Sender};
use crate::pinned::{PinnedPool, PinnedSlot};
use crate::queue::{make_work_items, DynamicQueue, RetryQueue, StaticPartition, WorkItem, WorkSource};
use crate::slice::slice_batch;
use crate::stats::{EpochPrepStats, FaultStats, PrepTimings};
use salient_fault as fault;
use salient_graph::{Dataset, NodeId};
use salient_sampler::{FastSampler, MessageFlowGraph, PygSampler};
use salient_graph::FeatureSlab;
use salient_trace::{names, Counter, Histogram, Trace, NO_BATCH};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Work-distribution and copy behaviour of the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrepMode {
    /// SALIENT: shared-memory threads, dynamic queue, slice straight into
    /// pinned memory.
    SharedMemory,
    /// Emulated PyTorch multiprocessing: static partitioning, private slice
    /// buffer, extra copy into the slot.
    Multiprocessing,
}

/// Which neighborhood sampler the workers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// The tuned SALIENT sampler.
    Fast,
    /// The STL-style PyG baseline sampler.
    Pyg,
}

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct PrepConfig {
    /// Number of preparation threads.
    pub num_workers: usize,
    /// Per-hop sampling fanouts (PyG order).
    pub fanouts: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of pinned staging slots (bounds in-flight batches).
    pub slots: usize,
    /// Work distribution / copy mode.
    pub mode: PrepMode,
    /// Sampler implementation.
    pub sampler: SamplerKind,
    /// Base RNG seed (each worker derives its own stream).
    pub seed: u64,
    /// Extra attempts granted to a work item whose preparation panicked
    /// (0 = fail immediately on the first panic).
    pub retry_budget: u32,
    /// Replacement worker threads the supervisor may spawn in one epoch
    /// after whole-worker deaths.
    pub respawn_budget: usize,
    /// Tracing handle: workers record per-batch sample/slice/copy spans,
    /// slot-wait backpressure, and fault events against it. The default
    /// disabled handle makes every recording site a no-op (no clock reads
    /// beyond the `PrepTimings` stamps, no allocation).
    pub trace: Trace,
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig {
            num_workers: 2,
            fanouts: vec![15, 10, 5],
            batch_size: 1024,
            slots: 4,
            mode: PrepMode::SharedMemory,
            sampler: SamplerKind::Fast,
            seed: 0,
            retry_budget: 1,
            respawn_budget: 1,
            trace: Trace::disabled(),
        }
    }
}

/// A fully prepared mini-batch: sampled MFG plus staged features/labels in a
/// pinned slot, ready for "transfer".
#[derive(Debug)]
pub struct PreparedBatch {
    /// Sequential batch index within the epoch.
    pub batch_id: usize,
    /// The sampled message-flow graph.
    pub mfg: MessageFlowGraph,
    /// Staged features + labels (returns to the pool on drop).
    pub slot: PinnedSlot,
    /// Per-stage preparation cost.
    pub timings: PrepTimings,
}

/// One message on the prepared-batch stream: either a usable batch or a
/// terminal failure marker, so consumers tracking batch ids never wait on a
/// batch that will not arrive.
#[derive(Debug)]
pub enum BatchResult {
    /// The batch was prepared successfully.
    Ready(PreparedBatch),
    /// The batch's preparation panicked on every attempt.
    Failed {
        /// Sequential batch index within the epoch.
        batch_id: usize,
        /// Total attempts consumed (1 + retries).
        attempts: u32,
    },
}

impl BatchResult {
    /// The batch id this message concerns.
    pub fn batch_id(&self) -> usize {
        match self {
            BatchResult::Ready(b) => b.batch_id,
            BatchResult::Failed { batch_id, .. } => *batch_id,
        }
    }

    /// Unwraps a prepared batch, discarding failure markers.
    pub fn ready(self) -> Option<PreparedBatch> {
        match self {
            BatchResult::Ready(b) => Some(b),
            BatchResult::Failed { .. } => None,
        }
    }
}

enum AnySampler {
    Fast(FastSampler),
    Pyg(PygSampler),
}

impl AnySampler {
    fn new(kind: SamplerKind, seed: u64) -> AnySampler {
        match kind {
            SamplerKind::Fast => AnySampler::Fast(FastSampler::new(seed)),
            SamplerKind::Pyg => AnySampler::Pyg(PygSampler::new(seed)),
        }
    }

    fn sample(
        &mut self,
        graph: &salient_graph::CsrGraph,
        batch: &[NodeId],
        fanouts: &[usize],
    ) -> MessageFlowGraph {
        match self {
            AnySampler::Fast(s) => s.sample(graph, batch, fanouts),
            AnySampler::Pyg(s) => s.sample(graph, batch, fanouts),
        }
    }
}

/// Fault counters shared by workers and the supervisor (lock-free updates,
/// snapshotted into [`FaultStats`] at epoch end).
#[derive(Debug, Default)]
struct SharedFaultStats {
    item_panics: AtomicUsize,
    retries: AtomicUsize,
    failed_batches: AtomicUsize,
    worker_panics: AtomicUsize,
    respawns: AtomicUsize,
    degraded_inline: AtomicBool,
}

impl SharedFaultStats {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            item_panics: self.item_panics.load(Ordering::Acquire),
            retries: self.retries.load(Ordering::Acquire),
            failed_batches: self.failed_batches.load(Ordering::Acquire),
            worker_panics: self.worker_panics.load(Ordering::Acquire),
            respawns: self.respawns.load(Ordering::Acquire),
            degraded_inline: self.degraded_inline.load(Ordering::Acquire),
        }
    }
}

/// Metric handles looked up once per epoch so the per-batch hot path is a
/// handful of relaxed atomic adds (no registry locks, no allocation).
struct PrepInstruments {
    batches: Counter,
    nodes: Counter,
    edges: Counter,
    bytes: Counter,
    batch_ns: Histogram,
}

impl PrepInstruments {
    fn new(trace: &Trace) -> PrepInstruments {
        PrepInstruments {
            batches: trace.counter(names::counters::BATCHES),
            nodes: trace.counter(names::counters::PREP_NODES),
            edges: trace.counter(names::counters::PREP_EDGES),
            bytes: trace.counter(names::counters::PREP_BYTES),
            batch_ns: trace.histogram(names::hists::PREP_BATCH_NS),
        }
    }
}

/// Everything a worker (or the inline fallback) needs, shared by Arc so the
/// supervisor can respawn workers with identical context.
struct WorkerCtx {
    dataset: Arc<Dataset>,
    order: Arc<Vec<NodeId>>,
    source: Arc<dyn WorkSource>,
    retries: Arc<RetryQueue>,
    pool: PinnedPool,
    tx: Sender<BatchResult>,
    cfg: PrepConfig,
    cancel: Arc<AtomicBool>,
    faults: Arc<SharedFaultStats>,
    instruments: PrepInstruments,
}

/// Exit notifications workers send the supervisor. Clean exits carry the
/// worker's stats; panics are reported by a drop guard during unwind.
enum WorkerMsg {
    Clean { id: usize, stats: EpochPrepStats },
    Panicked { id: usize },
}

/// Reports a worker death to the supervisor if the thread unwinds before
/// the guard is disarmed.
struct ExitGuard {
    id: usize,
    tx: Sender<WorkerMsg>,
    armed: bool,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(WorkerMsg::Panicked { id: self.id });
        }
    }
}

fn worker_seed(cfg_seed: u64, worker: usize) -> u64 {
    cfg_seed ^ (worker as u64) << 32
}

fn retry_seed(cfg_seed: u64, batch_id: usize, attempt: u32) -> u64 {
    // Independent of which worker runs the retry: attempt n of batch b is
    // the same sample stream on every run and every schedule.
    cfg_seed ^ 0x5EED_0000 ^ ((batch_id as u64) << 8) ^ u64::from(attempt)
}

/// Handle to an in-flight epoch of batch preparation: iterate the receiver
/// to consume batches, then call [`EpochHandle::join`] for worker stats.
#[derive(Debug)]
pub struct EpochHandle {
    /// Channel of prepared batches (and failure markers), in completion
    /// order.
    pub batches: Receiver<BatchResult>,
    supervisor: std::thread::JoinHandle<(EpochPrepStats, FaultStats)>,
    cancel: Arc<AtomicBool>,
    pool: PinnedPool,
}

impl EpochHandle {
    /// Waits for every worker and returns merged epoch statistics.
    ///
    /// Workers that have not finished are cancelled: batches already sitting
    /// in the channel are discarded and their staging slots recycled.
    ///
    /// # Panics
    ///
    /// Panics only if the supervisor thread itself panicked (worker panics
    /// are supervised, counted, and survived).
    pub fn join(self) -> EpochPrepStats {
        self.join_detailed().0
    }

    /// Like [`EpochHandle::join`], additionally returning the epoch's
    /// fault-handling activity.
    ///
    /// # Panics
    ///
    /// Panics only if the supervisor thread itself panicked.
    pub fn join_detailed(self) -> (EpochPrepStats, FaultStats) {
        self.cancel.store(true, Ordering::Release);
        // Dropping the receiver destroys parked batches, returning their
        // slots to the pool and waking any worker blocked on acquire.
        drop(self.batches);
        // lint: allow(panic-freedom, propagating a supervisor panic to the caller is the documented join contract)
        self.supervisor.join().expect("epoch supervisor panicked")
    }

    /// The staging-slot pool backing this epoch (diagnostics: after the
    /// epoch is fully consumed and joined, `pool().available()` must equal
    /// `pool().capacity()` — anything less is a leaked slot).
    pub fn pool(&self) -> &PinnedPool {
        &self.pool
    }
}

/// Launches batch preparation for one epoch over `order` (an already
/// shuffled list of training nodes).
///
/// Returns immediately; batches stream through the handle's channel while
/// workers run. The pinned-slot pool bounds the number of unconsumed
/// batches.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero workers, zero batch
/// size).
pub fn run_epoch(dataset: &Arc<Dataset>, order: &[NodeId], cfg: &PrepConfig) -> EpochHandle {
    assert!(cfg.num_workers > 0, "need at least one worker");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let items = make_work_items(order.len(), cfg.batch_size);
    let source: Arc<dyn WorkSource> = match cfg.mode {
        PrepMode::SharedMemory => DynamicQueue::new(items),
        PrepMode::Multiprocessing => StaticPartition::new(items, cfg.num_workers),
    };
    // Size slots generously from the fanout product to avoid growth in the
    // common case.
    let expansion: usize = cfg.fanouts.iter().map(|f| f + 1).product();
    let nodes_hint = cfg.batch_size * expansion.min(256);
    let pool = PinnedPool::new(
        cfg.slots,
        nodes_hint,
        dataset.features.dim(),
        cfg.batch_size,
        dataset.features.dtype(),
    );
    let (tx, rx) = bounded::<BatchResult>(cfg.slots);
    let cancel = Arc::new(AtomicBool::new(false));

    let ctx = Arc::new(WorkerCtx {
        dataset: Arc::clone(dataset),
        order: Arc::new(order.to_vec()),
        source,
        retries: Arc::new(RetryQueue::new()),
        pool: pool.clone(),
        tx,
        instruments: PrepInstruments::new(&cfg.trace),
        cfg: cfg.clone(),
        cancel: Arc::clone(&cancel),
        faults: Arc::new(SharedFaultStats::default()),
    });

    let supervisor = {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("salient-prep-supervisor".to_string())
            .spawn(move || supervise_epoch(&ctx))
            // lint: allow(panic-freedom, thread-spawn failure is unrecoverable resource exhaustion at epoch start)
            .expect("failed to spawn epoch supervisor")
    };

    EpochHandle {
        batches: rx,
        supervisor,
        cancel,
        pool,
    }
}

/// Spawns one (possibly replacement) worker with `id`.
fn spawn_worker(
    ctx: &Arc<WorkerCtx>,
    exit_tx: &Sender<WorkerMsg>,
    id: usize,
) -> std::thread::JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    let exit_tx = exit_tx.clone();
    std::thread::Builder::new()
        .name(format!("salient-prep-{id}"))
        .spawn(move || {
            let mut guard = ExitGuard { id, tx: exit_tx, armed: true };
            let stats = worker_loop(&ctx, id, false);
            guard.armed = false;
            let _ = guard.tx.send(WorkerMsg::Clean { id, stats });
        })
        // lint: allow(panic-freedom, thread-spawn failure is unrecoverable resource exhaustion; the respawn budget cannot help)
        .expect("failed to spawn batch-prep worker")
}

/// Runs the epoch's worker set to completion, respawning dead workers up to
/// the budget and degrading to inline preparation if the set collapses.
fn supervise_epoch(ctx: &Arc<WorkerCtx>) -> (EpochPrepStats, FaultStats) {
    let n = ctx.cfg.num_workers;
    // Every worker lifetime sends exactly one exit message; size the channel
    // so no exit send can ever block.
    let (exit_tx, exit_rx) = bounded::<WorkerMsg>(n + ctx.cfg.respawn_budget + 1);
    let mut handles: Vec<Option<std::thread::JoinHandle<()>>> = Vec::with_capacity(n);
    for id in 0..n {
        handles.push(Some(spawn_worker(ctx, &exit_tx, id)));
    }

    let mut total = EpochPrepStats::default();
    let mut live = n;
    let mut respawns_used = 0usize;
    while live > 0 {
        let Ok(msg) = exit_rx.recv() else { break };
        match msg {
            WorkerMsg::Clean { id, stats } => {
                total.merge(&stats);
                if let Some(h) = handles.get_mut(id).and_then(Option::take) {
                    let _ = h.join();
                }
                live -= 1;
            }
            WorkerMsg::Panicked { id } => {
                ctx.faults.worker_panics.fetch_add(1, Ordering::AcqRel);
                ctx.cfg.trace.add(names::counters::WORKER_PANICS, 1);
                ctx.cfg.trace.instant(names::events::WORKER_PANIC, id as u64);
                if let Some(h) = handles.get_mut(id).and_then(Option::take) {
                    let _ = h.join(); // reap; the payload was already counted
                }
                let work_left =
                    ctx.source.remaining() > 0 || !ctx.retries.is_empty();
                if work_left
                    && !ctx.cancel.load(Ordering::Acquire)
                    && respawns_used < ctx.cfg.respawn_budget
                {
                    respawns_used += 1;
                    ctx.faults.respawns.fetch_add(1, Ordering::AcqRel);
                    ctx.cfg.trace.add(names::counters::RESPAWNS, 1);
                    ctx.cfg.trace.instant(names::events::RESPAWN, id as u64);
                    // Reuse the dead worker's id: under static partitioning
                    // the id *is* the partition, so the replacement inherits
                    // the orphaned items.
                    handles[id] = Some(spawn_worker(ctx, &exit_tx, id));
                } else {
                    live -= 1;
                }
            }
        }
    }
    drop(exit_tx);

    // The whole worker set is gone. If unclaimed work remains (collapse
    // before the queue drained), finish the epoch inline on this thread so
    // the consumer still sees every batch (prepared or failed).
    if !ctx.cancel.load(Ordering::Acquire)
        && (ctx.source.remaining() > 0 || !ctx.retries.is_empty())
    {
        ctx.faults.degraded_inline.store(true, Ordering::Release);
        ctx.cfg.trace.add(names::counters::DEGRADED, 1);
        ctx.cfg.trace.instant(names::events::DEGRADED_INLINE, NO_BATCH);
        let stats = worker_loop(ctx, 0, true);
        total.merge(&stats);
    }

    (total, ctx.faults.snapshot())
}

/// Claims the next unit of work: pending retries first, then the shared
/// source. The inline fallback polls every partition so statically
/// partitioned items orphaned by dead workers are still prepared.
fn next_work(ctx: &WorkerCtx, worker: usize, inline: bool) -> Option<(WorkItem, u32)> {
    if let Some(pending) = ctx.retries.pop() {
        return Some(pending);
    }
    if inline {
        (0..ctx.cfg.num_workers).find_map(|w| ctx.source.next(w).map(|i| (i, 0)))
    } else {
        ctx.source.next(worker).map(|i| (i, 0))
    }
}

/// The per-worker epoch loop. Item preparation runs under `catch_unwind`;
/// a panicking item is retried (with a re-seeded sampler) until its budget
/// is spent and then reported as [`BatchResult::Failed`].
fn worker_loop(ctx: &WorkerCtx, worker: usize, inline: bool) -> EpochPrepStats {
    if !inline {
        // Whole-worker fault site: kills the thread itself, exercising the
        // supervisor rather than the per-item guard.
        fault::fire(fault::sites::PREP_WORKER, worker as u64);
    }
    let mut sampler = AnySampler::new(ctx.cfg.sampler, worker_seed(ctx.cfg.seed, worker));
    let mut private = FeatureSlab::new(ctx.dataset.features.dtype(), 0);
    let mut private_labels: Vec<u32> = Vec::new();
    let mut stats = EpochPrepStats::default();
    while !ctx.cancel.load(Ordering::Acquire) {
        let Some((item, attempt)) = next_work(ctx, worker, inline) else {
            break;
        };
        // Retries get a fresh sampler seeded from the batch and attempt so
        // the retry is deterministic regardless of scheduling; attempt 0
        // uses the worker's persistent sampler (the fast path).
        let mut retry_sampler = (attempt > 0)
            .then(|| AnySampler::new(ctx.cfg.sampler, retry_seed(ctx.cfg.seed, item.batch_id, attempt)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let s = retry_sampler.as_mut().unwrap_or(&mut sampler);
            prepare_item(ctx, s, &item, &mut private, &mut private_labels, &mut stats)
        }));
        match outcome {
            Ok(Some(prepared)) => {
                if fault::fire(fault::sites::PREP_SEND, item.batch_id as u64) {
                    // Injected message drop: the batch is lost, but its slot
                    // returns to the pool as `prepared` drops here.
                    continue;
                }
                if ctx.tx.send(BatchResult::Ready(prepared)).is_err() {
                    break; // consumer hung up: stop early
                }
            }
            Ok(None) => break, // cancelled while waiting for a slot
            Err(_panic) => {
                ctx.faults.item_panics.fetch_add(1, Ordering::AcqRel);
                ctx.cfg.trace.add(names::counters::ITEM_PANICS, 1);
                // The shared sampler may have been mid-update when it
                // unwound; rebuild it before touching another batch.
                if retry_sampler.is_none() {
                    sampler = AnySampler::new(ctx.cfg.sampler, worker_seed(ctx.cfg.seed, worker));
                }
                if attempt < ctx.cfg.retry_budget {
                    ctx.faults.retries.fetch_add(1, Ordering::AcqRel);
                    ctx.cfg.trace.add(names::counters::RETRIES, 1);
                    ctx.cfg.trace.instant(names::events::RETRY, item.batch_id as u64);
                    ctx.retries.push(item, attempt + 1);
                } else {
                    ctx.faults.failed_batches.fetch_add(1, Ordering::AcqRel);
                    ctx.cfg.trace.add(names::counters::FAILED_BATCHES, 1);
                    ctx.cfg.trace.instant(names::events::FAILED_BATCH, item.batch_id as u64);
                    let failed = BatchResult::Failed {
                        batch_id: item.batch_id,
                        attempts: attempt + 1,
                    };
                    if ctx.tx.send(failed).is_err() {
                        break;
                    }
                }
            }
        }
    }
    stats
}

/// Prepares one batch end-to-end. Returns `None` if the epoch was cancelled
/// while waiting for a staging slot.
fn prepare_item(
    ctx: &WorkerCtx,
    sampler: &mut AnySampler,
    item: &WorkItem,
    private: &mut FeatureSlab,
    private_labels: &mut Vec<u32>,
    stats: &mut EpochPrepStats,
) -> Option<PreparedBatch> {
    let dim = ctx.dataset.features.dim();
    let batch_nodes = &ctx.order[item.start..item.end];
    let trace = &ctx.cfg.trace;
    // All stage stamps come from the trace clock (the workspace's sanctioned
    // time source), so the same code path is timed deterministically under a
    // VirtualClock in tests. A disabled trace falls back to the monotonic
    // clock and every record_span below is a no-op.
    let clock = trace.clock();
    let bid = item.batch_id as u64;

    let t0 = clock.now_ns();
    fault::fire(fault::sites::PREP_SAMPLE, bid);
    let mfg = sampler.sample(&ctx.dataset.graph, batch_nodes, &ctx.cfg.fanouts);
    let sampled = clock.now_ns();
    trace.record_span(names::spans::PREP_SAMPLE, bid, t0, sampled);

    // Slots can all be parked in unconsumed batches of a cancelled epoch;
    // the cancellable acquire sleeps on the pool and is woken either by a
    // freed slot or by cancellation draining the batch channel. The wait is
    // recorded as backpressure, not preparation work.
    let mut slot = ctx.pool.acquire_cancellable(&ctx.cancel)?;
    let acquired = clock.now_ns();
    trace.record_span(names::spans::SLOT_WAIT, bid, sampled, acquired);
    slot.prepare(mfg.num_nodes(), dim, mfg.batch_size());

    let t1 = clock.now_ns();
    fault::fire(fault::sites::PREP_SLICE, bid);
    let (slice_ns, copy_ns) = match ctx.cfg.mode {
        PrepMode::SharedMemory => {
            // Zero-copy: slice straight into the pinned slot.
            slice_batch_into(&ctx.dataset, &mfg, &mut slot);
            let sliced = clock.now_ns();
            trace.record_span(names::spans::PREP_SLICE, bid, t1, sliced);
            (sliced.saturating_sub(t1), 0)
        }
        PrepMode::Multiprocessing => {
            // Slice into worker-private memory…
            private.resize(mfg.num_nodes() * dim);
            private_labels.resize(mfg.batch_size(), 0);
            slice_batch(&ctx.dataset, &mfg, private.rows_mut(), private_labels);
            let sliced = clock.now_ns();
            trace.record_span(names::spans::PREP_SLICE, bid, t1, sliced);
            // …then pay the shared-memory copy.
            slot.features_mut().copy_from(private.rows());
            slot.labels_mut().copy_from_slice(private_labels);
            let copied = clock.now_ns();
            trace.record_span(names::spans::PREP_COPY, bid, sliced, copied);
            (sliced.saturating_sub(t1), copied.saturating_sub(sliced))
        }
    };

    let timings = PrepTimings {
        sample: Duration::from_nanos(sampled.saturating_sub(t0)),
        slice: Duration::from_nanos(slice_ns),
        copy: Duration::from_nanos(copy_ns),
    };
    stats.add(mfg.num_nodes(), mfg.num_edges(), slot.payload_bytes(), timings);
    let ins = &ctx.instruments;
    ins.batches.inc();
    ins.nodes.add(mfg.num_nodes() as u64);
    ins.edges.add(mfg.num_edges() as u64);
    ins.bytes.add(slot.payload_bytes() as u64);
    ins.batch_ns
        .observe(sampled.saturating_sub(t0) + slice_ns + copy_ns);
    Some(PreparedBatch {
        batch_id: item.batch_id,
        mfg,
        slot,
        timings,
    })
}

/// Slices a batch directly into a pinned slot (borrow-splitting helper).
fn slice_batch_into(dataset: &Dataset, mfg: &MessageFlowGraph, slot: &mut PinnedSlot) {
    // Feature and label regions are distinct buffers inside the slot, but the
    // accessor borrows are exclusive; do them sequentially.
    dataset.features.slice_into(&mfg.node_ids, slot.features_mut());
    let batch = &mfg.node_ids[..mfg.batch_size()];
    crate::slice::slice_labels(&dataset.labels, batch, slot.labels_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    fn dataset() -> Arc<Dataset> {
        Arc::new(DatasetConfig::tiny(20).build())
    }

    fn run(mode: PrepMode, workers: usize) -> (Vec<usize>, EpochPrepStats) {
        let ds = dataset();
        let cfg = PrepConfig {
            num_workers: workers,
            fanouts: vec![5, 3],
            batch_size: 32,
            slots: 3,
            mode,
            sampler: SamplerKind::Fast,
            seed: 1,
            ..PrepConfig::default()
        };
        let order = ds.splits.train.clone();
        let handle = run_epoch(&ds, &order, &cfg);
        let mut ids: Vec<usize> = handle
            .batches
            .iter()
            .filter_map(BatchResult::ready)
            .map(|b| {
                b.mfg.validate().unwrap();
                assert_eq!(b.slot.labels().len(), b.mfg.batch_size());
                b.batch_id
            })
            .collect();
        let stats = handle.join();
        ids.sort_unstable();
        (ids, stats)
    }

    #[test]
    fn shared_memory_mode_prepares_every_batch_once() {
        let ds = dataset();
        let expected = ds.splits.train.len().div_ceil(32);
        let (ids, stats) = run(PrepMode::SharedMemory, 3);
        assert_eq!(ids, (0..expected).collect::<Vec<_>>());
        assert_eq!(stats.batches, expected);
        assert_eq!(stats.timings.copy, std::time::Duration::ZERO);
    }

    #[test]
    fn multiprocessing_mode_pays_copy() {
        let ds = dataset();
        let expected = ds.splits.train.len().div_ceil(32);
        let (ids, stats) = run(PrepMode::Multiprocessing, 2);
        assert_eq!(ids.len(), expected);
        assert!(stats.timings.copy > std::time::Duration::ZERO);
    }

    #[test]
    fn sliced_features_match_dataset() {
        let ds = dataset();
        let cfg = PrepConfig {
            num_workers: 1,
            fanouts: vec![4],
            batch_size: 16,
            slots: 2,
            mode: PrepMode::SharedMemory,
            sampler: SamplerKind::Fast,
            seed: 5,
            ..PrepConfig::default()
        };
        let order: Vec<NodeId> = ds.splits.train[..32].to_vec();
        let handle = run_epoch(&ds, &order, &cfg);
        for b in handle.batches.iter().filter_map(BatchResult::ready) {
            let dim = ds.features.dim();
            for (i, &v) in b.mfg.node_ids.iter().enumerate() {
                assert_eq!(b.slot.features().view(i * dim, dim), ds.features.row(v));
            }
            for (i, &v) in b.mfg.node_ids[..b.mfg.batch_size()].iter().enumerate() {
                assert_eq!(b.slot.labels()[i], ds.labels[v as usize]);
            }
        }
        handle.join();
    }

    #[test]
    fn pyg_sampler_mode_works() {
        let ds = dataset();
        let cfg = PrepConfig {
            sampler: SamplerKind::Pyg,
            batch_size: 32,
            fanouts: vec![5, 3],
            ..Default::default()
        };
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
        let n = handle.batches.iter().filter_map(BatchResult::ready).count();
        let stats = handle.join();
        assert_eq!(n, stats.batches);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn consumer_can_drop_early() {
        let ds = dataset();
        let cfg = PrepConfig {
            batch_size: 8,
            fanouts: vec![3],
            ..Default::default()
        };
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
        let _first = handle.batches.recv().unwrap();
        // Dropping the handle (and receiver) must not deadlock the workers.
        let _ = handle.join();
    }

    #[test]
    fn traced_epoch_matches_inline_stats() {
        let ds = dataset();
        let trace = Trace::new(salient_trace::Clock::virtual_with_tick(1_000));
        let cfg = PrepConfig {
            batch_size: 32,
            fanouts: vec![5, 3],
            mode: PrepMode::Multiprocessing,
            trace: trace.clone(),
            ..Default::default()
        };
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
        let n = handle.batches.iter().filter_map(BatchResult::ready).count();
        let stats = handle.join();
        let snap = trace.snapshot();
        // The registry view reconstructs exactly what the workers
        // accumulated inline (both are stamped by the same clock reads).
        let view = EpochPrepStats::from_snapshot(&snap);
        assert_eq!(view.batches, n);
        assert_eq!(view.batches, stats.batches);
        assert_eq!(view.nodes, stats.nodes);
        assert_eq!(view.edges, stats.edges);
        assert_eq!(view.bytes, stats.bytes);
        assert_eq!(view.timings, stats.timings);
        // Every batch recorded its stage spans (copy mode records all four).
        assert_eq!(snap.spans(names::spans::PREP_SAMPLE).count(), n);
        assert_eq!(snap.spans(names::spans::PREP_SLICE).count(), n);
        assert_eq!(snap.spans(names::spans::PREP_COPY).count(), n);
        assert_eq!(snap.spans(names::spans::SLOT_WAIT).count(), n);
        let hist = snap.metrics.histogram(names::hists::PREP_BATCH_NS).unwrap();
        assert_eq!(hist.count as usize, n);
        assert!(hist.quantile(0.5) > 0);
    }

    #[test]
    fn clean_epoch_reports_no_faults() {
        let ds = dataset();
        let cfg = PrepConfig {
            batch_size: 32,
            fanouts: vec![5, 3],
            ..Default::default()
        };
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &cfg);
        let pool = handle.pool().clone();
        let n = handle.batches.iter().filter_map(BatchResult::ready).count();
        let (stats, faults) = handle.join_detailed();
        assert_eq!(n, stats.batches);
        assert!(!faults.any(), "clean run must report zero fault activity: {faults:?}");
        assert_eq!(pool.available(), pool.capacity(), "no slot may stay checked out");
    }
}
