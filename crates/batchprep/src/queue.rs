//! Work distribution for batch preparation.
//!
//! SALIENT's batch-prep threads "balance load dynamically via a lock-free
//! input queue that contains the destination nodes for each mini-batch"
//! (§4.2); the PyTorch DataLoader baseline instead assigns batches to worker
//! processes *statically* (round-robin), which loses to dynamic balancing
//! because final neighborhood size varies substantially across batches. Both
//! strategies are implemented here.

use salient_tensor::sync::lock_unpoisoned;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One unit of work: prepare the mini-batch with the given id from a range
/// of the epoch's (already shuffled) node order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Sequential batch index within the epoch.
    pub batch_id: usize,
    /// Start offset into the epoch node order.
    pub start: usize,
    /// One-past-end offset into the epoch node order.
    pub end: usize,
}

/// Splits an epoch of `n` nodes into batch work items of `batch_size`
/// (the last batch may be short).
pub fn make_work_items(n: usize, batch_size: usize) -> Vec<WorkItem> {
    assert!(batch_size > 0, "batch size must be positive");
    (0..n)
        .step_by(batch_size)
        .enumerate()
        .map(|(batch_id, start)| WorkItem {
            batch_id,
            start,
            end: (start + batch_size).min(n),
        })
        .collect()
}

/// A strategy for handing work items to `num_workers` preparation threads.
pub trait WorkSource: Send + Sync {
    /// Next item for worker `worker`; `None` when the worker is done.
    fn next(&self, worker: usize) -> Option<WorkItem>;

    /// Items not yet claimed by any worker. The epoch supervisor uses this
    /// to decide whether a collapsed worker set left work behind.
    fn remaining(&self) -> usize;
}

/// Lock-free dynamic load balancing (SALIENT): all workers pop from one
/// queue, so a worker stuck on a giant neighborhood does not delay the rest
/// of the epoch.
///
/// The epoch's items are known up front, so "queue" reduces to an immutable
/// item list plus an atomic claim cursor — a single `fetch_add` per pop,
/// genuinely lock-free (stronger than the segmented queue this replaced,
/// which locked per segment allocation).
#[derive(Debug)]
pub struct DynamicQueue {
    items: Vec<WorkItem>,
    cursor: AtomicUsize,
}

impl DynamicQueue {
    /// Builds a queue preloaded with the epoch's work items.
    pub fn new(items: Vec<WorkItem>) -> Arc<Self> {
        Arc::new(DynamicQueue { items, cursor: AtomicUsize::new(0) })
    }

    /// Number of items not yet claimed.
    pub fn remaining(&self) -> usize {
        self.items
            .len()
            .saturating_sub(self.cursor.load(Ordering::Acquire))
    }
}

impl WorkSource for DynamicQueue {
    fn next(&self, _worker: usize) -> Option<WorkItem> {
        // The claim cursor only needs each index handed out once, and the
        // item data is immutable after construction, so relaxed ordering
        // on the fetch_add is sufficient.
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.items.get(i).cloned()
    }

    fn remaining(&self) -> usize {
        DynamicQueue::remaining(self)
    }
}

/// Static round-robin partitioning (the PyTorch DataLoader scheme): batch
/// `b` is pinned to worker `b % num_workers` up front.
#[derive(Debug)]
pub struct StaticPartition {
    per_worker: Vec<(Vec<WorkItem>, AtomicUsize)>,
}

impl StaticPartition {
    /// Pre-assigns the items round-robin across `num_workers`.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(items: Vec<WorkItem>, num_workers: usize) -> Arc<Self> {
        assert!(num_workers > 0, "need at least one worker");
        let mut per_worker: Vec<(Vec<WorkItem>, AtomicUsize)> = (0..num_workers)
            .map(|_| (Vec::new(), AtomicUsize::new(0)))
            .collect();
        for item in items {
            per_worker[item.batch_id % num_workers].0.push(item);
        }
        Arc::new(StaticPartition { per_worker })
    }
}

impl WorkSource for StaticPartition {
    fn next(&self, worker: usize) -> Option<WorkItem> {
        let (items, cursor) = &self.per_worker[worker % self.per_worker.len()];
        // Relaxed: per-worker cursor over an immutable pre-partitioned list;
        // uniqueness of the fetch_add result is the only requirement.
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        items.get(i).cloned()
    }

    fn remaining(&self) -> usize {
        self.per_worker
            .iter()
            .map(|(items, cursor)| {
                items.len().saturating_sub(cursor.load(Ordering::Acquire))
            })
            .sum()
    }
}

/// Work items requeued after a caught worker panic, tagged with the attempt
/// number already consumed. Workers drain retries before claiming fresh
/// items so a failed batch is re-prepared promptly (and deterministically:
/// the retry sampler is re-seeded from the batch id and attempt, not from
/// whichever worker picks it up).
#[derive(Debug, Default)]
pub struct RetryQueue {
    items: std::sync::Mutex<std::collections::VecDeque<(WorkItem, u32)>>,
}

impl RetryQueue {
    /// Creates an empty retry queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requeues `item` whose attempt number `attempt` just failed.
    ///
    /// Uses poison-tolerant locking: the retry queue exists precisely to
    /// survive worker panics, so a panic that poisoned the mutex must not
    /// take the queue down with it.
    pub fn push(&self, item: WorkItem, attempt: u32) {
        lock_unpoisoned(&self.items).push_back((item, attempt));
    }

    /// Claims the oldest pending retry, if any.
    pub fn pop(&self) -> Option<(WorkItem, u32)> {
        lock_unpoisoned(&self.items).pop_front()
    }

    /// Retries currently pending.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.items).len()
    }

    /// Whether no retries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Counts completed batches so a consumer knows when the epoch has drained.
#[derive(Debug, Default)]
pub struct CompletionCounter {
    done: AtomicUsize,
}

impl CompletionCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks one batch done; returns the new count.
    pub fn complete(&self) -> usize {
        self.done.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Batches completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn work_items_cover_epoch_exactly() {
        let items = make_work_items(10, 4);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], WorkItem { batch_id: 0, start: 0, end: 4 });
        assert_eq!(items[2], WorkItem { batch_id: 2, start: 8, end: 10 });
        let covered: usize = items.iter().map(|i| i.end - i.start).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn dynamic_queue_hands_out_each_item_once() {
        let q = DynamicQueue::new(make_work_items(100, 10));
        let mut seen = HashSet::new();
        while let Some(item) = q.next(0) {
            assert!(seen.insert(item.batch_id));
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn dynamic_queue_is_safe_under_concurrency() {
        let q = DynamicQueue::new(make_work_items(1_000, 1));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = Arc::clone(&q);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    while let Some(_item) = q.next(w) {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn static_partition_respects_assignment() {
        let p = StaticPartition::new(make_work_items(12, 2), 3);
        for w in 0..3 {
            while let Some(item) = p.next(w) {
                assert_eq!(item.batch_id % 3, w, "batch pinned to wrong worker");
            }
        }
    }

    #[test]
    fn remaining_tracks_both_sources() {
        let q = DynamicQueue::new(make_work_items(10, 2));
        assert_eq!(WorkSource::remaining(&*q), 5);
        q.next(0);
        assert_eq!(WorkSource::remaining(&*q), 4);

        let p = StaticPartition::new(make_work_items(10, 2), 2);
        assert_eq!(p.remaining(), 5);
        p.next(0);
        p.next(1);
        assert_eq!(p.remaining(), 3);
    }

    #[test]
    fn retry_queue_is_fifo() {
        let r = RetryQueue::new();
        assert!(r.is_empty());
        r.push(WorkItem { batch_id: 7, start: 0, end: 4 }, 1);
        r.push(WorkItem { batch_id: 2, start: 4, end: 8 }, 2);
        assert_eq!(r.len(), 2);
        let (first, attempt) = r.pop().unwrap();
        assert_eq!((first.batch_id, attempt), (7, 1));
        assert_eq!(r.pop().unwrap().0.batch_id, 2);
        assert!(r.pop().is_none());
    }

    #[test]
    fn completion_counter() {
        let c = CompletionCounter::new();
        assert_eq!(c.complete(), 1);
        assert_eq!(c.complete(), 2);
        assert_eq!(c.completed(), 2);
    }

}
