//! Feature/label slicing kernels.
//!
//! Slicing extracts the feature rows of every node in a sampled MFG and the
//! labels of its batch nodes (Listing 1, line 3: `xs, ys = x[ids],
//! y[ids[:batch_sz]]`). SALIENT runs this *serially per batch-prep thread*
//! (§4.2) — the across-batch parallelism comes from the thread pool, which
//! has better cache behaviour than PyTorch's within-tensor OpenMP split.
//!
//! Feature rows move at the dataset's storage dtype: an f16-stored matrix
//! slices (and later DMAs) 2 bytes per value, the paper's conventional
//! optimization (iii).

use salient_graph::{Dataset, FeatureRowsMut, NodeId};
use salient_sampler::MessageFlowGraph;
use salient_tensor::Dtype;

/// Slices the features of every node of `mfg` into `out_features` (which
/// must carry the dataset's dtype) and the labels of its batch nodes into
/// `out_labels`, serially.
///
/// # Panics
///
/// Panics if the output buffers have the wrong size or dtype.
// lint: entry(panic-reachability)
pub fn slice_batch(
    dataset: &Dataset,
    mfg: &MessageFlowGraph,
    out_features: FeatureRowsMut<'_>,
    out_labels: &mut [u32],
) {
    dataset.features.slice_into(&mfg.node_ids, out_features);
    // lint: allow(panic-reachability, the MFG builder guarantees batch_size <= node_ids.len(); output sizes are asserted on entry)
    let batch = &mfg.node_ids[..mfg.batch_size()];
    slice_labels(&dataset.labels, batch, out_labels);
}

/// Copies `labels[v]` for each batch node `v` into `out`.
///
/// # Panics
///
/// Panics if `out.len() != batch.len()` or a node id is out of range.
pub fn slice_labels(labels: &[u32], batch: &[NodeId], out: &mut [u32]) {
    assert_eq!(out.len(), batch.len(), "label output size mismatch");
    for (o, &v) in out.iter_mut().zip(batch.iter()) {
        *o = labels[v as usize];
    }
}

/// Bytes moved by slicing one batch (features + labels) at the given
/// feature dtype, the quantity that feeds the DMA-transfer model.
pub fn sliced_bytes(mfg: &MessageFlowGraph, feat_dim: usize, dtype: Dtype) -> usize {
    mfg.num_nodes() * feat_dim * dtype.size_of()
        + mfg.batch_size() * std::mem::size_of::<u32>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::{DatasetConfig, FeatureSlab};
    use salient_sampler::FastSampler;

    #[test]
    fn slice_batch_extracts_correct_rows() {
        let ds = DatasetConfig::tiny(10).build();
        let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..8], &[4, 4]);
        let dim = ds.features.dim();
        let mut feats = FeatureSlab::new(ds.features.dtype(), mfg.num_nodes() * dim);
        let mut labels = vec![0u32; mfg.batch_size()];
        slice_batch(&ds, &mfg, feats.rows_mut(), &mut labels);

        for (i, &v) in mfg.node_ids.iter().enumerate() {
            assert_eq!(
                feats.view(i * dim, dim),
                ds.features.row(v),
                "row {i} (node {v}) mismatched"
            );
        }
        for (i, &v) in mfg.node_ids[..mfg.batch_size()].iter().enumerate() {
            assert_eq!(labels[i], ds.labels[v as usize]);
        }
    }

    #[test]
    fn sliced_bytes_formula() {
        let ds = DatasetConfig::tiny(10).build();
        let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..4], &[3]);
        let dim = ds.features.dim();
        assert_eq!(
            sliced_bytes(&mfg, dim, Dtype::F16),
            mfg.num_nodes() * dim * 2 + 4 * 4
        );
        // The f32 path moves exactly twice the feature bytes.
        assert_eq!(
            sliced_bytes(&mfg, dim, Dtype::F32),
            mfg.num_nodes() * dim * 4 + 4 * 4
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_label_buffer_panics() {
        slice_labels(&[1, 2, 3], &[0, 1], &mut [0u32; 3]);
    }
}
