//! Per-stage timing accounting for batch preparation.

use salient_trace::{names, Snapshot};
use std::time::Duration;

/// Wall-clock cost of preparing one batch, split by stage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrepTimings {
    /// Neighborhood sampling + MFG construction time.
    pub sample: Duration,
    /// Feature/label slicing time.
    pub slice: Duration,
    /// Extra copy time (only nonzero in the multiprocessing-emulation mode,
    /// where sliced data crosses a POSIX-shared-memory boundary).
    pub copy: Duration,
}

impl PrepTimings {
    /// Total preparation time.
    pub fn total(&self) -> Duration {
        self.sample + self.slice + self.copy
    }
}

/// Aggregated preparation statistics for an epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochPrepStats {
    /// Number of batches prepared.
    pub batches: usize,
    /// Total sampled nodes across batches.
    pub nodes: usize,
    /// Total MFG edges across batches.
    pub edges: usize,
    /// Total staged payload bytes.
    pub bytes: usize,
    /// Summed per-stage timings.
    pub timings: PrepTimings,
}

impl EpochPrepStats {
    /// Folds one batch's contribution into the epoch totals.
    pub fn add(&mut self, nodes: usize, edges: usize, bytes: usize, t: PrepTimings) {
        self.batches += 1;
        self.nodes += nodes;
        self.edges += edges;
        self.bytes += bytes;
        self.timings.sample += t.sample;
        self.timings.slice += t.slice;
        self.timings.copy += t.copy;
    }

    /// Merges stats from another worker.
    pub fn merge(&mut self, other: &EpochPrepStats) {
        self.batches += other.batches;
        self.nodes += other.nodes;
        self.edges += other.edges;
        self.bytes += other.bytes;
        self.timings.sample += other.timings.sample;
        self.timings.slice += other.timings.slice;
        self.timings.copy += other.timings.copy;
    }

    /// Reconstructs the epoch totals from a trace snapshot: counts come from
    /// the `prep.*` counters, per-stage times from summing the recorded
    /// worker spans. Workers stamp both from the same clock reads, so for an
    /// epoch recorded against an enabled [`salient_trace::Trace`] this view
    /// equals the inline accumulation.
    pub fn from_snapshot(snap: &Snapshot) -> EpochPrepStats {
        EpochPrepStats {
            batches: snap.metrics.counter(names::counters::BATCHES) as usize,
            nodes: snap.metrics.counter(names::counters::PREP_NODES) as usize,
            edges: snap.metrics.counter(names::counters::PREP_EDGES) as usize,
            bytes: snap.metrics.counter(names::counters::PREP_BYTES) as usize,
            timings: PrepTimings {
                sample: Duration::from_nanos(snap.sum_ns(names::spans::PREP_SAMPLE)),
                slice: Duration::from_nanos(snap.sum_ns(names::spans::PREP_SLICE)),
                copy: Duration::from_nanos(snap.sum_ns(names::spans::PREP_COPY)),
            },
        }
    }

    /// Mean sampled nodes per batch.
    pub fn avg_nodes_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.nodes as f64 / self.batches as f64
        }
    }
}

/// Fault-handling activity observed during one epoch of batch preparation,
/// reported by the epoch supervisor alongside [`EpochPrepStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Per-item panics caught inside workers (each either retried or
    /// terminally failed).
    pub item_panics: usize,
    /// Work items requeued for another attempt.
    pub retries: usize,
    /// Batches that exhausted their retry budget and were reported as
    /// `BatchResult::Failed`.
    pub failed_batches: usize,
    /// Worker threads that died (panicked outside the per-item guard).
    pub worker_panics: usize,
    /// Replacement workers spawned by the supervisor.
    pub respawns: usize,
    /// Whether the worker set collapsed and the supervisor finished the
    /// epoch with inline preparation.
    pub degraded_inline: bool,
}

impl FaultStats {
    /// Whether any fault activity was observed at all.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_stats_any() {
        let mut f = FaultStats::default();
        assert!(!f.any());
        f.retries = 1;
        assert!(f.any());
    }

    #[test]
    fn add_and_merge() {
        let mut a = EpochPrepStats::default();
        a.add(
            100,
            500,
            4_000,
            PrepTimings {
                sample: Duration::from_millis(3),
                slice: Duration::from_millis(1),
                copy: Duration::ZERO,
            },
        );
        let mut b = EpochPrepStats::default();
        b.add(
            200,
            900,
            8_000,
            PrepTimings {
                sample: Duration::from_millis(5),
                slice: Duration::from_millis(2),
                copy: Duration::from_millis(1),
            },
        );
        a.merge(&b);
        assert_eq!(a.batches, 2);
        assert_eq!(a.nodes, 300);
        assert_eq!(a.edges, 1_400);
        assert_eq!(a.bytes, 12_000);
        assert_eq!(a.timings.sample, Duration::from_millis(8));
        assert_eq!(a.timings.total(), Duration::from_millis(12));
        assert_eq!(a.avg_nodes_per_batch(), 150.0);
    }
}
