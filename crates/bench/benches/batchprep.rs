//! Microbenchmarks of batch preparation: serial slicing into pinned memory,
//! the multiprocessing extra-copy penalty, lock-free dynamic queue vs static
//! partitioning under contention, and the pinned-pool recycle path.

use salient_bench::harness::{bench, report};
use salient_batchprep::{
    make_work_items, slice_batch, DynamicQueue, PinnedPool, StaticPartition, WorkSource,
};
use salient_graph::{Dataset, DatasetConfig, FeatureSlab};
use salient_sampler::FastSampler;
use salient_tensor::Dtype;

fn dataset() -> Dataset {
    DatasetConfig::products_sim(0.15).build()
}

fn bench_slicing(ds: &Dataset) {
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..256], &[15, 10, 5]);
    let dim = ds.features.dim();

    let dtype = ds.features.dtype();

    // SALIENT: serial slice straight into the staging buffer.
    let mut staged = FeatureSlab::new(dtype, mfg.num_nodes() * dim);
    let mut labels = vec![0u32; mfg.batch_size()];
    let zero_copy = bench("zero_copy_serial", || {
        slice_batch(ds, &mfg, staged.rows_mut(), &mut labels);
        staged.len()
    });

    // Multiprocessing emulation: slice to private memory, then copy.
    let mut staged2 = FeatureSlab::new(dtype, mfg.num_nodes() * dim);
    let mut labels2 = vec![0u32; mfg.batch_size()];
    let mut private = FeatureSlab::new(dtype, mfg.num_nodes() * dim);
    let with_copy = bench("slice_plus_shm_copy", || {
        slice_batch(ds, &mfg, private.rows_mut(), &mut labels2);
        staged2.rows_mut().copy_from(private.rows());
        staged2.len()
    });
    let bytes = (mfg.num_nodes() * dim * dtype.size_of()) as f64;
    println!(
        "  zero_copy {:.2} GB/s vs copy {:.2} GB/s",
        zero_copy.per_second(bytes) / 1e9,
        with_copy.per_second(bytes) / 1e9
    );
    report("slicing", &[zero_copy, with_copy]);
}

fn bench_queues() {
    let items = make_work_items(100_000, 8);
    let dynamic = bench("dynamic_lockfree_drain", || {
        let q = DynamicQueue::new(items.clone());
        let mut n = 0usize;
        while let Some(item) = q.next(0) {
            n += item.end - item.start;
        }
        n
    });
    let fixed = bench("static_partition_drain", || {
        let q = StaticPartition::new(items.clone(), 4);
        let mut n = 0usize;
        for w in 0..4 {
            while let Some(item) = q.next(w) {
                n += item.end - item.start;
            }
        }
        n
    });
    report("work_queue", &[dynamic, fixed]);
}

fn bench_pinned_pool() {
    let pool = PinnedPool::new(4, 4096, 32, 256, Dtype::F16);
    let s = bench("acquire_prepare_release", || {
        let mut slot = pool.acquire();
        slot.prepare(2048, 32, 128);
        slot.payload_bytes()
    });
    report("pinned_pool", &[s]);
}

fn main() {
    let ds = dataset();
    bench_slicing(&ds);
    bench_queues();
    bench_pinned_pool();
}
