//! Criterion microbenchmarks of batch preparation: serial slicing into
//! pinned memory, the multiprocessing extra-copy penalty, lock-free dynamic
//! queue vs static partitioning under contention, and the pinned-pool
//! recycle path.

use criterion::{criterion_group, criterion_main, Criterion};
use salient_batchprep::{
    make_work_items, slice_batch, DynamicQueue, PinnedPool, StaticPartition, WorkSource,
};
use salient_graph::{Dataset, DatasetConfig};
use salient_sampler::FastSampler;
use salient_tensor::F16;
use std::hint::black_box;

fn dataset() -> Dataset {
    DatasetConfig::products_sim(0.15).build()
}

fn bench_slicing(c: &mut Criterion) {
    let ds = dataset();
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..256], &[15, 10, 5]);
    let dim = ds.features.dim();
    let mut group = c.benchmark_group("slicing");
    group.sample_size(30);
    group.throughput(criterion::Throughput::Bytes(
        (mfg.num_nodes() * dim * 2) as u64,
    ));

    // SALIENT: serial slice straight into the staging buffer.
    let mut staged = vec![F16::ZERO; mfg.num_nodes() * dim];
    let mut labels = vec![0u32; mfg.batch_size()];
    group.bench_function("zero_copy_serial", |b| {
        b.iter(|| {
            slice_batch(&ds, &mfg, &mut staged, &mut labels);
            black_box(staged[0]);
        })
    });

    // Multiprocessing emulation: slice to private memory, then copy.
    let mut private = vec![F16::ZERO; mfg.num_nodes() * dim];
    group.bench_function("slice_plus_shm_copy", |b| {
        b.iter(|| {
            slice_batch(&ds, &mfg, &mut private, &mut labels);
            staged.copy_from_slice(&private);
            black_box(staged[0]);
        })
    });
    group.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("work_queue");
    group.sample_size(20);
    let items = make_work_items(100_000, 8);
    group.bench_function("dynamic_lockfree_drain", |b| {
        b.iter(|| {
            let q = DynamicQueue::new(items.clone());
            let mut n = 0usize;
            while let Some(item) = q.next(0) {
                n += item.end - item.start;
            }
            black_box(n)
        })
    });
    group.bench_function("static_partition_drain", |b| {
        b.iter(|| {
            let q = StaticPartition::new(items.clone(), 4);
            let mut n = 0usize;
            for w in 0..4 {
                while let Some(item) = q.next(w) {
                    n += item.end - item.start;
                }
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_pinned_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pinned_pool");
    group.sample_size(30);
    let pool = PinnedPool::new(4, 4096, 32, 256);
    group.bench_function("acquire_prepare_release", |b| {
        b.iter(|| {
            let mut slot = pool.acquire();
            slot.prepare(2048, 32, 128);
            black_box(slot.payload_bytes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_slicing, bench_queues, bench_pinned_pool);
criterion_main!(benches);
