//! Microbenchmarks of batch preparation: serial slicing into pinned memory,
//! the multiprocessing extra-copy penalty, lock-free dynamic queue vs static
//! partitioning under contention, and the pinned-pool recycle path.

use salient_bench::harness::{bench, report};
use salient_batchprep::{
    make_work_items, slice_batch, DynamicQueue, PinnedPool, StaticPartition, WorkSource,
};
use salient_graph::{Dataset, DatasetConfig};
use salient_sampler::FastSampler;
use salient_tensor::F16;

fn dataset() -> Dataset {
    DatasetConfig::products_sim(0.15).build()
}

fn bench_slicing(ds: &Dataset) {
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..256], &[15, 10, 5]);
    let dim = ds.features.dim();

    // SALIENT: serial slice straight into the staging buffer.
    let mut staged = vec![F16::ZERO; mfg.num_nodes() * dim];
    let mut labels = vec![0u32; mfg.batch_size()];
    let zero_copy = bench("zero_copy_serial", || {
        slice_batch(ds, &mfg, &mut staged, &mut labels);
        staged[0]
    });

    // Multiprocessing emulation: slice to private memory, then copy.
    let mut staged2 = vec![F16::ZERO; mfg.num_nodes() * dim];
    let mut labels2 = vec![0u32; mfg.batch_size()];
    let mut private = vec![F16::ZERO; mfg.num_nodes() * dim];
    let with_copy = bench("slice_plus_shm_copy", || {
        slice_batch(ds, &mfg, &mut private, &mut labels2);
        staged2.copy_from_slice(&private);
        staged2[0]
    });
    let bytes = (mfg.num_nodes() * dim * 2) as f64;
    println!(
        "  zero_copy {:.2} GB/s vs copy {:.2} GB/s",
        zero_copy.per_second(bytes) / 1e9,
        with_copy.per_second(bytes) / 1e9
    );
    report("slicing", &[zero_copy, with_copy]);
}

fn bench_queues() {
    let items = make_work_items(100_000, 8);
    let dynamic = bench("dynamic_lockfree_drain", || {
        let q = DynamicQueue::new(items.clone());
        let mut n = 0usize;
        while let Some(item) = q.next(0) {
            n += item.end - item.start;
        }
        n
    });
    let fixed = bench("static_partition_drain", || {
        let q = StaticPartition::new(items.clone(), 4);
        let mut n = 0usize;
        for w in 0..4 {
            while let Some(item) = q.next(w) {
                n += item.end - item.start;
            }
        }
        n
    });
    report("work_queue", &[dynamic, fixed]);
}

fn bench_pinned_pool() {
    let pool = PinnedPool::new(4, 4096, 32, 256);
    let s = bench("acquire_prepare_release", || {
        let mut slot = pool.acquire();
        slot.prepare(2048, 32, 128);
        slot.payload_bytes()
    });
    report("pinned_pool", &[s]);
}

fn main() {
    let ds = dataset();
    bench_slicing(&ds);
    bench_queues();
    bench_pinned_pool();
}
