//! The CPU kernel layer benchmark: blocked parallel GEMM (f32 and
//! fp32-accumulate half-input) vs the seed's naive triple loop at GNN-typical
//! shapes, fused CSR gather/scatter throughput with a bytes-moved column, and
//! the mixed-precision slice+transfer path (f16 vs f32 feature staging, byte
//! traffic accounted through the `transfer.bytes` trace counter). Emits
//! `BENCH_kernels.json` at the workspace root.
//!
//! The kernel thread pool is sized once per process (`SALIENT_NUM_THREADS`),
//! so single-thread numbers come from re-running this binary as a child
//! process with that variable pinned to 1; the child prints `key=value`
//! lines the parent folds into the JSON report.
//!
//! Two in-bench assertions back the mixed-precision acceptance criteria:
//!
//! * half GEMM agrees with the fp32 reference elementwise within the
//!   documented bound `2.5 * 2^-11 * (|A|·|B|)` (see `DESIGN.md`,
//!   precision policy) at every shape;
//! * the f16 slice+widen path moves at most 55% of the f32 path's bytes,
//!   measured through `names::counters::TRANSFER_BYTES`.
//!
//! `SALIENT_BENCH_SMOKE=1` shrinks the measurement batches (see
//! `harness::bench`) so `scripts/ci.sh` can run the whole file — assertions
//! included — as its mixed-precision tier without the full-bench runtime.

use salient_bench::harness::{bench, write_json, Json, Sample};
use salient_graph::{FeatureMatrix, FeatureSlab};
use salient_tensor::rng::{Rng, StdRng};
use salient_tensor::{gemm, gemm_f16, gemm_naive, kernels, pool, quantize, Dtype, Tensor, F16};
use salient_trace::{names, Clock, Trace};
use std::collections::HashMap;

/// GNN-typical GEMM shapes: (batch-of-nodes × feature-dim) @ (dim × hidden).
/// 602 is the padded papers100M-style feature width the issue pins the
/// acceptance threshold to; 100 is the ogbn-products feature width.
const SHAPES: [(usize, usize, usize); 3] = [(1024, 602, 256), (1024, 256, 256), (1024, 100, 47)];

/// Documented elementwise error bound for half-input GEMM, relative to the
/// magnitude matrix |A|·|B|: each operand carries at most one half-precision
/// rounding (relative error ≤ 2⁻¹¹), the product at most doubles it, and the
/// extra 0.5·2⁻¹¹ of headroom covers fp32 accumulation-order differences.
const HALF_GEMM_REL_BOUND: f32 = 2.5 * (1.0 / 2048.0);

fn rand_tensor(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(
        (0..r * c).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
        [r, c],
    )
}

fn shape_key(m: usize, k: usize, n: usize) -> String {
    format!("{m}x{k}x{n}")
}

/// The bench inputs for every shape: fp32 operands plus their RTNE-quantized
/// half copies. Deterministic (fixed seed, fixed draw order) so the child
/// process and the parent's accuracy check see identical matrices.
fn shape_inputs() -> Vec<(String, Tensor, Tensor, Vec<F16>, Vec<F16>)> {
    let mut rng = StdRng::seed_from_u64(42);
    SHAPES
        .iter()
        .map(|&(m, k, n)| {
            let a = rand_tensor(m, k, &mut rng);
            let b = rand_tensor(k, n, &mut rng);
            let ah = quantize(a.data());
            let bh = quantize(b.data());
            (shape_key(m, k, n), a, b, ah, bh)
        })
        .collect()
}

struct GemmSamples {
    key: String,
    naive: Sample,
    blocked: Sample,
    half: Sample,
}

fn gemm_samples(label_prefix: &str, naive_too: bool) -> Vec<GemmSamples> {
    let mut out = Vec::new();
    for (key, a, b, ah, bh) in shape_inputs() {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let blocked = bench(&format!("{label_prefix} blocked {key}"), || {
            gemm(&a, &b, false, false)
        });
        let half = bench(&format!("{label_prefix} half {key}"), || {
            gemm_f16(&ah, m, k, &bh, k, n, false, false)
        });
        let naive = if naive_too {
            bench(&format!("{label_prefix} naive {key}"), || {
                gemm_naive(&a, &b, false, false)
            })
        } else {
            blocked.clone()
        };
        out.push(GemmSamples { key, naive, blocked, half });
    }
    out
}

/// Child mode: measure with whatever thread count the env pinned (the parent
/// sets SALIENT_NUM_THREADS=1) and print machine-readable lines.
fn run_child() {
    for s in gemm_samples("1t", true) {
        let key = &s.key;
        println!("naive_{key}={}", s.naive.p50_s);
        println!("blocked_{key}={}", s.blocked.p50_s);
        println!("half_{key}={}", s.half.p50_s);
    }
}

/// Checks the half GEMM against the fp32 reference at every bench shape and
/// returns the max observed error as a fraction of the documented bound
/// (so anything < 1.0 passes with that much headroom).
fn half_gemm_accuracy() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (key, a, b, ah, bh) in shape_inputs() {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let full = gemm(&a, &b, false, false);
        let half = gemm_f16(&ah, m, k, &bh, k, n, false, false);
        let abs_a = Tensor::from_vec(a.data().iter().map(|v| v.abs()).collect(), [m, k]);
        let abs_b = Tensor::from_vec(b.data().iter().map(|v| v.abs()).collect(), [k, n]);
        let mag = gemm(&abs_a, &abs_b, false, false);
        let mut worst = 0.0f64;
        for ((h, f), g) in half.data().iter().zip(full.data()).zip(mag.data()) {
            let err = (h - f).abs();
            let bound = HALF_GEMM_REL_BOUND * g + 1e-6;
            assert!(
                err <= bound,
                "half GEMM {key} outside documented bound: |{h} - {f}| = {err} > {bound}"
            );
            worst = worst.max((err / bound) as f64);
        }
        out.push((key, worst));
    }
    out
}

fn aggregation_section() -> Json {
    let mut rng = StdRng::seed_from_u64(7);
    let n_src = 100_000usize;
    let n_dst = 25_000usize;
    let cols = 100usize;
    let n_edges = 500_000usize;
    let x: Vec<f32> = (0..n_src * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    let xh = quantize(&x);
    let idx: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_src as u32)).collect();
    let src = idx.clone();
    let dst: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_dst as u32)).collect();
    let mut counts = vec![0.0f32; n_dst];
    for &d in &dst {
        counts[d as usize] += 1.0;
    }
    let f32b = std::mem::size_of::<f32>();
    let f16b = std::mem::size_of::<F16>();

    let gather = bench("gather_rows_forward", || {
        kernels::gather_rows_forward(&x, cols, &idx)
    });
    let gather_f16 = bench("gather_rows_forward_f16", || {
        kernels::gather_rows_forward_f16(&xh, cols, &idx)
    });
    let n_bwd = n_edges.min(n_src);
    let gather_bwd = bench("gather_rows_backward", || {
        kernels::gather_rows_backward(&x[..n_bwd * cols], cols, &idx[..n_bwd], n_src)
    });
    let scatter_sum = bench("scatter_sum_forward", || {
        kernels::scatter_reduce_forward(&x, cols, &src, &dst, n_dst, None)
    });
    let scatter_mean = bench("scatter_mean_forward", || {
        kernels::scatter_reduce_forward(&x, cols, &src, &dst, n_dst, Some(&counts))
    });

    // `rows_per_s` counts *output* rows (what earlier reports tracked — for
    // scatter that is n_dst, a much smaller number than the per-edge work);
    // `edges_per_s` counts source rows touched, the like-for-like throughput
    // unit across gather and scatter. `bytes_moved` is payload read +
    // payload written per iteration.
    let entry = |s: &Sample, rows: f64, edges: f64, bytes: f64| {
        Json::Obj(vec![
            ("name".into(), Json::Str(s.name.clone())),
            ("cols".into(), Json::Num(cols as f64)),
            ("median_s".into(), Json::Num(s.p50_s)),
            ("rows_per_s".into(), Json::Num(rows / s.p50_s)),
            ("edges_per_s".into(), Json::Num(edges / s.p50_s)),
            ("bytes_moved".into(), Json::Num(bytes)),
            ("gb_per_s".into(), Json::Num(bytes / s.p50_s / 1e9)),
        ])
    };
    let e = n_edges as f64;
    let gather_bytes = |src_elem: usize| (n_edges * cols * (src_elem + f32b)) as f64;
    Json::Arr(vec![
        entry(&gather, e, e, gather_bytes(f32b)),
        entry(&gather_f16, e, e, gather_bytes(f16b)),
        entry(
            &gather_bwd,
            n_src as f64,
            n_bwd as f64,
            ((n_bwd + n_src) * cols * f32b) as f64,
        ),
        entry(
            &scatter_sum,
            n_dst as f64,
            e,
            ((n_edges + n_dst) * cols * f32b) as f64,
        ),
        entry(
            &scatter_mean,
            n_dst as f64,
            e,
            ((n_edges + n_dst) * cols * f32b) as f64,
        ),
    ])
}

/// The trainer-facing hot path: slice feature rows out of the store into a
/// staging slab at the store's dtype, then widen once into the fp32 compute
/// buffer (the stand-in for the host→device transfer + on-device upcast).
/// Byte traffic goes through the same `transfer.bytes` counter the trainer
/// uses, so the ≤ 55% acceptance check is made against trace evidence.
fn slice_transfer_section() -> Json {
    let mut rng = StdRng::seed_from_u64(11);
    let num_nodes = 100_000usize;
    let dim = 100usize;
    let batch_rows = 50_000usize;
    let raw: Vec<f32> = (0..num_nodes * dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    let ids: Vec<u32> = (0..batch_rows).map(|_| rng.random_range(0..num_nodes as u32)).collect();

    let measure = |dtype: Dtype| -> (Sample, f64) {
        let store = FeatureMatrix::from_f32_dtype(dtype, num_nodes, dim, &raw);
        let mut staged = FeatureSlab::new(dtype, batch_rows * dim);
        let mut wide = vec![0.0f32; batch_rows * dim];
        let trace = Trace::new(Clock::monotonic());
        let transfer_bytes = trace.counter(names::counters::TRANSFER_BYTES);
        let mut calls = 0u64;
        let sample = bench(&format!("slice_widen_{dtype}"), || {
            store.slice_into(&ids, staged.rows_mut());
            staged.widen_into(&mut wide);
            transfer_bytes.add(staged.bytes() as u64);
            calls += 1;
            wide[0]
        });
        let total = trace.snapshot().metrics.counter(names::counters::TRANSFER_BYTES);
        (sample, total as f64 / calls as f64)
    };

    let (f32_sample, f32_bytes) = measure(Dtype::F32);
    let (f16_sample, f16_bytes) = measure(Dtype::F16);
    let frac = f16_bytes / f32_bytes;
    assert!(
        frac <= 0.55,
        "f16 slice+transfer must move <= 55% of the f32 path's bytes, got {frac:.3} \
         ({f16_bytes} vs {f32_bytes})"
    );
    let speedup = f32_sample.p50_s / f16_sample.p50_s;
    println!(
        "slice+widen {batch_rows}x{dim}: f16 moves {:.1}% of f32 bytes, {speedup:.2}x faster",
        frac * 100.0
    );

    let entry = |s: &Sample, bytes: f64| {
        Json::Obj(vec![
            ("name".into(), Json::Str(s.name.clone())),
            ("rows".into(), Json::Num(batch_rows as f64)),
            ("dim".into(), Json::Num(dim as f64)),
            ("median_s".into(), Json::Num(s.p50_s)),
            ("bytes_moved".into(), Json::Num(bytes)),
            ("gb_per_s".into(), Json::Num(bytes / s.p50_s / 1e9)),
        ])
    };
    Json::Obj(vec![
        ("paths".into(), Json::Arr(vec![entry(&f32_sample, f32_bytes), entry(&f16_sample, f16_bytes)])),
        ("f16_bytes_frac".into(), Json::Num(frac)),
        ("f16_speedup_vs_f32".into(), Json::Num(speedup)),
    ])
}

fn main() {
    if std::env::args().any(|a| a == "--single-thread") {
        run_child();
        return;
    }

    // Single-thread child run (blocked + half kernels with the pool pinned to
    // one thread, plus the naive reference, which is serial regardless).
    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(exe)
        .arg("--single-thread")
        .env("SALIENT_NUM_THREADS", "1")
        .output()
        .expect("single-thread child run failed");
    assert!(child.status.success(), "child bench failed");
    let mut single: HashMap<String, f64> = HashMap::new();
    for line in String::from_utf8_lossy(&child.stdout).lines() {
        if let Some((k, v)) = line.split_once('=') {
            if let Ok(v) = v.parse::<f64>() {
                single.insert(k.to_string(), v);
            }
        }
    }

    // Accuracy gate before any timing is reported: the half GEMM must sit
    // inside the documented bound at every shape.
    let accuracy = half_gemm_accuracy();

    // Parallel run in this process (pool at its configured width).
    let parallel = gemm_samples("par", false);

    let mut gemm_entries = Vec::new();
    for (gs, (acc_key, err_frac)) in parallel.iter().zip(&accuracy) {
        let key = &gs.key;
        assert_eq!(key, acc_key);
        let (m, k, n) = {
            let dims: Vec<usize> = key.split('x').map(|d| d.parse().unwrap()).collect();
            (dims[0], dims[1], dims[2])
        };
        let flops = (2 * m * k * n) as f64;
        let naive_s = single[&format!("naive_{key}")];
        let blocked_1t_s = single[&format!("blocked_{key}")];
        let half_1t_s = single[&format!("half_{key}")];
        let gflops = |s: f64| flops / s / 1e9;
        println!(
            "gemm {key}: naive {:.2} GFLOP/s | blocked 1T {:.2} GFLOP/s ({:.2}x) | half 1T {:.2} GFLOP/s | blocked {}T {:.2} GFLOP/s ({:.2}x)",
            gflops(naive_s),
            gflops(blocked_1t_s),
            naive_s / blocked_1t_s,
            gflops(half_1t_s),
            pool::num_threads(),
            gflops(gs.blocked.p50_s),
            naive_s / gs.blocked.p50_s,
        );
        // Bytes a GEMM reads for its operands: half inputs move half of A+B.
        let operand_bytes = |elem: usize| ((m * k + k * n) * elem) as f64;
        gemm_entries.push(Json::Obj(vec![
            ("shape".into(), Json::Str(key.clone())),
            ("flops_per_iter".into(), Json::Num(flops)),
            ("naive_1t_gflops".into(), Json::Num(gflops(naive_s))),
            ("blocked_1t_gflops".into(), Json::Num(gflops(blocked_1t_s))),
            ("half_1t_gflops".into(), Json::Num(gflops(half_1t_s))),
            ("blocked_parallel_gflops".into(), Json::Num(gflops(gs.blocked.p50_s))),
            ("half_parallel_gflops".into(), Json::Num(gflops(gs.half.p50_s))),
            ("speedup_1t_vs_naive".into(), Json::Num(naive_s / blocked_1t_s)),
            ("speedup_parallel_vs_naive".into(), Json::Num(naive_s / gs.blocked.p50_s)),
            ("operand_bytes_f32".into(), Json::Num(operand_bytes(4))),
            ("operand_bytes_f16".into(), Json::Num(operand_bytes(2))),
            ("half_err_frac_of_bound".into(), Json::Num(*err_frac)),
        ]));
    }

    let slice_transfer = slice_transfer_section();

    let doc = Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Num(pool::num_threads() as f64)),
                ("kernel".into(), Json::Str(kernels::gemm_kernel_level().into())),
                (
                    "half_gemm_rel_bound".into(),
                    Json::Num(HALF_GEMM_REL_BOUND as f64),
                ),
                ("note".into(), Json::Str(
                    "median-of-20-batches timings (5 under SALIENT_BENCH_SMOKE); 1t = SALIENT_NUM_THREADS=1 child run; \
                     half = f16 operands with fp32 accumulation; bytes_moved = payload read + written per iteration; \
                     half_err_frac_of_bound = worst |half-f32| elementwise error as a fraction of 2.5*2^-11*(|A|.|B|)".into(),
                )),
            ]),
        ),
        ("gemm".into(), Json::Arr(gemm_entries)),
        ("aggregation".into(), aggregation_section()),
        ("slice_transfer".into(), slice_transfer),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    write_json(path, &doc).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
