//! The CPU kernel layer benchmark: blocked parallel GEMM vs the seed's
//! naive triple loop at GNN-typical shapes, plus fused CSR gather/scatter
//! throughput. Emits `BENCH_kernels.json` at the workspace root.
//!
//! The kernel thread pool is sized once per process (`SALIENT_NUM_THREADS`),
//! so single-thread numbers come from re-running this binary as a child
//! process with that variable pinned to 1; the child prints `key=value`
//! lines the parent folds into the JSON report.

use salient_bench::harness::{bench, write_json, Json, Sample};
use salient_tensor::rng::{Rng, StdRng};
use salient_tensor::{gemm, gemm_naive, kernels, pool, Tensor};
use std::collections::HashMap;

/// GNN-typical GEMM shapes: (batch-of-nodes × feature-dim) @ (dim × hidden).
/// 602 is the padded papers100M-style feature width the issue pins the
/// acceptance threshold to; 100 is the ogbn-products feature width.
const SHAPES: [(usize, usize, usize); 3] = [(1024, 602, 256), (1024, 256, 256), (1024, 100, 47)];

fn rand_tensor(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(
        (0..r * c).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
        [r, c],
    )
}

fn shape_key(m: usize, k: usize, n: usize) -> String {
    format!("{m}x{k}x{n}")
}

fn gemm_samples(label_prefix: &str, naive_too: bool) -> Vec<(String, Sample, Sample)> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut out = Vec::new();
    for (m, k, n) in SHAPES {
        let a = rand_tensor(m, k, &mut rng);
        let b = rand_tensor(k, n, &mut rng);
        let blocked = bench(&format!("{label_prefix} blocked {m}x{k}x{n}"), || {
            gemm(&a, &b, false, false)
        });
        let naive = if naive_too {
            bench(&format!("{label_prefix} naive {m}x{k}x{n}"), || {
                gemm_naive(&a, &b, false, false)
            })
        } else {
            blocked.clone()
        };
        out.push((shape_key(m, k, n), naive, blocked));
    }
    out
}

/// Child mode: measure with whatever thread count the env pinned (the parent
/// sets SALIENT_NUM_THREADS=1) and print machine-readable lines.
fn run_child() {
    for (key, naive, blocked) in gemm_samples("1t", true) {
        println!("naive_{key}={}", naive.p50_s);
        println!("blocked_{key}={}", blocked.p50_s);
    }
}

fn aggregation_section() -> Json {
    let mut rng = StdRng::seed_from_u64(7);
    let n_src = 100_000usize;
    let n_dst = 25_000usize;
    let cols = 100usize;
    let n_edges = 500_000usize;
    let x: Vec<f32> = (0..n_src * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    let idx: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_src as u32)).collect();
    let src = idx.clone();
    let dst: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_dst as u32)).collect();
    let mut counts = vec![0.0f32; n_dst];
    for &d in &dst {
        counts[d as usize] += 1.0;
    }

    let gather = bench("gather_rows_forward", || {
        kernels::gather_rows_forward(&x, cols, &idx)
    });
    let gather_bwd = bench("gather_rows_backward", || {
        kernels::gather_rows_backward(&x[..n_edges.min(n_src) * cols], cols, &idx[..n_edges.min(n_src)], n_src)
    });
    let scatter_sum = bench("scatter_sum_forward", || {
        kernels::scatter_reduce_forward(&x, cols, &src, &dst, n_dst, None)
    });
    let scatter_mean = bench("scatter_mean_forward", || {
        kernels::scatter_reduce_forward(&x, cols, &src, &dst, n_dst, Some(&counts))
    });

    let entry = |s: &Sample, rows: f64| {
        Json::Obj(vec![
            ("name".into(), Json::Str(s.name.clone())),
            ("cols".into(), Json::Num(cols as f64)),
            ("median_s".into(), Json::Num(s.p50_s)),
            ("rows_per_s".into(), Json::Num(rows / s.p50_s)),
        ])
    };
    Json::Arr(vec![
        entry(&gather, idx.len() as f64),
        entry(&gather_bwd, n_src as f64),
        entry(&scatter_sum, n_dst as f64),
        entry(&scatter_mean, n_dst as f64),
    ])
}

fn main() {
    if std::env::args().any(|a| a == "--single-thread") {
        run_child();
        return;
    }

    // Single-thread child run (blocked kernel with the pool pinned to one
    // thread, plus the naive reference, which is serial regardless).
    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(exe)
        .arg("--single-thread")
        .env("SALIENT_NUM_THREADS", "1")
        .output()
        .expect("single-thread child run failed");
    assert!(child.status.success(), "child bench failed");
    let mut single: HashMap<String, f64> = HashMap::new();
    for line in String::from_utf8_lossy(&child.stdout).lines() {
        if let Some((k, v)) = line.split_once('=') {
            if let Ok(v) = v.parse::<f64>() {
                single.insert(k.to_string(), v);
            }
        }
    }

    // Parallel run in this process (pool at its configured width).
    let parallel = gemm_samples("par", false);

    let mut gemm_entries = Vec::new();
    for (key, _, blocked_par) in &parallel {
        let (m, k, n) = {
            let dims: Vec<usize> = key.split('x').map(|d| d.parse().unwrap()).collect();
            (dims[0], dims[1], dims[2])
        };
        let flops = (2 * m * k * n) as f64;
        let naive_s = single[&format!("naive_{key}")];
        let blocked_1t_s = single[&format!("blocked_{key}")];
        let gflops = |s: f64| flops / s / 1e9;
        println!(
            "gemm {key}: naive {:.2} GFLOP/s | blocked 1T {:.2} GFLOP/s ({:.2}x) | blocked {}T {:.2} GFLOP/s ({:.2}x)",
            gflops(naive_s),
            gflops(blocked_1t_s),
            naive_s / blocked_1t_s,
            pool::num_threads(),
            gflops(blocked_par.p50_s),
            naive_s / blocked_par.p50_s,
        );
        gemm_entries.push(Json::Obj(vec![
            ("shape".into(), Json::Str(key.clone())),
            ("flops_per_iter".into(), Json::Num(flops)),
            ("naive_1t_gflops".into(), Json::Num(gflops(naive_s))),
            ("blocked_1t_gflops".into(), Json::Num(gflops(blocked_1t_s))),
            ("blocked_parallel_gflops".into(), Json::Num(gflops(blocked_par.p50_s))),
            ("speedup_1t_vs_naive".into(), Json::Num(naive_s / blocked_1t_s)),
            ("speedup_parallel_vs_naive".into(), Json::Num(naive_s / blocked_par.p50_s)),
        ]));
    }

    let doc = Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Num(pool::num_threads() as f64)),
                ("note".into(), Json::Str(
                    "median-of-20-batches timings; 1t = SALIENT_NUM_THREADS=1 child run".into(),
                )),
            ]),
        ),
        ("gemm".into(), Json::Arr(gemm_entries)),
        ("aggregation".into(), aggregation_section()),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    write_json(path, &doc).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
