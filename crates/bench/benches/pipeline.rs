//! Criterion benchmarks of the pipeline machinery: the event simulator's
//! own throughput (tasks/second), transfer-model ablations (pinned vs
//! assertion round trips), and the end-to-end real batch-prep pool.

use criterion::{criterion_group, criterion_main, Criterion};
use salient_batchprep::{run_epoch, PrepConfig, PrepMode, SamplerKind};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sim::{
    simulate_epoch, CostModel, EpochConfig, OptLevel, Simulation,
};
use std::hint::black_box;
use std::sync::Arc;

fn bench_des_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(15);
    group.bench_function("run_10k_task_pipeline", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let cpu = sim.resource("cpu", 8);
            let gpu = sim.resource("gpu", 1);
            let mut prev = None;
            for i in 0..5_000 {
                let a = sim.task("a", cpu, 100, vec![]);
                let deps = match prev {
                    Some(p) => vec![a, p],
                    None => vec![a],
                };
                prev = Some(sim.task("b", gpu, 80, deps));
                let _ = i;
            }
            black_box(sim.run().makespan)
        })
    });
    group.bench_function("simulate_products_epoch", |b| {
        let model = CostModel::paper_hardware();
        let cfg = EpochConfig::paper_default(DatasetStats::products(), OptLevel::Pipelined);
        b.iter(|| black_box(simulate_epoch(&cfg, &model).epoch_s))
    });
    group.finish();
}

fn bench_transfer_model(c: &mut Criterion) {
    // Ablation: assertion round trips on/off across the three datasets
    // (the §4.3 optimization), evaluated through the cost model.
    let model = CostModel::paper_hardware();
    let mut group = c.benchmark_group("transfer_model");
    group.sample_size(20);
    group.bench_function("ladder_all_datasets", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for stats in DatasetStats::all() {
                for level in OptLevel::ladder() {
                    total += simulate_epoch(&EpochConfig::paper_default(stats.clone(), level), &model)
                        .epoch_s;
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_real_prep_pool(c: &mut Criterion) {
    let ds = Arc::new(DatasetConfig::products_sim(0.08).build());
    let order: Vec<u32> = ds.splits.train.clone();
    let mut group = c.benchmark_group("prep_pool");
    group.sample_size(10);
    for (label, mode) in [
        ("shared_memory", PrepMode::SharedMemory),
        ("multiprocessing", PrepMode::Multiprocessing),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = PrepConfig {
                    num_workers: 2,
                    fanouts: vec![10, 5],
                    batch_size: 64,
                    slots: 4,
                    mode,
                    sampler: SamplerKind::Fast,
                    seed: 0,
                };
                let handle = run_epoch(&ds, &order, &cfg);
                let n = handle.batches.iter().count();
                handle.join();
                black_box(n)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des_engine, bench_transfer_model, bench_real_prep_pool);
criterion_main!(benches);
