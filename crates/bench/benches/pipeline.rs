//! Benchmarks of the pipeline machinery: the event simulator's own
//! throughput (tasks/second), transfer-model ablations (pinned vs assertion
//! round trips), and the end-to-end real batch-prep pool.

use salient_bench::harness::{bench, report};
use salient_batchprep::{run_epoch, PrepConfig, PrepMode, SamplerKind};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sim::{simulate_epoch, CostModel, EpochConfig, OptLevel, Simulation};
use std::sync::Arc;

fn bench_des_engine() {
    let a = bench("run_10k_task_pipeline", || {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 8);
        let gpu = sim.resource("gpu", 1);
        let mut prev = None;
        for _ in 0..5_000 {
            let t = sim.task("a", cpu, 100, vec![]);
            let deps = match prev {
                Some(p) => vec![t, p],
                None => vec![t],
            };
            prev = Some(sim.task("b", gpu, 80, deps));
        }
        sim.run().makespan
    });
    let model = CostModel::paper_hardware();
    let cfg = EpochConfig::paper_default(DatasetStats::products(), OptLevel::Pipelined);
    let b = bench("simulate_products_epoch", || {
        simulate_epoch(&cfg, &model).epoch_s
    });
    report("des", &[a, b]);
}

fn bench_transfer_model() {
    // Ablation: assertion round trips on/off across the three datasets
    // (the §4.3 optimization), evaluated through the cost model.
    let model = CostModel::paper_hardware();
    let s = bench("ladder_all_datasets", || {
        let mut total = 0.0;
        for stats in DatasetStats::all() {
            for level in OptLevel::ladder() {
                total +=
                    simulate_epoch(&EpochConfig::paper_default(stats.clone(), level), &model)
                        .epoch_s;
            }
        }
        total
    });
    report("transfer_model", &[s]);
}

fn bench_real_prep_pool() {
    let ds = Arc::new(DatasetConfig::products_sim(0.08).build());
    let order: Vec<u32> = ds.splits.train.clone();
    let mut samples = Vec::new();
    for (label, mode) in [
        ("shared_memory", PrepMode::SharedMemory),
        ("multiprocessing", PrepMode::Multiprocessing),
    ] {
        samples.push(bench(label, || {
            let cfg = PrepConfig {
                num_workers: 2,
                fanouts: vec![10, 5],
                batch_size: 64,
                slots: 4,
                mode,
                sampler: SamplerKind::Fast,
                seed: 0,
                ..PrepConfig::default()
            };
            let handle = run_epoch(&ds, &order, &cfg);
            let n = handle.batches.iter().count();
            handle.join();
            n
        }));
    }
    report("prep_pool", &samples);
}

fn main() {
    bench_des_engine();
    bench_transfer_model();
    bench_real_prep_pool();
}
