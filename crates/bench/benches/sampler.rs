//! Criterion microbenchmarks of the neighborhood sampler (Figure 2's
//! workhorse): the tuned FastSampler vs the PyG-style baseline, key
//! design-space points, hop-trace replay isolating id-map cost, and an
//! ablation over fanout sizes (where the array-set's cache advantage lives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salient_graph::{Dataset, DatasetConfig};
use salient_sampler::{
    record_trace, replay_trace, FastSampler, FlatIdMap, PygSampler, StdIdMap, VariantConfig,
    VariantSampler,
};
use std::hint::black_box;

fn dataset() -> Dataset {
    DatasetConfig::products_sim(0.15).build()
}

fn bench_samplers(c: &mut Criterion) {
    let ds = dataset();
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();
    let fanouts = [15usize, 10, 5];
    let mut group = c.benchmark_group("sampler");
    group.sample_size(20);

    let mut fast = FastSampler::new(1);
    group.bench_function("fast(salient)", |b| {
        b.iter(|| black_box(fast.sample(&ds.graph, &batch, &fanouts)).num_edges())
    });
    let mut pyg = PygSampler::new(1);
    group.bench_function("pyg_baseline", |b| {
        b.iter(|| black_box(pyg.sample(&ds.graph, &batch, &fanouts)).num_edges())
    });
    // Two intermediate design-space points: only the map upgraded; only the
    // set upgraded.
    for (label, cfg) in [
        ("flat_map_only", VariantConfig {
            id_map: salient_sampler::IdMapKind::Flat,
            ..VariantConfig::pyg_baseline()
        }),
        ("array_set_only", VariantConfig {
            neighbor_set: salient_sampler::NeighborSetKind::Array,
            ..VariantConfig::pyg_baseline()
        }),
    ] {
        let mut v = VariantSampler::new(cfg, 1);
        group.bench_function(label, |b| {
            b.iter(|| black_box(v.sample(&ds.graph, &batch, &fanouts)).num_edges())
        });
    }
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    // The paper's hop-by-hop microbenchmark: identical sampled neighbors,
    // different id-map implementations.
    let ds = dataset();
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();
    let trace = record_trace(&ds.graph, &batch, &[15, 10, 5], 7);
    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(20);
    group.bench_function("flat_map", |b| {
        let mut map = FlatIdMap::default();
        b.iter(|| black_box(replay_trace(&trace, &mut map)).num_edges())
    });
    group.bench_function("std_map", |b| {
        let mut map = StdIdMap::new();
        b.iter(|| black_box(replay_trace(&trace, &mut map)).num_edges())
    });
    group.finish();
}

fn bench_fanout_sweep(c: &mut Criterion) {
    // Ablation: array set vs hash set as the fanout (set size) grows.
    let ds = dataset();
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(128).collect();
    let mut group = c.benchmark_group("fanout_sweep");
    group.sample_size(12);
    for fanout in [5usize, 20, 50] {
        for (label, set) in [
            ("array", salient_sampler::NeighborSetKind::Array),
            ("flat_hash", salient_sampler::NeighborSetKind::Flat),
        ] {
            let cfg = VariantConfig {
                neighbor_set: set,
                ..VariantConfig::salient()
            };
            let mut v = VariantSampler::new(cfg, 1);
            group.bench_with_input(
                BenchmarkId::new(label, fanout),
                &fanout,
                |b, &fanout| {
                    b.iter(|| {
                        black_box(v.sample(&ds.graph, &batch, &[fanout, fanout])).num_edges()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_trace_replay, bench_fanout_sweep);
criterion_main!(benches);
