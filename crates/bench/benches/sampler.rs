//! Microbenchmarks of the neighborhood sampler (Figure 2's workhorse): the
//! tuned FastSampler vs the PyG-style baseline, key design-space points,
//! hop-trace replay isolating id-map cost, and an ablation over fanout sizes
//! (where the array-set's cache advantage lives).

use salient_bench::harness::{bench, report};
use salient_graph::{Dataset, DatasetConfig};
use salient_sampler::{
    record_trace, replay_trace, FastSampler, FlatIdMap, PygSampler, StdIdMap, VariantConfig,
    VariantSampler,
};

fn dataset() -> Dataset {
    DatasetConfig::products_sim(0.15).build()
}

fn bench_samplers(ds: &Dataset) {
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();
    let fanouts = [15usize, 10, 5];
    let mut samples = Vec::new();

    let mut fast = FastSampler::new(1);
    samples.push(bench("fast(salient)", || {
        fast.sample(&ds.graph, &batch, &fanouts).num_edges()
    }));
    let mut pyg = PygSampler::new(1);
    samples.push(bench("pyg_baseline", || {
        pyg.sample(&ds.graph, &batch, &fanouts).num_edges()
    }));
    // Two intermediate design-space points: only the map upgraded; only the
    // set upgraded.
    for (label, cfg) in [
        ("flat_map_only", VariantConfig {
            id_map: salient_sampler::IdMapKind::Flat,
            ..VariantConfig::pyg_baseline()
        }),
        ("array_set_only", VariantConfig {
            neighbor_set: salient_sampler::NeighborSetKind::Array,
            ..VariantConfig::pyg_baseline()
        }),
    ] {
        let mut v = VariantSampler::new(cfg, 1);
        samples.push(bench(label, || {
            v.sample(&ds.graph, &batch, &fanouts).num_edges()
        }));
    }
    report("sampler", &samples);
}

fn bench_trace_replay(ds: &Dataset) {
    // The paper's hop-by-hop microbenchmark: identical sampled neighbors,
    // different id-map implementations.
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();
    let trace = record_trace(&ds.graph, &batch, &[15, 10, 5], 7);
    let mut flat = FlatIdMap::default();
    let a = bench("flat_map", || replay_trace(&trace, &mut flat).num_edges());
    let mut std_map = StdIdMap::new();
    let b = bench("std_map", || replay_trace(&trace, &mut std_map).num_edges());
    report("trace_replay", &[a, b]);
}

fn bench_fanout_sweep(ds: &Dataset) {
    // Ablation: array set vs hash set as the fanout (set size) grows.
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(128).collect();
    let mut samples = Vec::new();
    for fanout in [5usize, 20, 50] {
        for (label, set) in [
            ("array", salient_sampler::NeighborSetKind::Array),
            ("flat_hash", salient_sampler::NeighborSetKind::Flat),
        ] {
            let cfg = VariantConfig {
                neighbor_set: set,
                ..VariantConfig::salient()
            };
            let mut v = VariantSampler::new(cfg, 1);
            samples.push(bench(&format!("{label}/{fanout}"), || {
                v.sample(&ds.graph, &batch, &[fanout, fanout]).num_edges()
            }));
        }
    }
    report("fanout_sweep", &samples);
}

fn main() {
    let ds = dataset();
    bench_samplers(&ds);
    bench_trace_replay(&ds);
    bench_fanout_sweep(&ds);
}
