//! Microbenchmarks of the tensor substrate: GEMM kernels at GNN-typical
//! shapes, scatter aggregation, f16 conversion bandwidth, and a full
//! forward+backward of one GraphSAGE batch.

use salient_bench::harness::{bench, report};
use salient_graph::DatasetConfig;
use salient_nn::{build_model, Mode, ModelKind};
use salient_sampler::FastSampler;
use salient_tensor::rng::StdRng;
use salient_tensor::{dequantize_into, gemm, quantize, Tape, Tensor};

fn bench_gemm() {
    let mut samples = Vec::new();
    for (m, k, n) in [(1024usize, 32usize, 64usize), (4096, 64, 64), (256, 64, 47)] {
        let a = Tensor::full([m, k], 0.5);
        let b = Tensor::full([k, n], 0.25);
        let s = bench(&format!("gemm {m}x{k}x{n}"), || gemm(&a, &b, false, false));
        let gflops = s.per_second((2 * m * k * n) as f64) / 1e9;
        println!("  {} -> {gflops:.2} GFLOP/s", s.name);
        samples.push(s);
    }
    report("gemm", &samples);
}

fn bench_scatter() {
    let ds = DatasetConfig::products_sim(0.1).build();
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..128], &[15, 10, 5]);
    let layer = &mfg.layers[0];
    let x = Tensor::full([layer.n_src, 32], 1.0);
    let s = bench("scatter_mean_fwd", || {
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        xv.scatter_mean(&layer.edge_src, &layer.edge_dst, layer.n_dst).value()
    });
    println!(
        "  {} -> {:.1}M edges/s",
        s.name,
        s.per_second(layer.num_edges() as f64) / 1e6
    );
    report("aggregation", &[s]);
}

fn bench_f16() {
    let xs: Vec<f32> = (0..1 << 16).map(|i| (i as f32) * 0.001 - 32.0).collect();
    let halves = quantize(&xs);
    let mut out = vec![0.0f32; xs.len()];
    let q = bench("quantize_64k", || quantize(&xs));
    let d = bench("dequantize_64k", || {
        dequantize_into(&halves, &mut out);
        out[0]
    });
    report("f16", &[q, d]);
}

fn bench_train_step() {
    let ds = DatasetConfig::products_sim(0.1).build();
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..128], &[10, 5]);
    let mut model = build_model(ModelKind::Sage, ds.features.dim(), 64, ds.num_classes, 2, 0);
    let features = ds.features.gather_f32(&mfg.node_ids);
    let targets: Vec<usize> = mfg.node_ids[..mfg.batch_size()]
        .iter()
        .map(|&v| ds.labels[v as usize] as usize)
        .collect();
    let mut rng = StdRng::seed_from_u64(0);
    let s = bench("sage_fwd_bwd_128", || {
        let tape = Tape::new();
        let x = tape.constant(features.clone());
        let out = model.forward(&tape, x, &mfg, Mode::Train, &mut rng);
        let loss = out.nll_loss(&targets);
        tape.backward(&loss).iter_params().count()
    });
    report("train_step", &[s]);
}

fn main() {
    bench_gemm();
    bench_scatter();
    bench_f16();
    bench_train_step();
}
