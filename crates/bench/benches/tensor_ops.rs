//! Criterion microbenchmarks of the tensor substrate: GEMM kernels at
//! GNN-typical shapes, scatter aggregation, f16 conversion bandwidth, and a
//! full forward+backward of one GraphSAGE batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use salient_graph::DatasetConfig;
use salient_nn::{build_model, Mode, ModelKind};
use salient_sampler::FastSampler;
use salient_tensor::{dequantize_into, gemm, quantize, Tape, Tensor};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(15);
    for (m, k, n) in [(1024usize, 32usize, 64usize), (4096, 64, 64), (256, 64, 47)] {
        let a = Tensor::full([m, k], 0.5);
        let b = Tensor::full([k, n], 0.25);
        group.throughput(criterion::Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("nn", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bench, _| bench.iter(|| black_box(gemm(&a, &b, false, false))),
        );
    }
    group.finish();
}

fn bench_scatter(c: &mut Criterion) {
    let ds = DatasetConfig::products_sim(0.1).build();
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..128], &[15, 10, 5]);
    let layer = &mfg.layers[0];
    let x = Tensor::full([layer.n_src, 32], 1.0);
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(layer.num_edges() as u64));
    group.bench_function("scatter_mean_fwd", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            black_box(xv.scatter_mean(&layer.edge_src, &layer.edge_dst, layer.n_dst).value())
        })
    });
    group.finish();
}

fn bench_f16(c: &mut Criterion) {
    let xs: Vec<f32> = (0..1 << 16).map(|i| (i as f32) * 0.001 - 32.0).collect();
    let halves = quantize(&xs);
    let mut out = vec![0.0f32; xs.len()];
    let mut group = c.benchmark_group("f16");
    group.sample_size(30);
    group.throughput(criterion::Throughput::Bytes((xs.len() * 4) as u64));
    group.bench_function("quantize_64k", |b| b.iter(|| black_box(quantize(&xs))));
    group.bench_function("dequantize_64k", |b| {
        b.iter(|| {
            dequantize_into(&halves, &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let ds = DatasetConfig::products_sim(0.1).build();
    let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..128], &[10, 5]);
    let mut model = build_model(ModelKind::Sage, ds.features.dim(), 64, ds.num_classes, 2, 0);
    let features = ds.features.gather_f32(&mfg.node_ids);
    let targets: Vec<usize> = mfg.node_ids[..mfg.batch_size()]
        .iter()
        .map(|&v| ds.labels[v as usize] as usize)
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(15);
    group.bench_function("sage_fwd_bwd_128", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let x = tape.constant(features.clone());
            let out = model.forward(&tape, x, &mfg, Mode::Train, &mut rng);
            let loss = out.nll_loss(&targets);
            black_box(tape.backward(&loss).iter_params().count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_scatter, bench_f16, bench_train_step);
criterion_main!(benches);
