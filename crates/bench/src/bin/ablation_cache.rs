//! Ablation (paper §8 future work): GPU-side feature caching à la GNS.
//!
//! Sweeps the cache capacity fraction, measuring (a) *real* hit rates of a
//! degree-ordered cache vs a random cache on sampled batches of the
//! synthetic products dataset, and (b) the simulated papers100M epoch time
//! with the corresponding transfer reduction applied.
//!
//! Run: `cargo run --release -p salient-bench --bin ablation_cache [--scale 0.15]`

use salient_bench::{arg_f64, fmt_pct, fmt_s, render_table};
use salient_core::cache::{transfer_reduction, CachePolicy, FeatureCache};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sampler::FastSampler;
use salient_sim::{expected_batch, CostModel, GnnArch};

fn main() {
    let scale = arg_f64("--scale", 0.3);
    let ds = DatasetConfig::products_sim(scale).build();
    let mut sampler = FastSampler::new(0);
    // Two hops and small batches keep the sampled neighborhood well below
    // the (sim-scale) graph size; with 3-hop full-scale fanouts a tiny
    // synthetic graph saturates and every cache policy trivially hits at
    // its capacity rate.
    let fanouts = [10usize, 5];

    println!("Feature-cache ablation (real hit rates on products-sim, scale {scale})\n");
    let mut rows = Vec::new();
    let model = CostModel::paper_hardware();
    let papers_w = expected_batch(&DatasetStats::papers(), &[15, 10, 5], 1024);
    // A transfer-bound variant: 512-dim features (the regime §8 says needs
    // caching or GPU-side slicing).
    let mut wide_stats = DatasetStats::papers();
    wide_stats.feat_dim = 512;
    let wide_w = expected_batch(&wide_stats, &[15, 10, 5], 1024);
    let batches = DatasetStats::papers().batches_per_epoch(1024) as f64;
    let gpu_s =
        batches * model.gpu_train_batch_ns(GnnArch::Sage, &papers_w, 256, 172) / 1e9;
    for frac in [0.0f64, 0.01, 0.05, 0.10, 0.25, 0.50] {
        let mut deg = FeatureCache::with_fraction(&ds.graph, frac, CachePolicy::TopDegree);
        let mut rnd = FeatureCache::with_fraction(&ds.graph, frac, CachePolicy::Random { seed: 1 });
        for chunk in ds.splits.train.chunks(48).take(10) {
            let mfg = sampler.sample(&ds.graph, chunk, &fanouts);
            deg.partition(&mfg.node_ids);
            rnd.partition(&mfg.node_ids);
        }
        let hit = deg.hit_rate();
        let reduction = transfer_reduction(
            papers_w.feature_bytes(),
            papers_w.structure_bytes(),
            hit,
        );
        // Simulated pipelined papers epoch: transfer shrinks; epoch is the
        // max of the (unchanged) GPU/prep bottleneck and the new transfer.
        let transfer_s = batches * model.transfer_batch_ns_cached(&papers_w, true, hit) / 1e9;
        let prep_s = batches
            * (model.sample_batch_ns(salient_sim::Impl::Salient, &papers_w)
                * (model.sample_serial_frac_salient * 20.0 + 1.0 - model.sample_serial_frac_salient)
                + model.slice_batch_ns(salient_sim::Impl::Salient, &papers_w)
                    * (1.0 - hit)
                    * (model.slice_serial_frac_salient * 20.0 + 1.0 - model.slice_serial_frac_salient))
            / 20.0
            / 1e9;
        let epoch = prep_s.max(transfer_s).max(gpu_s);
        // Same pipeline with 512-dim features: transfer dominates, so the
        // cache visibly moves the epoch time.
        let wide_transfer = batches * model.transfer_batch_ns_cached(&wide_w, true, hit) / 1e9;
        let wide_prep = prep_s * 4.0 * (1.0 - hit).max(0.25); // slicing scales with dim and misses
        let wide_epoch = wide_prep.max(wide_transfer).max(gpu_s);
        rows.push(vec![
            fmt_pct(frac * 100.0),
            fmt_pct(hit * 100.0),
            fmt_pct(rnd.hit_rate() * 100.0),
            fmt_pct(reduction * 100.0),
            fmt_s(epoch),
            fmt_s(wide_epoch),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "cache size",
                "hit (degree)",
                "hit (random)",
                "xfer cut",
                "papers epoch (sim)",
                "512-dim epoch (sim)",
            ],
            &rows,
        )
    );
    println!("\nShape: a degree-ordered cache beats random at every size; once transfer");
    println!("drops below the prep/GPU bottleneck, bigger caches stop helping (the");
    println!("regime the paper predicts caching matters in is higher fanout / feat dim).");
}
