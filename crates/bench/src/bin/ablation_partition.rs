//! Ablation (paper §8 future work): distributing the graph across machines.
//!
//! "Graph partitioning will inevitably be invoked, but the objective may
//! consider not only edge cut and load balance but also the cost of
//! multi-hop neighborhood sampling." This experiment measures exactly that:
//! for random vs BFS (locality-preserving) partitionings at several machine
//! counts, the edge cut and — the quantity that actually matters for
//! SALIENT-style training — the fraction of each sampled MFG's feature rows
//! that would be remote.
//!
//! Run: `cargo run --release -p salient-bench --bin ablation_partition [--scale 0.2]`

use salient_bench::{arg_f64, fmt_pct, render_table};
use salient_graph::partition::{bfs_partition, random_partition, remote_fraction, Partitioning};
use salient_graph::DatasetConfig;
use salient_sampler::FastSampler;

fn main() {
    let scale = arg_f64("--scale", 0.2);
    let ds = DatasetConfig::products_sim(scale).build();
    let fanouts = [15usize, 10, 5];
    println!(
        "Partitioning ablation (products-sim scale {scale}: {} nodes, {} edges)\n",
        ds.graph.num_nodes(),
        ds.graph.num_edges()
    );

    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 16] {
        for (label, p) in [
            ("random", random_partition(&ds.graph, k, 0)),
            ("bfs", bfs_partition(&ds.graph, k, 0)),
        ] {
            let (cut, imb) = (p.edge_cut(&ds.graph), p.imbalance());
            let remote = mean_remote(&ds, &p, &fanouts);
            rows.push(vec![
                k.to_string(),
                label.to_string(),
                fmt_pct(cut * 100.0),
                format!("{imb:.2}"),
                fmt_pct(remote * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["machines", "partitioner", "edge cut", "imbalance", "remote MFG rows"],
            &rows,
        )
    );
    println!("\nShape: BFS (locality-preserving) partitioning cuts fewer edges AND fetches");
    println!("fewer remote feature rows than random partitioning at every machine count;");
    println!("the remote fraction grows with machines — the communication wall the paper's");
    println!("future-work section predicts for distributed-graph SALIENT.");
}

/// Mean remote-row fraction over sampled batches whose seeds all live on the
/// batch's home partition (the realistic DistDGL-style setup).
fn mean_remote(
    ds: &salient_graph::Dataset,
    p: &Partitioning,
    fanouts: &[usize],
) -> f64 {
    let mut sampler = FastSampler::new(7);
    let mut total = 0.0;
    let mut batches = 0usize;
    for home in 0..p.k.min(4) as u32 {
        // Seeds owned by `home`.
        let seeds: Vec<u32> = ds
            .splits
            .train
            .iter()
            .copied()
            .filter(|&v| p.part[v as usize] == home)
            .take(128)
            .collect();
        if seeds.len() < 16 {
            continue;
        }
        let mfg = sampler.sample(&ds.graph, &seeds, fanouts);
        total += remote_fraction(p, home, &mfg.node_ids);
        batches += 1;
    }
    if batches == 0 {
        0.0
    } else {
        total / batches as f64
    }
}
