//! Figure 1 — illustration of mini-batch progress per training epoch:
//! ASCII timelines of the standard PyTorch workflow versus SALIENT,
//! rendered from the event simulator's first milliseconds.
//!
//! In the baseline lanes the main thread serializes Slice → Transfer while
//! the GPU idles; in the SALIENT lanes prep (P), transfer (T on dma) and
//! train (T on gpu) overlap and the GPU lane is dense.
//!
//! Run: `cargo run --release -p salient-bench --bin fig1`

use salient_graph::DatasetStats;
use salient_sim::{render_text, simulate_epoch_detailed, CostModel, EpochConfig, OptLevel};

fn main() {
    let model = CostModel::paper_hardware();
    // Few workers keeps the chart readable, as in the paper's illustration.
    let mk = |level| EpochConfig {
        cpu_workers: 4,
        ..EpochConfig::paper_default(DatasetStats::products(), level)
    };

    let (base_r, base_sim, base_ex) = simulate_epoch_detailed(&mk(OptLevel::PygBaseline), &model);
    let (sal_r, sal_sim, sal_ex) = simulate_epoch_detailed(&mk(OptLevel::Pipelined), &model);

    // The baseline's multiprocessing samplers take ~0.4 s per batch at 4
    // workers, so a wider window is needed to see its (sparse) GPU activity.
    let horizon = 1_500_000_000; // 1.5 s window
    println!("Figure 1(a): standard PyTorch workflow (products, 4 CPU workers, first 1.5 s)");
    println!("  S=sample (workers), S=slice (main), T=transfer (main), T=train (gpu)\n");
    println!("{}", render_text(&base_sim, &base_ex, horizon, 100));
    println!(
        "  epoch {:.1}s, GPU utilization {:.0}%\n",
        base_r.epoch_s,
        base_r.gpu_util * 100.0
    );

    println!("Figure 1(b): SALIENT (same workload)");
    println!("  P=prep (workers, sample+slice fused), T=transfer (dma), T=train (gpu)\n");
    println!("{}", render_text(&sal_sim, &sal_ex, horizon, 100));
    println!(
        "  epoch {:.1}s, GPU utilization {:.0}%",
        sal_r.epoch_s,
        sal_r.gpu_util * 100.0
    );
    println!("\nPaper: SALIENT 'almost eliminates GPU idle time' — the gpu lane fills up.");
}
