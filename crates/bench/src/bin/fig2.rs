//! Figure 2 — exhaustive exploration of sampler optimization parameters:
//! all 48 design-space variants benchmarked (real wall clock) on the same
//! batches of the synthetic products dataset, reported as speedup relative
//! to the PyG-baseline configuration.
//!
//! Expected shape (paper §4.1): flat ("swiss-table"-style) id maps ≈ 2×
//! over STL-style hashing; the array neighbor set adds ~17 % over hash
//! sets; the SALIENT point sits at/near the top.
//!
//! Run: `cargo run --release -p salient-bench --bin fig2 [--scale 0.25] [--reps 5]`

use salient_bench::{arg_f64, arg_usize, bar, fmt_x, render_table};
use salient_graph::DatasetConfig;
use salient_sampler::{IdMapKind, NeighborSetKind, VariantConfig, VariantSampler};
use std::time::Instant;

fn main() {
    let scale = arg_f64("--scale", 0.25);
    let reps = arg_usize("--reps", 5);
    let ds = DatasetConfig::products_sim(scale).build();
    let fanouts = [15usize, 10, 5];
    let batches: Vec<Vec<u32>> = ds
        .splits
        .train
        .chunks(256)
        .take(4)
        .map(|c| c.to_vec())
        .collect();

    let time_variant = |cfg: VariantConfig| -> f64 {
        let mut sampler = VariantSampler::new(cfg, 99);
        // Warm-up pass (populates allocations / caches).
        for b in &batches {
            let _ = sampler.sample(&ds.graph, b, &fanouts);
        }
        let t = Instant::now();
        for _ in 0..reps {
            for b in &batches {
                let mfg = sampler.sample(&ds.graph, b, &fanouts);
                std::hint::black_box(mfg.num_edges());
            }
        }
        t.elapsed().as_secs_f64()
    };

    let baseline_t = time_variant(VariantConfig::pyg_baseline());
    let mut results: Vec<(VariantConfig, f64)> = VariantConfig::all()
        .into_iter()
        .map(|cfg| (cfg, baseline_t / time_variant(cfg)))
        .collect();
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!(
        "Figure 2: sampler design-space exploration ({} variants, products-sim scale {scale}, {} batches x {reps} reps)\n",
        results.len(),
        batches.len()
    );
    let max = results.first().map(|r| r.1).unwrap_or(1.0);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(cfg, speedup)| {
            let marker = if *cfg == VariantConfig::salient() {
                " <= SALIENT"
            } else if *cfg == VariantConfig::pyg_baseline() {
                " <= PyG baseline"
            } else {
                ""
            };
            vec![
                cfg.label(),
                fmt_x(*speedup),
                format!("{}{}", bar(*speedup, max, 32), marker),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["variant (map/set/fusion/alloc/algo)", "speedup", ""], &rows)
    );

    // Aggregate the two headline effects.
    let mean = |pred: &dyn Fn(&VariantConfig) -> bool| -> f64 {
        let xs: Vec<f64> = results
            .iter()
            .filter(|(c, _)| pred(c))
            .map(|(_, s)| *s)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let flat = mean(&|c| c.id_map == IdMapKind::Flat);
    let std_map = mean(&|c| c.id_map == IdMapKind::Std);
    let array = mean(&|c| c.neighbor_set == NeighborSetKind::Array);
    let flatset = mean(&|c| c.neighbor_set == NeighborSetKind::Flat);
    println!("flat map vs std map (mean speedup):      {} vs {} => {}", fmt_x(flat), fmt_x(std_map), fmt_x(flat / std_map));
    println!("array set vs flat hash set (mean):       {} vs {} => {}", fmt_x(array), fmt_x(flatset), fmt_x(array / flatset));
    println!("\nPaper: swiss-table map ~2x; array set a further ~17%; SALIENT sampler 2.5x end-to-end.");
}
