//! Figure 3 — test accuracy and node count versus node degree, for
//! full-neighborhood inference and sampled fanouts {5, 10, 20}. Real
//! training on the synthetic products dataset.
//!
//! Expected shape (paper §5): most test nodes are low-degree; small fanouts
//! already match full-neighborhood accuracy on them; increasing the fanout
//! closes the gap on the (rare) high-degree nodes.
//!
//! Run: `cargo run --release -p salient-bench --bin fig3 [--scale 0.2] [--epochs 15]`

use salient_bench::{arg_f64, arg_usize, bar, render_table};
use salient_core::{RunConfig, Trainer};
use salient_graph::DatasetConfig;
use salient_nn::metrics::accuracy_by_degree;
use std::sync::Arc;

fn main() {
    let scale = arg_f64("--scale", 0.2);
    let epochs = arg_usize("--epochs", 30);
    // Dense labels: the study needs per-degree-bucket statistics on the
    // test set, which the paper-faithful 90%-test split also provides, but
    // training needs enough labels per class at sim scale.
    let mut cfg = DatasetConfig::products_sim(scale);
    cfg.split_fracs = (0.5, 0.1, 0.4);
    let ds = Arc::new(cfg.build());
    let run = RunConfig {
        epochs,
        batch_size: 128,
        learning_rate: 5e-3,
        hidden: 64,
        num_layers: 3,
        train_fanouts: vec![15, 10, 5],
        infer_fanouts: vec![20, 20, 20],
        seed: 7,
        ..RunConfig::default()
    };
    let mut trainer = Trainer::new(Arc::clone(&ds), run);
    trainer.fit();
    let test = ds.splits.test.clone();
    let targets: Vec<u32> = test.iter().map(|&v| ds.labels[v as usize]).collect();

    let (_, preds_all) = trainer.evaluate_full(&test);
    let mut per_fanout = Vec::new();
    for d in [5usize, 10, 20] {
        let (_, preds) = trainer.evaluate_sampled(&test, &[d, d, d]);
        per_fanout.push((d, preds));
    }

    let buckets_all = accuracy_by_degree(&ds.graph, &test, &preds_all, &targets);
    println!(
        "Figure 3: accuracy and node count vs degree (products-sim, scale {scale}, {} test nodes)\n",
        test.len()
    );
    let max_count = buckets_all.iter().map(|b| b.count).max().unwrap_or(1) as f64;
    let mut rows = Vec::new();
    for (i, b) in buckets_all.iter().enumerate() {
        if b.count == 0 {
            continue;
        }
        let mut row = vec![
            format!("[{}, {})", b.degree_lo, b.degree_hi),
            format!("{:5} {}", b.count, bar(b.count as f64, max_count, 16)),
            format!("{:.3}", b.accuracy),
        ];
        for (d, preds) in &per_fanout {
            let bs = accuracy_by_degree(&ds.graph, &test, preds, &targets);
            row.push(format!("{:.3}", bs[i].accuracy));
            let _ = d;
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["degree", "#nodes", "acc(all)", "acc(5)", "acc(10)", "acc(20)"],
            &rows,
        )
    );
    println!("\nPaper shape: node counts are heavily skewed to low degrees; fanout 5 already");
    println!("matches 'all' on the left half; fanout 20 approximates the right half too.");
}
