//! Figure 4 — performance improvement of SALIENT over the standard PyG
//! workflow on one GPU: simulated at paper scale, plus a *real* wall-clock
//! comparison of this repository's two executors on the synthetic datasets.
//!
//! Expected shape (paper §6): 3×–3.4× across the three datasets. The real
//! single-core comparison shows a smaller but consistent win (parallel
//! batch prep cannot help on one core; the sampler and zero-copy gains
//! remain).
//!
//! Run: `cargo run --release -p salient-bench --bin fig4 [--scale 0.15]`

use salient_bench::{arg_f64, bar, fmt_s, fmt_x, render_table};
use salient_core::{ExecutorKind, RunConfig, Trainer};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sim::{simulate_epoch, CostModel, EpochConfig, OptLevel};
use std::sync::Arc;

fn main() {
    let model = CostModel::paper_hardware();
    println!("Figure 4: SALIENT vs PyG, one GPU (simulated at paper scale)\n");
    let paper_speedup = [3.4, 3.1, 3.1];
    let mut rows = Vec::new();
    let mut max = 0.0f64;
    let mut entries = Vec::new();
    for (stats, ps) in DatasetStats::all().into_iter().zip(paper_speedup) {
        let base = simulate_epoch(
            &EpochConfig::paper_default(stats.clone(), OptLevel::PygBaseline),
            &model,
        )
        .epoch_s;
        let salient = simulate_epoch(
            &EpochConfig::paper_default(stats.clone(), OptLevel::Pipelined),
            &model,
        )
        .epoch_s;
        max = max.max(base);
        entries.push((stats.name, base, salient, ps));
    }
    for (name, base, salient, ps) in &entries {
        rows.push(vec![
            name.to_string(),
            format!("{} {}", fmt_s(*base), bar(*base, max, 24)),
            format!("{} {}", fmt_s(*salient), bar(*salient, max, 24)),
            fmt_x(base / salient),
            format!("~{ps}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Data Set", "PyG epoch", "SALIENT epoch", "speedup", "paper"],
            &rows,
        )
    );

    // Real wall-clock comparison of the two executors (single core).
    let scale = arg_f64("--scale", 0.15);
    println!("\nReal executor comparison on synthetic data (scale {scale}, single core):\n");
    let mut rows = Vec::new();
    for cfg in [
        DatasetConfig::arxiv_sim(scale),
        DatasetConfig::products_sim(scale),
    ] {
        let ds = Arc::new(cfg.build());
        let time_of = |executor: ExecutorKind| {
            let run = RunConfig {
                executor,
                epochs: 1,
                batch_size: 256,
                hidden: 64,
                num_layers: 3,
                train_fanouts: vec![15, 10, 5],
                infer_fanouts: vec![20, 20, 20],
                num_workers: 2,
                ..RunConfig::default()
            };
            let mut trainer = Trainer::new(Arc::clone(&ds), run);
            let warm = trainer.train_epoch(); // warm-up epoch
            let stats = trainer.train_epoch();
            let _ = warm;
            stats.timings
        };
        let base = time_of(ExecutorKind::Baseline);
        let sal = time_of(ExecutorKind::Salient);
        rows.push(vec![
            ds.name.clone(),
            fmt_s(base.total_s),
            fmt_s(sal.total_s),
            fmt_x(base.total_s / sal.total_s),
            format!(
                "prep {} -> {}",
                fmt_s(base.prep_s),
                fmt_s(sal.prep_s)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Data Set", "Baseline", "SALIENT", "speedup", "prep blocking"],
            &rows,
        )
    );
}
