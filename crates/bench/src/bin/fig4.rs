//! Figure 4 — performance improvement of SALIENT over the standard PyG
//! workflow on one GPU: simulated at paper scale, plus a *real* wall-clock
//! comparison of this repository's two executors on the synthetic datasets.
//!
//! Expected shape (paper §6): 3×–3.4× across the three datasets. The real
//! single-core comparison shows a smaller but consistent win (parallel
//! batch prep cannot help on one core; the sampler and zero-copy gains
//! remain).
//!
//! Run: `cargo run --release -p salient-bench --bin fig4 [--scale 0.15]`

use salient_bench::{arg_f64, bar, fmt_s, fmt_x, render_table};
use salient_core::{ExecutorKind, RunConfig, Trainer};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sim::{simulate_epoch, CostModel, EpochConfig, OptLevel};
use salient_trace::{analyze, names, Clock, PipelineReport, Trace};
use std::sync::Arc;

fn main() {
    let model = CostModel::paper_hardware();
    println!("Figure 4: SALIENT vs PyG, one GPU (simulated at paper scale)\n");
    let paper_speedup = [3.4, 3.1, 3.1];
    let mut rows = Vec::new();
    let mut max = 0.0f64;
    let mut entries = Vec::new();
    for (stats, ps) in DatasetStats::all().into_iter().zip(paper_speedup) {
        let base = simulate_epoch(
            &EpochConfig::paper_default(stats.clone(), OptLevel::PygBaseline),
            &model,
        )
        .epoch_s;
        let salient = simulate_epoch(
            &EpochConfig::paper_default(stats.clone(), OptLevel::Pipelined),
            &model,
        )
        .epoch_s;
        max = max.max(base);
        entries.push((stats.name, base, salient, ps));
    }
    for (name, base, salient, ps) in &entries {
        rows.push(vec![
            name.to_string(),
            format!("{} {}", fmt_s(*base), bar(*base, max, 24)),
            format!("{} {}", fmt_s(*salient), bar(*salient, max, 24)),
            fmt_x(base / salient),
            format!("~{ps}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Data Set", "PyG epoch", "SALIENT epoch", "speedup", "paper"],
            &rows,
        )
    );

    // Real wall-clock comparison of the two executors (single core).
    let scale = arg_f64("--scale", 0.15);
    println!("\nReal executor comparison on synthetic data (scale {scale}, single core):\n");
    let mut rows = Vec::new();
    for cfg in [
        DatasetConfig::arxiv_sim(scale),
        DatasetConfig::products_sim(scale),
    ] {
        let ds = Arc::new(cfg.build());
        // Every number below comes from the trace registry: each executor
        // trains under its own recorder, and the second epoch's span window
        // is analyzed into a stall-attribution report.
        let report_of = |executor: ExecutorKind| -> PipelineReport {
            let run = RunConfig {
                executor,
                epochs: 1,
                batch_size: 256,
                hidden: 64,
                num_layers: 3,
                train_fanouts: vec![15, 10, 5],
                infer_fanouts: vec![20, 20, 20],
                num_workers: 2,
                ..RunConfig::default()
            };
            let mut trainer =
                Trainer::with_trace(Arc::clone(&ds), run, Trace::new(Clock::monotonic()));
            trainer.train_epoch(); // warm-up epoch
            trainer.train_epoch();
            let snap = trainer.trace().snapshot();
            let (e0, e1) = snap
                .spans(names::spans::EPOCH)
                .map(|ev| (ev.start_ns, ev.end_ns))
                .max()
                .expect("the trainer records an epoch span");
            analyze(&snap.window(e0, e1))
        };
        let base = report_of(ExecutorKind::Baseline);
        let sal = report_of(ExecutorKind::Salient);
        let s = |ns: u64| ns as f64 / 1e9;
        rows.push(vec![
            ds.name.clone(),
            fmt_s(s(base.window_ns)),
            fmt_s(s(sal.window_ns)),
            fmt_x(s(base.window_ns) / s(sal.window_ns)),
            format!("prep {} -> {}", fmt_s(s(base.prep_ns)), fmt_s(s(sal.prep_ns))),
            format!("{:.0}%", sal.overlap_frac() * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Data Set",
                "Baseline",
                "SALIENT",
                "speedup",
                "prep blocking",
                "overlap",
            ],
            &rows,
        )
    );
}
