//! Figure 5 — epoch time when scaling to multiple GPUs with proportionally
//! scaled batch size (SAGE, Table-5 configuration), simulated at paper
//! scale for 1–16 GPUs.
//!
//! Expected shape (paper §6): good scaling, larger datasets scale better;
//! at 16 GPUs speedups range 4.45×–8.05×.
//!
//! Run: `cargo run --release -p salient-bench --bin fig5`

use salient_bench::{bar, fmt_s, fmt_x, render_table};
use salient_graph::DatasetStats;
use salient_sim::{scaling_sweep, CostModel, EpochConfig, OptLevel};

fn main() {
    let model = CostModel::paper_hardware();
    let ranks = [1usize, 2, 4, 8, 16];
    println!("Figure 5: multi-GPU scaling (simulated; batch 1024 per GPU, SAGE (15,10,5))\n");
    for stats in DatasetStats::all() {
        let base_cfg = EpochConfig::paper_default(stats.clone(), OptLevel::Pipelined);
        let sweep = scaling_sweep(&base_cfg, &ranks, &model);
        let t1 = sweep[0].1;
        println!("{}:", stats.name);
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .map(|(r, t)| {
                vec![
                    format!("{r} GPU"),
                    fmt_s(*t),
                    fmt_x(t1 / t),
                    bar(*t, t1, 40),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["GPUs", "epoch", "speedup", ""], &rows)
        );
    }
    println!("Paper: 16-GPU speedups 4.45x (arxiv) .. 8.05x (papers); papers reaches 2.0 s/epoch.");
}
