//! Figure 6 — per-epoch training time (16 GPUs, simulated at paper scale)
//! and test accuracy after training (real, on the synthetic papers
//! analogue) for the four architectures: SAGE, GAT, GIN, SAGE-RI, each with
//! its Table-5 hyperparameters.
//!
//! Expected shape (paper §6): training time varies strongly by
//! architecture (SAGE fastest, SAGE-RI slowest); SALIENT's speedup over PyG
//! is largest for SAGE (~2.3×) and smallest (but >1.4×) for the
//! compute-dense models; SAGE-RI reaches the best accuracy.
//!
//! Run: `cargo run --release -p salient-bench --bin fig6 [--scale 0.08] [--epochs 12]`

use salient_bench::{arg_f64, arg_usize, fmt_s, fmt_x, render_table};
use salient_core::{ModelKindConfig, RunConfig, Trainer};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sim::{
    simulate_multi_gpu, CostModel, EpochConfig, GnnArch, MultiGpuConfig, OptLevel,
};
use std::sync::Arc;

struct ArchRow {
    arch: GnnArch,
    model: ModelKindConfig,
    hidden_paper: u32,
    fanouts: Vec<usize>,
    hidden_real: usize,
}

fn main() {
    let model = CostModel::paper_hardware();
    let archs = [
        ArchRow { arch: GnnArch::Sage, model: ModelKindConfig::Sage, hidden_paper: 256, fanouts: vec![15, 10, 5], hidden_real: 64 },
        ArchRow { arch: GnnArch::Gat, model: ModelKindConfig::Gat, hidden_paper: 256, fanouts: vec![15, 10, 5], hidden_real: 64 },
        ArchRow { arch: GnnArch::Gin, model: ModelKindConfig::Gin, hidden_paper: 256, fanouts: vec![20, 20, 20], hidden_real: 64 },
        ArchRow { arch: GnnArch::SageRi, model: ModelKindConfig::SageRi, hidden_paper: 1024, fanouts: vec![12, 12, 12], hidden_real: 96 },
    ];

    // Simulated 16-GPU epoch times + speedup over a 16-GPU PyG baseline.
    println!("Figure 6 (time): papers100M per-epoch training time on 16 GPUs (simulated)\n");
    let mut rows = Vec::new();
    for a in &archs {
        let base_cfg = EpochConfig {
            arch: a.arch,
            hidden: a.hidden_paper,
            fanouts: a.fanouts.clone(),
            ..EpochConfig::paper_default(DatasetStats::papers(), OptLevel::Pipelined)
        };
        let salient = simulate_multi_gpu(
            &MultiGpuConfig { base: base_cfg.clone(), ranks: 16, gpus_per_machine: 2 },
            &model,
        )
        .epoch_s;
        let pyg = simulate_multi_gpu(
            &MultiGpuConfig {
                base: EpochConfig { level: OptLevel::PygBaseline, ..base_cfg },
                ranks: 16,
                gpus_per_machine: 2,
            },
            &model,
        )
        .epoch_s;
        rows.push(vec![
            a.arch.name().to_string(),
            format!("{:?}", a.fanouts),
            a.hidden_paper.to_string(),
            fmt_s(salient),
            fmt_s(pyg),
            fmt_x(pyg / salient),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["GNN", "Fanout", "Hidden", "SALIENT", "PyG", "speedup"],
            &rows,
        )
    );
    println!("Paper: SAGE ~2.0s with ~2.3x speedup; GAT/SAGE-RI smallest speedup but >1.4x.\n");

    // Real accuracy on the synthetic papers analogue.
    let scale = arg_f64("--scale", 0.08);
    let epochs = arg_usize("--epochs", 25);
    println!("Figure 6 (accuracy): real training on papers-sim (scale {scale}, {epochs} epochs)\n");
    // Dense labels so 172-way classification is trainable at sim scale.
    let mut ds_cfg = DatasetConfig::papers_sim(scale);
    ds_cfg.split_fracs = (0.5, 0.1, 0.4);
    let ds = Arc::new(ds_cfg.build());
    let mut rows = Vec::new();
    for a in &archs {
        let run = RunConfig {
            model: a.model,
            hidden: a.hidden_real,
            num_layers: 3,
            train_fanouts: a.fanouts.clone(),
            infer_fanouts: vec![20, 20, 20],
            batch_size: 128,
            learning_rate: 5e-3,
            epochs,
            seed: 11,
            ..RunConfig::default()
        };
        let t = std::time::Instant::now();
        let mut trainer = Trainer::new(Arc::clone(&ds), run);
        let history = trainer.fit();
        let (acc, _) = trainer.evaluate_sampled(&ds.splits.test.clone(), &[20, 20, 20]);
        rows.push(vec![
            a.arch.name().to_string(),
            format!("{:.4}", acc),
            format!("{:.3}", history.last().unwrap().mean_loss),
            fmt_s(t.elapsed().as_secs_f64()),
        ]);
    }
    println!(
        "{}",
        render_table(&["GNN", "test acc", "final loss", "wall"], &rows)
    );
    println!("Paper accuracies (real papers100M): SAGE 64.6, GAT ~65, GIN ~61, SAGE-RI ~66.1.");
}
