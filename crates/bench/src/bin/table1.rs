//! Table 1 — per-operation performance breakdown of the baseline PyG
//! training code (blocking times for batch preparation, transfer, and GPU
//! training), simulated at paper scale.
//!
//! Run: `cargo run --release -p salient-bench --bin table1`

use salient_bench::{fmt_pct, fmt_s, render_table};
use salient_graph::DatasetStats;
use salient_sim::{simulate_epoch, CostModel, EpochConfig, OptLevel};

fn main() {
    let model = CostModel::paper_hardware();
    let paper = [
        // (epoch, prep, prep%, transfer, transfer%, train, train%)
        ("arxiv", 1.7, 1.0, 58, 0.3, 15, 0.5, 27),
        ("products", 8.6, 4.0, 46, 2.2, 26, 2.4, 28),
        ("papers", 50.4, 18.6, 37, 17.9, 35, 13.9, 28),
    ];
    let mut rows = Vec::new();
    for (stats, p) in DatasetStats::all().into_iter().zip(paper.iter()) {
        let r = simulate_epoch(
            &EpochConfig::paper_default(stats.clone(), OptLevel::PygBaseline),
            &model,
        );
        rows.push(vec![
            stats.name.to_string(),
            fmt_s(r.epoch_s),
            fmt_s(r.prep_s),
            fmt_pct(r.pct(r.prep_s)),
            fmt_s(r.transfer_s),
            fmt_pct(r.pct(r.transfer_s)),
            fmt_s(r.train_s),
            fmt_pct(r.pct(r.train_s)),
            format!(
                "{}s / {}s / {}s / {}s",
                p.1, p.2, p.4, p.6
            ),
        ]);
    }
    println!("Table 1: per-operation breakdown of the baseline PyG training code");
    println!("(3-layer GraphSAGE, fanout (15,10,5), hidden 256, batch 1024; simulated)\n");
    println!(
        "{}",
        render_table(
            &[
                "Data Set",
                "Epoch",
                "Batch Prep.",
                "%",
                "Transfer",
                "%",
                "Train (GPU)",
                "%",
                "paper: epoch/prep/xfer/train",
            ],
            &rows,
        )
    );
    println!("Paper reference: prep 37-58%, transfer 15-35%, GPU train ~28% across datasets.");
}
