//! Table 2 — breakdown of an ogbn-products epoch batch-preparation time for
//! PyG and SALIENT with P threads on 20 cores (simulated at paper scale),
//! plus a *real* single-thread sampler microbenchmark on the synthetic
//! products-sim dataset that validates the modeled PyG/SALIENT ratio.
//!
//! Run: `cargo run --release -p salient-bench --bin table2 [--scale 0.25]`

use salient_bench::{arg_f64, fmt_s, fmt_x, render_table};
use salient_graph::{DatasetConfig, DatasetStats};
use salient_sampler::{FastSampler, PygSampler};
use salient_sim::{expected_batch, CostModel, Impl};
use salient_trace::{names, Clock, Trace};

fn main() {
    let model = CostModel::paper_hardware();
    let stats = DatasetStats::products();
    let w = expected_batch(&stats, &[15, 10, 5], 1024);
    let batches = stats.batches_per_epoch(1024) as f64;

    println!("Table 2: ogbn-products epoch batch preparation time, P threads on 20 cores");
    println!("(simulated from the calibrated cost model)\n");
    let mut rows = Vec::new();
    for p in [1usize, 10, 20] {
        let cell = |who: Impl, stage: &str| -> f64 {
            let (t1, serial) = match (who, stage) {
                (Impl::Pyg, "sample") => (
                    model.sample_batch_ns(Impl::Pyg, &w) * batches,
                    model.sample_serial_frac_pyg,
                ),
                (Impl::Pyg, _) => (
                    model.slice_batch_ns(Impl::Pyg, &w) * batches,
                    model.slice_serial_frac_pyg,
                ),
                (Impl::Salient, "sample") => (
                    model.sample_batch_ns(Impl::Salient, &w) * batches,
                    model.sample_serial_frac_salient,
                ),
                (Impl::Salient, _) => (
                    model.slice_batch_ns(Impl::Salient, &w) * batches,
                    model.slice_serial_frac_salient,
                ),
            };
            CostModel::parallel_time(t1, p, serial) / 1e9
        };
        // "Both": PyG runs sampling and slicing concurrently (2P threads),
        // so the epoch cost is the max; SALIENT threads do both serially in
        // P threads total, so the cost is the sum.
        let pyg_both = cell(Impl::Pyg, "sample").max(cell(Impl::Pyg, "slice"));
        let sal_both = cell(Impl::Salient, "sample") + cell(Impl::Salient, "slice");
        rows.push(vec![
            p.to_string(),
            fmt_s(cell(Impl::Pyg, "sample")),
            fmt_s(cell(Impl::Pyg, "slice")),
            fmt_s(pyg_both),
            fmt_s(cell(Impl::Salient, "sample")),
            fmt_s(cell(Impl::Salient, "slice")),
            fmt_s(sal_both),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "P",
                "PyG Sampling",
                "PyG Slicing",
                "PyG Both",
                "SAL Sampling",
                "SAL Slicing",
                "SAL Both",
            ],
            &rows,
        )
    );
    println!("Paper: P=1: 71.1s/7.6s/72.7s vs 28.3s/7.3s/35.6s; P=20: 7.2s/1.2s/7.3s vs 1.9s/0.6s/2.5s\n");

    // Real measurement: single-thread sampler throughput ratio on the
    // synthetic products analogue.
    let scale = arg_f64("--scale", 0.25);
    let ds = DatasetConfig::products_sim(scale).build();
    let fanouts = [15usize, 10, 5];
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(512).collect();
    let reps = 6;

    // Timed through the trace registry: each sampler's reps run under a
    // named span, and the wall-clock totals are read back from the snapshot.
    let trace = Trace::new(Clock::monotonic());
    let mut pyg = PygSampler::new(7);
    let mut pyg_edges = 0usize;
    {
        let _span = trace.span(names::spans::BENCH_SAMPLE_PYG);
        for _ in 0..reps {
            pyg_edges += pyg.sample(&ds.graph, &batch, &fanouts).num_edges();
        }
    }

    let mut fast = FastSampler::new(7);
    let mut fast_edges = 0usize;
    {
        let _span = trace.span(names::spans::BENCH_SAMPLE_FAST);
        for _ in 0..reps {
            fast_edges += fast.sample(&ds.graph, &batch, &fanouts).num_edges();
        }
    }
    let snap = trace.snapshot();
    let pyg_t = snap.sum_ns(names::spans::BENCH_SAMPLE_PYG) as f64 / 1e9;
    let fast_t = snap.sum_ns(names::spans::BENCH_SAMPLE_FAST) as f64 / 1e9;

    println!("Real single-thread sampler measurement (products-sim, scale {scale}):");
    println!(
        "  PyG-style: {} for {} edges ({:.0} ns/edge)",
        fmt_s(pyg_t),
        pyg_edges,
        pyg_t * 1e9 / pyg_edges as f64
    );
    println!(
        "  SALIENT:   {} for {} edges ({:.0} ns/edge)",
        fmt_s(fast_t),
        fast_edges,
        fast_t * 1e9 / fast_edges as f64
    );
    println!(
        "  measured speedup {} (paper: ~2.5x)",
        fmt_x(pyg_t / fast_t * fast_edges as f64 / pyg_edges as f64)
    );
}
