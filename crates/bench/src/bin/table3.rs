//! Table 3 — impact of SALIENT optimizations on per-epoch runtime: the
//! cumulative ladder PyG → +fast sampling → +shared-memory batch prep →
//! +pipelined transfers, simulated at paper scale.
//!
//! Run: `cargo run --release -p salient-bench --bin table3`

use salient_bench::{fmt_s, render_table};
use salient_graph::DatasetStats;
use salient_sim::{simulate_epoch, CostModel, EpochConfig, OptLevel};

fn main() {
    let model = CostModel::paper_hardware();
    let paper = [
        ("None (PyG)", [1.7, 8.6, 50.4]),
        ("+ Fast sampling", [0.7, 5.3, 34.6]),
        ("+ Shared-memory batch prep.", [0.6, 4.2, 27.8]),
        ("+ Pipelined data transfers", [0.5, 2.8, 16.5]),
    ];
    let mut rows = Vec::new();
    for (level, (label, paper_vals)) in OptLevel::ladder().into_iter().zip(paper.iter()) {
        let mut row = vec![label.to_string()];
        for (stats, pv) in DatasetStats::all().into_iter().zip(paper_vals.iter()) {
            let r = simulate_epoch(&EpochConfig::paper_default(stats, level), &model);
            row.push(format!("{} (paper {}s)", fmt_s(r.epoch_s), pv));
        }
        rows.push(row);
    }
    println!("Table 3: impact of SALIENT optimizations on per-epoch runtime (simulated)\n");
    println!(
        "{}",
        render_table(&["Optimization", "arxiv", "products", "papers"], &rows)
    );
}
