//! Table 4 — summary of data sets: the paper's published OGB statistics
//! side-by-side with the synthetic stand-ins this repository actually
//! materializes and trains on.
//!
//! Run: `cargo run --release -p salient-bench --bin table4 [--scale 0.2]`

use salient_bench::{arg_f64, render_table};
use salient_graph::{DatasetConfig, DatasetStats};

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() {
    println!("Table 4: summary of data sets\n");
    let rows: Vec<Vec<String>> = DatasetStats::all()
        .into_iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                human(s.num_nodes),
                human(s.num_edges),
                s.feat_dim.to_string(),
                format!(
                    "{} / {} / {}",
                    human(s.train_size),
                    human(s.val_size),
                    human(s.test_size)
                ),
            ]
        })
        .collect();
    println!("Paper scale (drives the event simulator):");
    println!(
        "{}",
        render_table(
            &["Data Set", "#Nodes", "#Edges", "#Feat.", "Train / Val / Test"],
            &rows,
        )
    );

    let scale = arg_f64("--scale", 0.2);
    println!("Synthetic sim scale {scale} (materialized; drives real training):");
    let configs = [
        DatasetConfig::arxiv_sim(scale),
        DatasetConfig::products_sim(scale),
        DatasetConfig::papers_sim(scale),
    ];
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|c| {
            let ds = c.build();
            vec![
                ds.name.clone(),
                human(ds.graph.num_nodes() as u64),
                human(ds.graph.num_edges() as u64),
                ds.features.dim().to_string(),
                format!(
                    "{} / {} / {}",
                    ds.splits.train.len(),
                    ds.splits.val.len(),
                    ds.splits.test.len()
                ),
                format!("{:.1}", ds.graph.avg_degree()),
                format!("{:.1} MB", ds.memory_bytes() as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Data Set",
                "#Nodes",
                "#Edges",
                "#Feat.",
                "Train / Val / Test",
                "AvgDeg",
                "Memory",
            ],
            &rows,
        )
    );
}
