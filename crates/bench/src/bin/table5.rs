//! Table 5 — GNN hyperparameters used by the paper's experiments, and the
//! sim-scale equivalents this repository trains with.
//!
//! Run: `cargo run --release -p salient-bench --bin table5`

use salient_bench::render_table;
use salient_core::RunConfig;

fn main() {
    println!("Table 5: GNN hyperparameters (paper scale)\n");
    let rows = vec![
        vec!["arxiv", "SAGE", "3", "256", "(15, 10, 5)", "1024"],
        vec!["products", "SAGE", "3", "256", "(15, 10, 5)", "1024"],
        vec!["papers", "SAGE", "3", "256", "(15, 10, 5)", "1024"],
        vec!["papers", "GAT", "3", "256", "(15, 10, 5)", "1024"],
        vec!["papers", "GIN", "3", "256", "(20, 20, 20)", "1024"],
        vec!["papers", "SAGE-RI", "3", "1024", "(12, 12, 12)", "1024"],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(String::from).collect())
    .collect::<Vec<Vec<String>>>();
    println!(
        "{}",
        render_table(
            &["Data Set", "GNN", "#Layers", "Hidden", "Fanout", "Batch"],
            &rows,
        )
    );

    let d = RunConfig::default();
    println!("Sim-scale defaults used by this repository's real training runs:");
    println!(
        "  model SAGE, layers {}, hidden {}, train fanout {:?}, infer fanout {:?}, batch {}, lr {}, Adam",
        d.num_layers, d.hidden, d.train_fanouts, d.infer_fanouts, d.batch_size, d.learning_rate
    );
}
