//! Table 6 — test accuracy under various neighborhood fanouts for
//! inference. Real training on the synthetic datasets: a 3-layer GraphSAGE
//! is trained with fanout (15, 10, 5), then the test set is evaluated with
//! full neighborhoods and with sampled fanouts (20,20,20) / (10,10,10) /
//! (5,5,5), repeated `--reps` times.
//!
//! Expected shape (paper §5, Table 6): accuracy saturates by fanout 20 —
//! sampled inference matches full-neighborhood inference.
//!
//! Run: `cargo run --release -p salient-bench --bin table6 [--scale 0.15] [--reps 3] [--epochs 15]`

use salient_bench::{arg_f64, arg_usize, render_table};
use salient_core::{RunConfig, Trainer};
use salient_graph::DatasetConfig;
use std::sync::Arc;

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let scale = arg_f64("--scale", 0.15);
    let reps = arg_usize("--reps", 3);
    let epochs = arg_usize("--epochs", 30);
    let fanout_sets: [&[usize]; 3] = [&[20, 20, 20], &[10, 10, 10], &[5, 5, 5]];

    println!("Table 6: test accuracy vs inference fanout (real training, scale {scale}, {reps} reps)\n");
    let mut rows = Vec::new();
    for mut cfg in [
        DatasetConfig::arxiv_sim(scale),
        DatasetConfig::products_sim(scale),
        DatasetConfig::papers_sim(scale.max(0.05)),
    ] {
        // The paper's OGB splits label only a sliver of products/papers;
        // at synthetic sim scale that leaves too few examples per class to
        // train at all, so the accuracy experiments use dense labels
        // (50/10/40). The quantity under study — accuracy vs inference
        // fanout — is unaffected by the split sizes.
        cfg.split_fracs = (0.5, 0.1, 0.4);
        let ds = Arc::new(cfg.build());
        let mut acc_full = Vec::new();
        let mut acc_sampled = vec![Vec::new(); fanout_sets.len()];
        for rep in 0..reps {
            let run = RunConfig {
                epochs,
                seed: 1000 + rep as u64,
                batch_size: 128,
                learning_rate: 5e-3,
                hidden: 64,
                num_layers: 3,
                train_fanouts: vec![15, 10, 5],
                infer_fanouts: vec![20, 20, 20],
                ..RunConfig::default()
            };
            let mut trainer = Trainer::new(Arc::clone(&ds), run);
            trainer.fit();
            let test = ds.splits.test.clone();
            let (full, _) = trainer.evaluate_full(&test);
            acc_full.push(full);
            for (accs, fanouts) in acc_sampled.iter_mut().zip(fanout_sets.iter()) {
                let (acc, _) = trainer.evaluate_sampled(&test, fanouts);
                accs.push(acc);
            }
        }
        let (fm, fs) = mean_std(&acc_full);
        let mut row = vec![ds.name.clone(), format!(".{:04.0}±.{:03.0}", fm * 1e4, fs * 1e3)];
        for accs in &acc_sampled {
            let (m, s) = mean_std(accs);
            row.push(format!(".{:04.0}±.{:03.0}", m * 1e4, s * 1e3));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "Data Set",
                "fanout: all",
                "(20, 20, 20)",
                "(10, 10, 10)",
                "(5, 5, 5)",
            ],
            &rows,
        )
    );
    println!("Paper (real OGB data): arxiv .6980→.7002 by fanout 20; products .7749→.7755;");
    println!("papers .6379→.6469 — i.e. fanout 20 matches full neighborhoods. The synthetic");
    println!("planted-label task reproduces the *saturation shape*, not the absolute numbers.");
}
