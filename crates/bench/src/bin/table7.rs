//! Table 7 — representative GNN training systems and their reported
//! performance on the largest graph each reported, with this reproduction's
//! simulated SALIENT row computed live.
//!
//! Run: `cargo run --release -p salient-bench --bin table7`

use salient_bench::{fmt_s, render_table};
use salient_graph::DatasetStats;
use salient_sim::{
    simulate_multi_gpu, CostModel, EpochConfig, MultiGpuConfig, OptLevel,
};

fn main() {
    println!("Table 7: representative GNN training systems (reported numbers from the paper)\n");
    let static_rows: Vec<Vec<String>> = vec![
        vec!["NeuGraph", "TensorFlow", "full-batch", "GCN L=2", "1x(28 cores, 8 P100)", "amazon 8.6M/232M", "0.655", "N/A"],
        vec!["Roc", "FlexFlow/Lux", "full-batch", "GCN", "4x(20 cores, 4 P100)", "amazon 9.4M/232M", "0.526", "N/A"],
        vec!["DistDGL", "PyTorch+DGL", "mini-batch 2000", "SAGE L=3 h=256", "16 EC2 x 96 vCPU", "papers100M", "13", "N/A"],
        vec!["DeepGalois", "Galois", "full-batch", "SAGE L=2 h=16", "32x48 cores", "papers100M", "70", "N/A"],
        vec!["Zero-Copy", "PyTorch+DGL", "mini-batch", "SAGE", "1x(24 cores, 2 RTX3090)", "papers100M", "648", "N/A"],
        vec!["GNS", "PyTorch+DGL", "mini-batch 1000", "SAGE L=3 h=256", "1 EC2, 1 T4", "papers100M", "98.5", "63.31"],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(String::from).collect())
    .collect();

    let model = CostModel::paper_hardware();
    let train = simulate_multi_gpu(
        &MultiGpuConfig {
            base: EpochConfig::paper_default(DatasetStats::papers(), OptLevel::Pipelined),
            ranks: 16,
            gpus_per_machine: 2,
        },
        &model,
    );
    // Inference with fanout (20,20,20) over the test set on 16 GPUs.
    let infer_cfg = EpochConfig {
        fanouts: vec![20, 20, 20],
        ..EpochConfig::paper_default(DatasetStats::papers(), OptLevel::Pipelined)
    };
    let infer_s = salient_sim::simulate_inference_epoch(
        &infer_cfg,
        &model,
        DatasetStats::papers().test_size,
        16,
    );

    let mut rows = static_rows;
    rows.push(vec![
        "SALIENT (this repro, simulated)".into(),
        "Rust".into(),
        "mini-batch 1024".into(),
        "SAGE L=3 h=256".into(),
        "8x(2x20 cores, 2 V100)".into(),
        "papers100M".into(),
        format!("train {} / infer {}", fmt_s(train.epoch_s), fmt_s(infer_s)),
        "64.58 (paper)".into(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "System",
                "Framework",
                "Batching",
                "GNN",
                "Machines",
                "Data Set",
                "Speed (s/epoch)",
                "Acc. (%)",
            ],
            &rows,
        )
    );
    println!("Paper's SALIENT row: train 2.0 s/epoch, inference 2.4 s on the test set, acc 64.58±0.40.");
}
