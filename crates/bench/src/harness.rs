//! A small self-contained timing harness (the workspace's replacement for an
//! external benchmark framework).
//!
//! Each measurement warms the code path, calibrates an iteration count to a
//! target batch duration, then records many batch samples and reports
//! min/median/mean per-iteration times. Benches are plain `main()` binaries
//! (`harness = false`), so `cargo bench` runs them directly; results print as
//! a table and can be exported as JSON with [`write_json`].

use std::time::Instant;

/// Summary statistics for one benchmarked operation.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Operation label.
    pub name: String,
    /// Iterations per recorded batch.
    pub iters: usize,
    /// Fastest observed per-iteration seconds (least-noise estimate).
    pub min_s: f64,
    /// Median per-iteration seconds.
    pub p50_s: f64,
    /// Mean per-iteration seconds over all batches.
    pub mean_s: f64,
}

impl Sample {
    /// Throughput in "units per second" for a caller-defined per-iteration
    /// unit count (FLOPs, rows, edges), based on the median time.
    pub fn per_second(&self, units_per_iter: f64) -> f64 {
        units_per_iter / self.p50_s
    }
}

/// Target wall-clock length of one measured batch.
const BATCH_TARGET_S: f64 = 0.05;
/// Number of recorded batches.
const BATCHES: usize = 20;
/// Cap on iterations per batch (protects very cheap ops from huge loops).
const MAX_ITERS: usize = 1_000_000;

/// Measurement parameters, honouring `SALIENT_BENCH_SMOKE`: when the
/// variable is set (the CI mixed-precision tier), batches are shorter and
/// fewer, trading precision for runtime while keeping every code path and
/// assertion identical to the full run.
fn batch_params() -> (f64, usize) {
    if std::env::var("SALIENT_BENCH_SMOKE").is_ok() {
        (0.01, 5)
    } else {
        (BATCH_TARGET_S, BATCHES)
    }
}

/// Measures `f`, returning per-iteration statistics.
///
/// The closure should perform one unit of work and return a value; the
/// result is passed through `std::hint::black_box` so the optimizer cannot
/// elide the computation.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Sample {
    let (batch_target_s, batches) = batch_params();
    // Warm up (page in code/data, let the thread pool spin up).
    let warm_start = Instant::now();
    std::hint::black_box(f());
    let first = warm_start.elapsed().as_secs_f64().max(1e-9);

    // Calibrate iterations per batch from the first observation.
    let iters = ((batch_target_s / first) as usize).clamp(1, MAX_ITERS);
    for _ in 0..iters.min(3) {
        std::hint::black_box(f());
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min_s = per_iter[0];
    let p50_s = per_iter[per_iter.len() / 2];
    let mean_s = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    Sample { name: name.to_string(), iters, min_s, p50_s, mean_s }
}

/// Formats a per-iteration time with an adaptive unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Prints a result table for a bench group.
pub fn report(group: &str, samples: &[Sample]) {
    println!("== {group}");
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                fmt_time(s.p50_s),
                fmt_time(s.min_s),
                fmt_time(s.mean_s),
                s.iters.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::render_table(&["bench", "median", "min", "mean", "iters/batch"], &rows)
    );
    println!();
}

/// A JSON value for the hand-rolled writer (no external serialization
/// dependency).
#[derive(Clone, Debug)]
pub enum Json {
    /// A float (written with enough digits to round-trip).
    Num(f64),
    /// A string (escaped minimally; labels here are ASCII identifiers).
    Str(String),
    /// An ordered map.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&format!("{pad}  \"{k}\": "));
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&format!("{pad}}}"));
            }
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&format!("{pad}  "));
                    v.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&format!("{pad}]"));
            }
        }
    }

    /// Renders the value as pretty-printed JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

/// Writes a JSON value to `path`.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let s = bench("spin", || {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        assert!(s.min_s > 0.0);
        assert!(s.p50_s >= s.min_s);
        assert!(s.iters >= 1);
    }

    #[test]
    fn json_renders_expected_shape() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("gemm".into())),
            ("gflops".into(), Json::Num(12.5)),
            ("shape".into(), Json::Arr(vec![Json::Num(1024.0), Json::Num(602.0)])),
        ]);
        let text = j.render();
        assert!(text.contains("\"name\": \"gemm\""));
        assert!(text.contains("\"gflops\": 12.5"));
        assert!(text.contains("1024"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
