//! # salient-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation. Each binary prints one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | baseline per-operation breakdown |
//! | `table2` | sampling/slicing thread scaling, PyG vs SALIENT |
//! | `table3` | the optimization ladder |
//! | `table4` | dataset summary |
//! | `table5` | hyperparameter table |
//! | `table6` | inference accuracy vs fanout (real training) |
//! | `table7` | cross-system comparison |
//! | `fig1`   | execution timeline, baseline vs SALIENT |
//! | `fig2`   | 48-variant sampler design space (real wall clock) |
//! | `fig3`   | accuracy & node count vs degree (real training) |
//! | `fig4`   | single-GPU speedup over PyG |
//! | `fig5`   | multi-GPU scaling |
//! | `fig6`   | per-architecture time & accuracy |
//!
//! Microbenches (`cargo bench`, built on the in-repo [`harness`] module)
//! cover the sampler variants, slicing kernels, lock-free queue vs static
//! partitioning, tensor kernels, f16 conversion, the CPU kernel layer
//! (emitting `BENCH_kernels.json`), and the DES engine itself.

pub mod harness;

use std::fmt::Write as _;

/// Renders rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut width = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(line, "| {:w$} ", h, w = width[i]);
    }
    line.push('|');
    let rule: String = line
        .chars()
        .map(|c| if c == '|' { '|' } else { '-' })
        .collect();
    let _ = writeln!(out, "{line}");
    let _ = writeln!(out, "{rule}");
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let pad = width[i].saturating_sub(cell.chars().count());
            let _ = write!(line, "| {}{} ", cell, " ".repeat(pad));
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Formats seconds with sensible precision.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 10.0 {
        format!("{s:.1}s")
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.0}%")
}

/// Parses `--scale <f64>` style flags from `std::env::args` with a default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--reps <usize>` style flags with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Renders a unicode horizontal bar of `value/max` scaled to `width` cells.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "all rows equal width");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(123.4), "123s");
        assert_eq!(fmt_s(12.34), "12.3s");
        assert_eq!(fmt_s(1.234), "1.23s");
        assert_eq!(fmt_x(2.5), "2.50x");
        assert_eq!(fmt_pct(28.4), "28%");
    }

    #[test]
    fn bars() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
    }
}
