//! GPU-side feature caching (the paper's §8 future-work direction, after
//! GNS, Dong et al. 2021): keep the features of "hot" nodes resident on the
//! device so slicing and CPU→GPU transfer only touch cache misses.
//!
//! Under power-law degree distributions, node popularity in sampled
//! neighborhoods is proportional to degree, so a small degree-ordered cache
//! absorbs a large share of feature traffic. This module implements the
//! cache policy and hit accounting; `salient-bench --bin ablation_cache`
//! sweeps capacity against both real hit rates and simulated epoch times.

use salient_graph::{CsrGraph, NodeId};

/// Which nodes to pin in device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// The highest-degree nodes (GNS-style; optimal for node-wise sampling
    /// because sampling probability is proportional to degree).
    TopDegree,
    /// Uniformly random nodes (control baseline).
    Random {
        /// RNG seed for the random selection.
        seed: u64,
    },
}

/// A static device-resident feature cache with hit/miss accounting.
#[derive(Debug)]
pub struct FeatureCache {
    cached: Vec<bool>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl FeatureCache {
    /// Builds a cache over `capacity` nodes of the graph under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity > graph.num_nodes()`.
    pub fn new(graph: &CsrGraph, capacity: usize, policy: CachePolicy) -> Self {
        let n = graph.num_nodes();
        assert!(capacity <= n, "cache larger than the graph");
        let mut cached = vec![false; n];
        match policy {
            CachePolicy::TopDegree => {
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
                for &v in order.iter().take(capacity) {
                    cached[v as usize] = true;
                }
            }
            CachePolicy::Random { seed } => {
                use salient_tensor::rng::SliceRandom;
                let mut order: Vec<u32> = (0..n as u32).collect();
                let mut rng = salient_tensor::rng::StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
                for &v in order.iter().take(capacity) {
                    cached[v as usize] = true;
                }
            }
        }
        FeatureCache {
            cached,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Builds a cache sized as a fraction of the graph.
    pub fn with_fraction(graph: &CsrGraph, fraction: f64, policy: CachePolicy) -> Self {
        let capacity = ((graph.num_nodes() as f64) * fraction.clamp(0.0, 1.0)) as usize;
        Self::new(graph, capacity, policy)
    }

    /// Number of cached nodes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether node `v` is resident.
    pub fn contains(&self, v: NodeId) -> bool {
        self.cached[v as usize]
    }

    /// Splits a batch's node list into `(resident, missing)` and records the
    /// counts. Only `missing` must be sliced and transferred.
    pub fn partition(&mut self, node_ids: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut hit = Vec::new();
        let mut miss = Vec::new();
        for &v in node_ids {
            if self.cached[v as usize] {
                hit.push(v);
            } else {
                miss.push(v);
            }
        }
        self.hits += hit.len() as u64;
        self.misses += miss.len() as u64;
        (hit, miss)
    }

    /// Lifetime hit rate over every partitioned node.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets the hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Expected transfer-byte reduction for a batch given a measured hit rate
/// (features only; MFG structure must always cross the bus).
pub fn transfer_reduction(feature_bytes: f64, structure_bytes: f64, hit_rate: f64) -> f64 {
    let before = feature_bytes + structure_bytes;
    let after = feature_bytes * (1.0 - hit_rate) + structure_bytes;
    1.0 - after / before
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;
    use salient_sampler::FastSampler;

    #[test]
    fn top_degree_cache_pins_hubs() {
        let ds = DatasetConfig::tiny(60).build();
        let cache = FeatureCache::with_fraction(&ds.graph, 0.1, CachePolicy::TopDegree);
        let threshold: Vec<usize> = (0..ds.graph.num_nodes() as u32)
            .filter(|&v| cache.contains(v))
            .map(|v| ds.graph.degree(v))
            .collect();
        let max_uncached = (0..ds.graph.num_nodes() as u32)
            .filter(|&v| !cache.contains(v))
            .map(|v| ds.graph.degree(v))
            .max()
            .unwrap();
        assert!(
            threshold.iter().all(|&d| d >= max_uncached.saturating_sub(0).min(d) || d >= max_uncached),
            "every cached node should have degree >= every uncached node"
        );
        let min_cached = threshold.iter().min().copied().unwrap();
        assert!(min_cached >= max_uncached, "{min_cached} < {max_uncached}");
    }

    #[test]
    fn degree_cache_beats_random_on_sampled_batches() {
        let ds = DatasetConfig::products_sim(0.1).build();
        let mut deg = FeatureCache::with_fraction(&ds.graph, 0.1, CachePolicy::TopDegree);
        let mut rnd =
            FeatureCache::with_fraction(&ds.graph, 0.1, CachePolicy::Random { seed: 1 });
        let mut sampler = FastSampler::new(0);
        for chunk in ds.splits.train.chunks(64).take(6) {
            let mfg = sampler.sample(&ds.graph, chunk, &[10, 5]);
            deg.partition(&mfg.node_ids);
            rnd.partition(&mfg.node_ids);
        }
        assert!(
            deg.hit_rate() > rnd.hit_rate() + 0.05,
            "degree cache {:.3} should clearly beat random {:.3}",
            deg.hit_rate(),
            rnd.hit_rate()
        );
        // Under a power law, 10% capacity absorbs noticeably more than 10%
        // of sampled feature rows. (The margin is tempered by MFG dedup: a
        // hub contributes one feature row per batch no matter how often it
        // is sampled.)
        assert!(deg.hit_rate() > 0.14, "hit rate {:.3}", deg.hit_rate());
    }

    #[test]
    fn partition_is_exact() {
        let ds = DatasetConfig::tiny(61).build();
        let mut cache = FeatureCache::with_fraction(&ds.graph, 0.5, CachePolicy::TopDegree);
        let nodes: Vec<u32> = (0..100).collect();
        let (hit, miss) = cache.partition(&nodes);
        assert_eq!(hit.len() + miss.len(), nodes.len());
        assert!(hit.iter().all(|&v| cache.contains(v)));
        assert!(miss.iter().all(|&v| !cache.contains(v)));
        cache.reset_stats();
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn transfer_reduction_math() {
        // 80% hit rate on features that are 90% of the payload -> 72% cut.
        let r = transfer_reduction(900.0, 100.0, 0.8);
        assert!((r - 0.72).abs() < 1e-9);
        assert_eq!(transfer_reduction(900.0, 100.0, 0.0), 0.0);
    }
}
