//! Model checkpointing: save/restore parameter tensors by name.
//!
//! The format is a small self-describing binary layout (magic, version,
//! little-endian lengths and `f32` payloads) written with std I/O only, so
//! no serialization-format dependency is needed.

use salient_nn::GnnModel;
use salient_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SALIENT\x01";

/// A named set of tensors (model parameters, optimizer state, …).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    entries: Vec<(String, Tensor)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures every parameter of a model.
    pub fn from_model(model: &dyn GnnModel) -> Self {
        Checkpoint {
            entries: model
                .params()
                .iter()
                .map(|p| (p.name().to_string(), p.value().clone()))
                .collect(),
        }
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds or replaces a tensor.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = tensor;
        } else {
            self.entries.push((name, tensor));
        }
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Restores parameters into a model by name. Every model parameter must
    /// be present with a matching shape.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if a parameter is missing or its shape
    /// differs.
    pub fn apply_to_model(&self, model: &mut dyn GnnModel) -> Result<(), String> {
        let by_name: HashMap<&str, &Tensor> = self
            .entries
            .iter()
            .map(|(n, t)| (n.as_str(), t))
            .collect();
        for p in model.params_mut() {
            let t = by_name
                .get(p.name())
                .ok_or_else(|| format!("checkpoint is missing parameter '{}'", p.name()))?;
            if t.shape() != p.value().shape() {
                return Err(format!(
                    "parameter '{}' shape mismatch: checkpoint {} vs model {}",
                    p.name(),
                    t.shape(),
                    p.value().shape()
                ));
            }
            p.set_value((*t).clone());
        }
        Ok(())
    }

    /// Serializes to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for (name, t) in &self.entries {
            let nb = name.as_bytes();
            w.write_all(&(nb.len() as u32).to_le_bytes())?;
            w.write_all(nb)?;
            let dims = t.shape().dims();
            w.write_all(&(dims.len() as u32).to_le_bytes())?;
            for &d in dims {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for &x in t.data() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes from a reader.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a SALIENT checkpoint"));
        }
        let mut u64b = [0u8; 8];
        r.read_exact(&mut u64b)?;
        let count = u64::from_le_bytes(u64b) as usize;
        if count > 1_000_000 {
            return Err(bad("implausible entry count"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut u32b = [0u8; 4];
            r.read_exact(&mut u32b)?;
            let name_len = u32::from_le_bytes(u32b) as usize;
            if name_len > 4096 {
                return Err(bad("implausible name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("name is not UTF-8"))?;
            r.read_exact(&mut u32b)?;
            let rank = u32::from_le_bytes(u32b) as usize;
            if rank > 8 {
                return Err(bad("implausible rank"));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                r.read_exact(&mut u64b)?;
                dims.push(u64::from_le_bytes(u64b) as usize);
            }
            let shape = Shape::new(dims);
            let len = shape.len();
            if len > 1 << 30 {
                return Err(bad("implausible tensor size"));
            }
            let mut data = Vec::with_capacity(len);
            let mut f32b = [0u8; 4];
            for _ in 0..len {
                r.read_exact(&mut f32b)?;
                data.push(f32::from_le_bytes(f32b));
            }
            entries.push((name, Tensor::from_vec(data, shape)));
        }
        Ok(Checkpoint { entries })
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_nn::{build_model, ModelKind};

    #[test]
    fn byte_round_trip() {
        let mut ckpt = Checkpoint::new();
        ckpt.insert("a", Tensor::from_vec(vec![1.0, -2.5, 3.25], [3]));
        ckpt.insert("b.weight", Tensor::zeros([2, 4]));
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(ckpt, back);
        assert_eq!(back.get("a").unwrap().data(), &[1.0, -2.5, 3.25]);
    }

    #[test]
    fn model_round_trip_restores_exact_weights() {
        let model = build_model(ModelKind::Sage, 8, 16, 4, 2, 7);
        let ckpt = Checkpoint::from_model(model.as_ref());
        // Fresh model with different seed, then restore.
        let mut other = build_model(ModelKind::Sage, 8, 16, 4, 2, 99);
        let before: Vec<f32> = other.params()[0].value().data().to_vec();
        ckpt.apply_to_model(other.as_mut()).unwrap();
        let after: Vec<f32> = other.params()[0].value().data().to_vec();
        assert_ne!(before, after);
        assert_eq!(after, model.params()[0].value().data());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let model = build_model(ModelKind::Sage, 8, 16, 4, 2, 7);
        let ckpt = Checkpoint::from_model(model.as_ref());
        let mut wrong = build_model(ModelKind::Sage, 8, 32, 4, 2, 7);
        let err = ckpt.apply_to_model(wrong.as_mut()).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let ckpt = Checkpoint::new();
        let mut model = build_model(ModelKind::Sage, 8, 16, 4, 2, 7);
        let err = ckpt.apply_to_model(model.as_mut()).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let err = Checkpoint::read_from(&mut &b"NOTSALIE000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("salient_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let model = build_model(ModelKind::Gin, 8, 16, 4, 2, 3);
        let ckpt = Checkpoint::from_model(model.as_ref());
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt, back);
        std::fs::remove_file(path).ok();
    }
}
