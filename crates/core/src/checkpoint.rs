//! Model checkpointing: save/restore parameter tensors by name.
//!
//! The format is a small self-describing binary layout (magic, version,
//! little-endian lengths and `f32` payloads) written with std I/O only, so
//! no serialization-format dependency is needed. Two robustness properties
//! hold:
//!
//! * **Crash-safe saves**: [`Checkpoint::save`] writes to `<path>.tmp`,
//!   fsyncs, and atomically renames over the destination, so a crash mid-
//!   save never leaves a torn file at `path` — the previous checkpoint (if
//!   any) survives intact.
//! * **Integrity-checked loads**: the stream ends with an FNV-1a checksum
//!   of everything before it; [`Checkpoint::load`] verifies it and returns
//!   a typed [`CheckpointError`] on truncation or corruption instead of
//!   silently restoring garbage weights.

use salient_fault as fault;
use salient_nn::GnnModel;
use salient_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SALIENT\x02";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a checkpoint could not be loaded (or saved).
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying read/write failed.
    Io(io::Error),
    /// The stream is structurally malformed (bad magic, implausible
    /// lengths, non-UTF-8 names, …).
    Corrupt(String),
    /// The trailing checksum did not match the stream contents — the file
    /// was truncated or bit-flipped after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the file's trailer.
        expected: u64,
        /// Checksum recomputed over the bytes actually read.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint is corrupt: {msg}"),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: trailer {expected:#018x}, computed {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Hashes every byte that passes through on the way to `inner`.
struct HashingWriter<W> {
    inner: W,
    hash: u64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv1a_update(self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Hashes every byte read from `inner`.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a_update(self.hash, &buf[..n]);
        Ok(n)
    }
}

/// A named set of tensors (model parameters, optimizer state, …).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    entries: Vec<(String, Tensor)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures every parameter of a model.
    pub fn from_model(model: &dyn GnnModel) -> Self {
        Checkpoint {
            entries: model
                .params()
                .iter()
                .map(|p| (p.name().to_string(), p.value().clone()))
                .collect(),
        }
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds or replaces a tensor.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = tensor;
        } else {
            self.entries.push((name, tensor));
        }
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Restores parameters into a model by name. Every model parameter must
    /// be present with a matching shape.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if a parameter is missing or its shape
    /// differs.
    pub fn apply_to_model(&self, model: &mut dyn GnnModel) -> Result<(), String> {
        let by_name: HashMap<&str, &Tensor> = self
            .entries
            .iter()
            .map(|(n, t)| (n.as_str(), t))
            .collect();
        for p in model.params_mut() {
            let t = by_name
                .get(p.name())
                .ok_or_else(|| format!("checkpoint is missing parameter '{}'", p.name()))?;
            if t.shape() != p.value().shape() {
                return Err(format!(
                    "parameter '{}' shape mismatch: checkpoint {} vs model {}",
                    p.name(),
                    t.shape(),
                    p.value().shape()
                ));
            }
            p.set_value((*t).clone());
        }
        Ok(())
    }

    /// Serializes to a writer, ending the stream with an FNV-1a checksum of
    /// everything before it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut hw = HashingWriter { inner: w, hash: FNV_OFFSET };
        hw.write_all(MAGIC)?;
        hw.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for (i, (name, t)) in self.entries.iter().enumerate() {
            // Injectable mid-save crash: a Panic here models the process
            // dying with the file half-written.
            fault::fire(fault::sites::CKPT_WRITE, i as u64);
            let nb = name.as_bytes();
            hw.write_all(&(nb.len() as u32).to_le_bytes())?;
            hw.write_all(nb)?;
            let dims = t.shape().dims();
            hw.write_all(&(dims.len() as u32).to_le_bytes())?;
            for &d in dims {
                hw.write_all(&(d as u64).to_le_bytes())?;
            }
            for &x in t.data() {
                hw.write_all(&x.to_le_bytes())?;
            }
        }
        let digest = hw.hash;
        hw.inner.write_all(&digest.to_le_bytes())
    }

    /// Deserializes from a reader, verifying the trailing checksum.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on I/O failure, malformed input,
    /// or checksum mismatch.
    pub fn read_from(r: &mut impl Read) -> Result<Self, CheckpointError> {
        let bad = |msg: &str| CheckpointError::Corrupt(msg.to_string());
        let mut hr = HashingReader { inner: r, hash: FNV_OFFSET };
        let mut magic = [0u8; 8];
        hr.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a SALIENT checkpoint"));
        }
        let mut u64b = [0u8; 8];
        hr.read_exact(&mut u64b)?;
        let count = u64::from_le_bytes(u64b) as usize;
        if count > 1_000_000 {
            return Err(bad("implausible entry count"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut u32b = [0u8; 4];
            hr.read_exact(&mut u32b)?;
            let name_len = u32::from_le_bytes(u32b) as usize;
            if name_len > 4096 {
                return Err(bad("implausible name length"));
            }
            let mut name = vec![0u8; name_len];
            hr.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("name is not UTF-8"))?;
            hr.read_exact(&mut u32b)?;
            let rank = u32::from_le_bytes(u32b) as usize;
            if rank > 8 {
                return Err(bad("implausible rank"));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                hr.read_exact(&mut u64b)?;
                dims.push(u64::from_le_bytes(u64b) as usize);
            }
            let shape = Shape::new(dims);
            let len = shape.len();
            if len > 1 << 30 {
                return Err(bad("implausible tensor size"));
            }
            let mut data = Vec::with_capacity(len);
            let mut f32b = [0u8; 4];
            for _ in 0..len {
                hr.read_exact(&mut f32b)?;
                data.push(f32::from_le_bytes(f32b));
            }
            entries.push((name, Tensor::from_vec(data, shape)));
        }
        // Everything parsed so far is covered by the trailer, which is read
        // from the raw stream (hashing it would change what it asserts).
        let actual = hr.hash;
        let mut trailer = [0u8; 8];
        hr.inner.read_exact(&mut trailer)?;
        let expected = u64::from_le_bytes(trailer);
        if expected != actual {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        Ok(Checkpoint { entries })
    }

    /// Saves to a file path crash-safely: the bytes land in `<path>.tmp`,
    /// are fsynced, and are renamed over `path` only once complete — a
    /// crash mid-save leaves any previous checkpoint at `path` untouched.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (the temporary file is cleaned up on failure).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = tmp_path(path);
        let result = (|| {
            let file = std::fs::File::create(&tmp)?;
            let mut w = io::BufWriter::new(file);
            self.write_to(&mut w)?;
            w.flush()?;
            // Durability before visibility: data reaches the disk before
            // the rename publishes it.
            w.get_ref().sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads from a file path, verifying structure and checksum.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on I/O failure, malformed input,
    /// or checksum mismatch.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

/// Sibling temporary path for crash-safe saves (`model.ckpt` →
/// `model.ckpt.tmp`), kept on the same filesystem so the rename is atomic.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_nn::{build_model, ModelKind};

    #[test]
    fn byte_round_trip() {
        let mut ckpt = Checkpoint::new();
        ckpt.insert("a", Tensor::from_vec(vec![1.0, -2.5, 3.25], [3]));
        ckpt.insert("b.weight", Tensor::zeros([2, 4]));
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(ckpt, back);
        assert_eq!(back.get("a").unwrap().data(), &[1.0, -2.5, 3.25]);
    }

    #[test]
    fn model_round_trip_restores_exact_weights() {
        let model = build_model(ModelKind::Sage, 8, 16, 4, 2, 7);
        let ckpt = Checkpoint::from_model(model.as_ref());
        // Fresh model with different seed, then restore.
        let mut other = build_model(ModelKind::Sage, 8, 16, 4, 2, 99);
        let before: Vec<f32> = other.params()[0].value().data().to_vec();
        ckpt.apply_to_model(other.as_mut()).unwrap();
        let after: Vec<f32> = other.params()[0].value().data().to_vec();
        assert_ne!(before, after);
        assert_eq!(after, model.params()[0].value().data());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let model = build_model(ModelKind::Sage, 8, 16, 4, 2, 7);
        let ckpt = Checkpoint::from_model(model.as_ref());
        let mut wrong = build_model(ModelKind::Sage, 8, 32, 4, 2, 7);
        let err = ckpt.apply_to_model(wrong.as_mut()).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let ckpt = Checkpoint::new();
        let mut model = build_model(ModelKind::Sage, 8, 16, 4, 2, 7);
        let err = ckpt.apply_to_model(model.as_mut()).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let err = Checkpoint::read_from(&mut &b"NOTSALIE000"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("salient_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let model = build_model(ModelKind::Gin, 8, 16, 4, 2, 3);
        let ckpt = Checkpoint::from_model(model.as_ref());
        ckpt.save(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file must not survive a clean save");
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut ckpt = Checkpoint::new();
        ckpt.insert("w", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]));
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        // Cut the file anywhere — the trailer (or the data feeding it) is
        // gone, so every truncation point must be detected.
        for cut in [buf.len() - 1, buf.len() - 8, buf.len() - 12, 10] {
            let err = Checkpoint::read_from(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Io(_) | CheckpointError::Corrupt(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flip_is_caught_by_checksum() {
        let mut ckpt = Checkpoint::new();
        ckpt.insert("w", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]));
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        // Flip one payload bit (past magic/count, before the trailer).
        let victim = buf.len() - 12;
        buf[victim] ^= 0x01;
        let err = Checkpoint::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::ChecksumMismatch { .. } | CheckpointError::Corrupt(_)
            ),
            "{err}"
        );
    }

    // Crash-during-save recovery (via injected faults) is exercised in the
    // serialized fault-matrix integration tests, where installing a global
    // fault plan cannot race with unrelated parallel tests.
}
