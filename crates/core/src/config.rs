//! Run configuration mirroring the paper's Table 5.

use salient_nn::ModelKind;

/// Which execution pipeline to use (the Figure-1 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Standard PyTorch-style workflow: serial per-batch sample → slice →
    /// transfer → train on the main thread (PyG baseline).
    Baseline,
    /// SALIENT: shared-memory batch-prep threads slicing into pinned
    /// buffers, with training overlapping preparation.
    Salient,
}

/// Hyperparameters of one training run (one row of Table 5).
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Architecture.
    pub model: ModelKindConfig,
    /// Number of GNN layers.
    pub num_layers: usize,
    /// Hidden dimensionality.
    pub hidden: usize,
    /// Training fanouts (PyG order).
    pub train_fanouts: Vec<usize>,
    /// Inference fanouts (Table 6 column).
    pub infer_fanouts: Vec<usize>,
    /// Per-GPU mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch-preparation worker threads (SALIENT executor).
    pub num_workers: usize,
    /// Pinned staging slots.
    pub slots: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution pipeline.
    pub executor: ExecutorKind,
    /// Extra preparation attempts granted to a batch whose prep panicked
    /// (0 = fail on the first panic).
    pub prep_retry_budget: u32,
    /// Replacement batch-prep workers the epoch supervisor may spawn after
    /// whole-worker deaths.
    pub prep_respawn_budget: usize,
    /// Per-step deadline (milliseconds) for DDP ring collectives; a rank
    /// that misses it surfaces a typed communication error instead of
    /// hanging the run.
    pub comm_timeout_ms: u64,
}

/// Serializable wrapper for [`ModelKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKindConfig {
    /// GraphSAGE.
    Sage,
    /// GAT.
    Gat,
    /// GIN.
    Gin,
    /// GraphSAGE-RI.
    SageRi,
}

impl From<ModelKindConfig> for ModelKind {
    fn from(k: ModelKindConfig) -> ModelKind {
        match k {
            ModelKindConfig::Sage => ModelKind::Sage,
            ModelKindConfig::Gat => ModelKind::Gat,
            ModelKindConfig::Gin => ModelKind::Gin,
            ModelKindConfig::SageRi => ModelKind::SageRi,
        }
    }
}

impl From<ModelKind> for ModelKindConfig {
    fn from(k: ModelKind) -> ModelKindConfig {
        match k {
            ModelKind::Sage => ModelKindConfig::Sage,
            ModelKind::Gat => ModelKindConfig::Gat,
            ModelKind::Gin => ModelKindConfig::Gin,
            ModelKind::SageRi => ModelKindConfig::SageRi,
        }
    }
}

impl Default for RunConfig {
    /// The paper's default SAGE configuration, scaled for sim-size datasets
    /// (hidden 64 instead of 256; fanouts and batching per Table 5 shrunk
    /// proportionally to the ~1/10-scale graphs).
    fn default() -> Self {
        RunConfig {
            model: ModelKindConfig::Sage,
            num_layers: 3,
            hidden: 64,
            train_fanouts: vec![15, 10, 5],
            infer_fanouts: vec![20, 20, 20],
            batch_size: 256,
            learning_rate: 3e-3,
            epochs: 5,
            num_workers: 2,
            slots: 4,
            seed: 0,
            executor: ExecutorKind::Salient,
            prep_retry_budget: 1,
            prep_respawn_budget: 1,
            comm_timeout_ms: 5_000,
        }
    }
}

impl RunConfig {
    /// Quick configuration for unit tests: 2 layers, small everything.
    pub fn test_tiny() -> Self {
        RunConfig {
            num_layers: 2,
            hidden: 16,
            train_fanouts: vec![5, 5],
            infer_fanouts: vec![5, 5],
            batch_size: 64,
            epochs: 2,
            ..Default::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if fanout lists do not match `num_layers` or sizes are zero.
    pub fn validate(&self) {
        assert_eq!(
            self.train_fanouts.len(),
            self.num_layers,
            "one training fanout per layer"
        );
        assert_eq!(
            self.infer_fanouts.len(),
            self.num_layers,
            "one inference fanout per layer"
        );
        assert!(self.batch_size > 0 && self.hidden > 0 && self.num_workers > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RunConfig::default().validate();
        RunConfig::test_tiny().validate();
    }

    #[test]
    #[should_panic(expected = "one training fanout per layer")]
    fn mismatched_fanouts_rejected() {
        let cfg = RunConfig {
            train_fanouts: vec![5],
            ..RunConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn model_kind_round_trip() {
        for k in ModelKind::all() {
            let cfg: ModelKindConfig = k.into();
            let back: ModelKind = cfg.into();
            assert_eq!(back, k);
        }
    }
}
