//! Real multi-rank data-parallel training (threads as ranks), mirroring the
//! paper's DDP usage: effective batch size scales with the number of GPUs,
//! gradients are averaged with a ring all-reduce after every backward pass,
//! and replicas stay bit-identical.

use crate::config::RunConfig;
use salient_ddp::{average_model_gradients, sync_model, CommError, Communicator};
use salient_fault as fault;
use salient_graph::{Dataset, NodeId};
use salient_nn::{build_model, GnnModel, Mode};
use salient_pipeline::{GraphSpec, PipeItem, StageGraph, StageOutcome, StageSpec};
use salient_sampler::{FastSampler, MessageFlowGraph};
use salient_tensor::optim::{zero_grads, Adam, Optimizer};
use salient_tensor::rng::SliceRandom;
use salient_tensor::rng::StdRng;
use salient_tensor::{Tape, Tensor};
use salient_trace::{names, Trace};
use std::sync::Arc;
use std::time::Duration;

/// One DDP optimizer step flowing through a rank's per-epoch stage graph.
/// Empty shards flow through as items too: every rank must reach the same
/// number of collectives, so alignment steps cannot be skipped.
struct DdpItem {
    bid: u64,
    shard: Vec<NodeId>,
    mfg: Option<MessageFlowGraph>,
    features: Option<Tensor>,
}

impl PipeItem for DdpItem {
    fn batch_id(&self) -> u64 {
        self.bid
    }
}

/// Result of a distributed training run.
pub struct DdpRunResult {
    /// Rank 0's trained model.
    pub model: Box<dyn GnnModel>,
    /// Mean loss per epoch (averaged across ranks).
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds of the whole run.
    pub wall_s: f64,
}

/// Why a distributed run could not finish.
#[derive(Debug)]
pub enum DdpError {
    /// A rank thread died (panicked outside the collectives).
    RankPanicked {
        /// The dead rank.
        rank: usize,
    },
    /// A ring collective failed — typically a peer died or stalled past the
    /// step deadline, so the failure carries the rank, step, and phase.
    Comm(CommError),
}

impl std::fmt::Display for DdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdpError::RankPanicked { rank } => write!(f, "ddp rank {rank} panicked"),
            DdpError::Comm(e) => write!(f, "ddp collective failed: {e}"),
        }
    }
}

impl std::error::Error for DdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DdpError::Comm(e) => Some(e),
            DdpError::RankPanicked { .. } => None,
        }
    }
}

impl From<CommError> for DdpError {
    fn from(e: CommError) -> Self {
        DdpError::Comm(e)
    }
}

/// Trains with `ranks` data-parallel replicas (threads). Each rank processes
/// `config.batch_size` nodes per iteration, so the effective batch is
/// `ranks × batch_size` — exactly the paper's multi-GPU scaling regime.
///
/// # Errors
///
/// Returns [`DdpError`] if a rank dies or a collective times out; the
/// surviving ranks observe the dead peer through their step deadline
/// ([`RunConfig::comm_timeout_ms`]) instead of hanging.
///
/// # Panics
///
/// Panics if `ranks == 0`.
pub fn train_ddp(
    dataset: &Arc<Dataset>,
    config: &RunConfig,
    ranks: usize,
) -> Result<DdpRunResult, DdpError> {
    train_ddp_traced(dataset, config, ranks, &Trace::disabled())
}

/// Like [`train_ddp`], recording each rank's per-epoch spans and the ring's
/// `ddp.step` communication spans (plus bytes/steps counters) into `trace`.
///
/// # Errors
///
/// See [`train_ddp`].
///
/// # Panics
///
/// Panics if `ranks == 0`.
pub fn train_ddp_traced(
    dataset: &Arc<Dataset>,
    config: &RunConfig,
    ranks: usize,
    trace: &Trace,
) -> Result<DdpRunResult, DdpError> {
    assert!(ranks > 0, "need at least one rank");
    config.validate();
    // Wall time comes from the trace clock (the monotonic clock when the
    // handle is disabled), so DDP runs are timeable under a VirtualClock.
    let clock = trace.clock();
    let start_ns = clock.now_ns();
    let timeout = Duration::from_millis(config.comm_timeout_ms);
    let comms = Communicator::ring_traced(ranks, timeout, trace);
    let mut handles = Vec::with_capacity(ranks);
    for (rank, comm) in comms.into_iter().enumerate() {
        let dataset = Arc::clone(dataset);
        let config = config.clone();
        let trace = trace.clone();
        let handle = std::thread::Builder::new()
            .name(format!("salient-ddp-rank-{rank}"))
            .spawn(move || rank_loop(rank, ranks, comm, dataset, config, trace))
            .expect("failed to spawn ddp rank");
        handles.push(handle);
    }
    let mut results: Vec<(Box<dyn GnnModel>, Vec<f64>)> = Vec::with_capacity(ranks);
    let mut first_err: Option<DdpError> = None;
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join() {
            Err(_) => {
                // A dead rank outranks the secondary timeouts its peers
                // report when its ring link goes silent.
                first_err = Some(DdpError::RankPanicked { rank });
            }
            Ok(Err(comm)) => {
                if first_err.is_none() {
                    first_err = Some(DdpError::Comm(comm));
                }
            }
            Ok(Ok(r)) => results.push(r),
        }
    }
    if let Some(err) = first_err {
        return Err(err);
    }
    let (model, epoch_losses) = results.remove(0);
    Ok(DdpRunResult {
        model,
        epoch_losses,
        wall_s: clock.now_ns().saturating_sub(start_ns) as f64 / 1e9,
    })
}

fn rank_loop(
    rank: usize,
    world: usize,
    comm: Communicator,
    dataset: Arc<Dataset>,
    config: RunConfig,
    trace: Trace,
) -> Result<(Box<dyn GnnModel>, Vec<f64>), CommError> {
    // Whole-rank fault site: a Panic here kills the rank thread, and its
    // peers' step deadlines convert the silence into typed errors.
    fault::fire(fault::sites::DDP_RANK, rank as u64);
    // Same seed everywhere: replicas start identical. The broadcast is a
    // belt-and-suspenders guarantee (and exercises the collective).
    let mut model = build_model(
        config.model.into(),
        dataset.features.dim(),
        config.hidden,
        dataset.num_classes,
        config.num_layers,
        config.seed,
    );
    sync_model(&comm, model.as_mut())?;
    let mut opt = Adam::new(config.learning_rate);
    let mut sampler = FastSampler::new(config.seed ^ (rank as u64) << 40);
    let mut dropout_rng = StdRng::seed_from_u64(config.seed ^ (rank as u64) << 24);
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        // One span per (rank, epoch): rank-level occupancy in the reports.
        let _rank_epoch = trace.span_batch(names::spans::RANK_EPOCH, epoch as u64);
        // All ranks shuffle identically, then shard by iteration.
        let mut order = dataset.splits.train.clone();
        let mut shuffle_rng = StdRng::seed_from_u64(config.seed ^ 0xE90C ^ epoch as u64);
        order.shuffle(&mut shuffle_rng);

        let effective = config.batch_size * world;
        let mut loss_sum = 0.0;
        let mut steps = 0usize;
        let mut comm_err: Option<CommError> = None;
        // The rank's per-epoch prep→train stage graph, always on the
        // *inline* schedule: ring collectives require every rank to reach
        // each all-reduce in lockstep, so a rank may never run its own
        // compute ahead of its neighbours behind a stage queue. The graph
        // still buys the shared span layout (`ddp.prep` / `ddp.train`) and
        // the supervised failure path.
        {
            let mut chunk_iter = order.chunks(effective);
            let mut next_bid = 0u64;
            let ds_prep = Arc::clone(&dataset);
            let ds_train = Arc::clone(&dataset);
            let fanouts = config.train_fanouts.clone();
            let sampler = &mut sampler;
            let model = &mut model;
            let opt = &mut opt;
            let dropout_rng = &mut dropout_rng;
            let loss_sum = &mut loss_sum;
            let steps = &mut steps;
            let comm = &comm;
            let comm_err = &mut comm_err;
            StageGraph::new(GraphSpec::new("ddp"), move || {
                // Rank r takes its slice of the effective batch; trailing
                // partial chunks are shared as evenly as possible.
                let chunk = chunk_iter.next()?;
                let shard: Vec<NodeId> = chunk.iter().skip(rank).step_by(world).copied().collect();
                let bid = next_bid;
                next_bid += 1;
                Some(DdpItem {
                    bid,
                    shard,
                    mfg: None,
                    features: None,
                })
            })
            .stage(
                StageSpec::new("prep", names::spans::DDP_PREP),
                move |mut item: DdpItem| {
                    if !item.shard.is_empty() {
                        let mfg = sampler.sample(&ds_prep.graph, &item.shard, &fanouts);
                        item.features = Some(ds_prep.features.gather_f32(&mfg.node_ids));
                        item.mfg = Some(mfg);
                    }
                    StageOutcome::Emit(item)
                },
            )
            .stage(
                StageSpec::new("train", names::spans::DDP_TRAIN),
                move |mut item: DdpItem| {
                    let step_result = (|| -> Result<(), CommError> {
                        if let (Some(mfg), Some(x_data)) = (item.mfg.take(), item.features.take())
                        {
                            let tape = Tape::new();
                            let x = tape.constant(x_data);
                            let out = model.forward(&tape, x, &mfg, Mode::Train, dropout_rng);
                            let targets: Vec<usize> = mfg.node_ids[..mfg.batch_size()]
                                .iter()
                                .map(|&v| ds_train.labels[v as usize] as usize)
                                .collect();
                            let loss = out.nll_loss(&targets);
                            *loss_sum += loss.value().item() as f64;
                            let grads = tape.backward(&loss);
                            zero_grads(model.params_mut().into_iter());
                            grads.apply_to(model.params_mut());
                            average_model_gradients(comm, model.as_mut())?;
                            opt.step(model.params_mut().into_iter());
                        } else {
                            // Keep collectives aligned: participate with a
                            // zero grad.
                            zero_grads(model.params_mut().into_iter());
                            average_model_gradients(comm, model.as_mut())?;
                            opt.step(model.params_mut().into_iter());
                        }
                        *steps += 1;
                        Ok(())
                    })();
                    match step_result {
                        Ok(()) => StageOutcome::Emit(item),
                        Err(e) => {
                            // A collective failure is terminal for the rank:
                            // poison the graph and surface the typed error.
                            *comm_err = Some(e);
                            StageOutcome::Fatal
                        }
                    }
                },
            )
            .run_inline(&trace);
        }
        if let Some(e) = comm_err {
            return Err(e);
        }
        // Average the epoch loss across ranks for reporting.
        let mut l = [(loss_sum / steps.max(1) as f64) as f32];
        comm.all_reduce_mean(&mut l)?;
        epoch_losses.push(l[0] as f64);
    }
    Ok((model, epoch_losses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;
    use salient_nn::metrics;

    fn setup() -> (Arc<Dataset>, RunConfig) {
        let ds = Arc::new(DatasetConfig::tiny(77).build());
        let cfg = RunConfig {
            epochs: 3,
            batch_size: 32,
            ..RunConfig::test_tiny()
        };
        (ds, cfg)
    }

    #[test]
    fn ddp_reduces_loss_with_two_ranks() {
        let (ds, cfg) = setup();
        let result = train_ddp(&ds, &cfg, 2).unwrap();
        assert_eq!(result.epoch_losses.len(), 3);
        assert!(
            result.epoch_losses.last().unwrap() < result.epoch_losses.first().unwrap(),
            "losses {:?}",
            result.epoch_losses
        );
    }

    #[test]
    fn ddp_model_predicts_above_chance() {
        let (ds, mut cfg) = setup();
        cfg.epochs = 8;
        let mut result = train_ddp(&ds, &cfg, 2).unwrap();
        // Evaluate rank 0's model with a quick sampled pass.
        let mut sampler = FastSampler::new(5);
        let nodes = &ds.splits.val;
        let mut preds = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for chunk in nodes.chunks(64) {
            let mfg = sampler.sample(&ds.graph, chunk, &cfg.infer_fanouts);
            let tape = Tape::new();
            let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
            let out = result.model.forward(&tape, x, &mfg, Mode::Eval, &mut rng);
            preds.extend(metrics::argmax_rows(&out.value()));
        }
        let targets: Vec<u32> = nodes.iter().map(|&v| ds.labels[v as usize]).collect();
        let acc = metrics::accuracy(&preds, &targets);
        assert!(acc > 2.0 / ds.num_classes as f64, "acc {acc:.3}");
    }

    #[test]
    fn traced_ddp_records_rank_epochs_and_comm() {
        let (ds, cfg) = setup();
        let trace = Trace::new(salient_trace::Clock::virtual_with_tick(1_000));
        let result = train_ddp_traced(&ds, &cfg, 2, &trace).unwrap();
        assert!(result.wall_s > 0.0);
        let snap = trace.snapshot();
        // 2 ranks × 3 epochs.
        assert_eq!(snap.spans(names::spans::RANK_EPOCH).count(), 6);
        assert!(snap.spans(names::spans::COMM_STEP).count() > 0);
        assert!(snap.metrics.counter(names::counters::DDP_BYTES) > 0);
        assert_eq!(
            snap.metrics.counter(names::counters::DDP_STEPS),
            snap.spans(names::spans::COMM_STEP).count() as u64
        );
        assert!(snap.threads.iter().any(|n| n == "salient-ddp-rank-0"));
        assert!(snap.threads.iter().any(|n| n == "salient-ddp-rank-1"));
    }

    #[test]
    fn replicas_stay_synchronized() {
        // Train 3 ranks for 2 epochs and verify rank models are identical by
        // rerunning with the deterministic seeds and comparing rank outputs.
        let (ds, cfg) = setup();
        let comms = Communicator::ring(3);
        let finals: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    let ds = Arc::clone(&ds);
                    let cfg = cfg.clone();
                    s.spawn(move || {
                        let (model, _) =
                            rank_loop(rank, 3, comm, ds, cfg, Trace::disabled()).unwrap();
                        model
                            .params()
                            .iter()
                            .flat_map(|p| p.value().data().to_vec())
                            .collect::<Vec<f32>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(finals[0], finals[1], "ranks 0 and 1 diverged");
        assert_eq!(finals[0], finals[2], "ranks 0 and 2 diverged");
    }
}
