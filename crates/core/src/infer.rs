//! Inference helpers (§5 of the paper).
//!
//! SALIENT's key observation is that *sampled* inference matches
//! full-neighborhood accuracy at modest fanouts, so the mini-batch training
//! path can be reused verbatim. For the "fanout: all" reference this module
//! builds a full-graph MFG — every hop is the complete (bipartite-ized)
//! graph — which makes the layer-wise full-neighborhood computation run
//! through the exact same model code.
//!
//! [`BatchInferencer`] is the staged inference path shared by offline
//! evaluation and the online serving layer: features are sliced into a
//! pinned staging slot (the same bounded [`PinnedPool`] the training
//! pipeline uses), widened once at the simulated transfer, and fed through
//! the model. Both phases run under a panic-isolation boundary, and the
//! slot is held *outside* that boundary so an unwinding request returns it
//! to the pool via the slot's own RAII drop — a poisoned request can never
//! leak staging capacity.

use salient_batchprep::{PinnedPool, PinnedSlot};
use salient_graph::{CsrGraph, Dataset, NodeId};
use salient_nn::{metrics, GnnModel, Mode};
use salient_sampler::{MessageFlowGraph, MfgLayer};
use salient_tensor::rng::StdRng;
use salient_tensor::{Tape, Tensor};
use salient_trace::{names, Counter, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Builds an MFG whose every hop is the entire graph: `n_src = n_dst = |V|`
/// and the edge list enumerates every edge. Feeding it to a model performs
/// classic layer-wise full-neighborhood inference over all nodes at once.
pub fn full_graph_mfg(graph: &CsrGraph, num_layers: usize) -> MessageFlowGraph {
    let n = graph.num_nodes();
    let mut edge_src = Vec::with_capacity(graph.num_edges());
    let mut edge_dst = Vec::with_capacity(graph.num_edges());
    for v in 0..n as NodeId {
        for &u in graph.neighbors(v) {
            edge_src.push(u);
            edge_dst.push(v);
        }
    }
    let layer = MfgLayer {
        edge_src,
        edge_dst,
        n_src: n,
        n_dst: n,
    };
    MessageFlowGraph {
        node_ids: (0..n as NodeId).collect(),
        layers: vec![layer; num_layers],
    }
}

/// A panic caught at the inference isolation boundary, reduced to its
/// message (the payload itself is not `Send + Clone`-friendly).
#[derive(Clone, Debug)]
pub struct InferPanic {
    /// The panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for InferPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inference panicked: {}", self.message)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Features for one sampled micro-batch, staged in a pinned slot at the
/// dataset's storage dtype. Dropping it (consumed by
/// [`BatchInferencer::forward`], or simply discarded when a deadline
/// expires between stages) returns the slot to the pool.
#[derive(Debug)]
pub struct StagedBatch {
    slot: PinnedSlot,
    num_nodes: usize,
}

impl StagedBatch {
    /// Packed payload bytes staged for this batch (what a CPU→GPU DMA would
    /// move).
    pub fn payload_bytes(&self) -> usize {
        self.slot.payload_bytes()
    }
}

/// Sampled mini-batch inference through a bounded pinned-slot pool, with a
/// per-call panic-isolation boundary.
///
/// The two phases — [`stage`](BatchInferencer::stage) (slice features into
/// a slot) and [`forward`](BatchInferencer::forward) (widen + model
/// compute) — are split so callers with latency budgets (the serving layer)
/// can check deadlines between them and abandon dead work early.
///
/// Staging at the store's dtype followed by one widen is numerically
/// identical to `FeatureStore::gather_f32`: both read the same packed
/// values and perform the same per-element widening.
pub struct BatchInferencer {
    dataset: Arc<Dataset>,
    pool: PinnedPool,
    transfer_bytes: Counter,
}

impl BatchInferencer {
    /// A pool of `slots` staging buffers pre-sized for `nodes_hint` sampled
    /// nodes, without instrumentation.
    pub fn new(dataset: Arc<Dataset>, slots: usize, nodes_hint: usize) -> Self {
        Self::with_trace(dataset, slots, nodes_hint, &Trace::disabled())
    }

    /// Like [`BatchInferencer::new`], counting staged bytes against the
    /// trace's `transfer.bytes`.
    pub fn with_trace(
        dataset: Arc<Dataset>,
        slots: usize,
        nodes_hint: usize,
        trace: &Trace,
    ) -> Self {
        let dim = dataset.features.dim();
        let dtype = dataset.features.dtype();
        let pool = PinnedPool::new(slots, nodes_hint, dim, 1, dtype);
        let transfer_bytes = trace.counter(names::counters::TRANSFER_BYTES);
        BatchInferencer { dataset, pool, transfer_bytes }
    }

    /// The staging pool (bounds concurrent in-flight batches; diagnostics
    /// can assert `available() == capacity()` when idle to prove no request
    /// leaked a slot).
    pub fn pool(&self) -> &PinnedPool {
        &self.pool
    }

    /// The dataset this inferencer slices from.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Slices `mfg`'s features into a pinned slot. Blocks until a slot is
    /// free (the pool is the backpressure bound).
    ///
    /// # Errors
    ///
    /// A panic during slicing is caught here; the slot — held outside the
    /// unwind boundary — returns to the pool before this function returns.
    pub fn stage(&self, mfg: &MessageFlowGraph) -> Result<StagedBatch, InferPanic> {
        let dim = self.dataset.features.dim();
        let mut slot = self.pool.acquire();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            slot.prepare(mfg.num_nodes(), dim, 0);
            self.dataset
                .features
                .slice_into(&mfg.node_ids, slot.features_mut());
        }));
        match outcome {
            Ok(()) => Ok(StagedBatch { slot, num_nodes: mfg.num_nodes() }),
            Err(payload) => Err(InferPanic { message: panic_message(payload) }),
        }
    }

    /// Widens the staged features (the simulated host→device transfer,
    /// counted in `transfer.bytes`) and runs the model forward in eval
    /// mode. Returns argmax predictions for the micro-batch's seed nodes.
    ///
    /// # Errors
    ///
    /// A panicking model is caught at this boundary; the staged slot — held
    /// outside it — returns to the pool either way.
    pub fn forward(
        &self,
        staged: StagedBatch,
        model: &mut dyn GnnModel,
        mfg: &MessageFlowGraph,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, InferPanic> {
        let StagedBatch { slot, num_nodes } = staged;
        let dim = self.dataset.features.dim();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut wide = vec![0.0f32; num_nodes * dim];
            slot.features().widen_into(&mut wide);
            self.transfer_bytes.add(slot.payload_bytes() as u64);
            let tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(wide, [num_nodes, dim]));
            let out = model.forward(&tape, x, mfg, Mode::Eval, rng);
            metrics::argmax_rows(&out.value())
        }));
        // `slot` drops here on success *and* on unwind: RAII release.
        match outcome {
            Ok(preds) => Ok(preds),
            Err(payload) => Err(InferPanic { message: panic_message(payload) }),
        }
    }

    /// Stage + forward in one call (the offline evaluation path).
    ///
    /// # Errors
    ///
    /// Propagates a caught panic from either phase.
    pub fn infer_mfg(
        &self,
        model: &mut dyn GnnModel,
        mfg: &MessageFlowGraph,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, InferPanic> {
        let staged = self.stage(mfg)?;
        self.forward(staged, model, mfg, rng)
    }
}

/// Host-memory bytes needed by layer-wise full inference: one activation
/// matrix per layer boundary (the paper's reason sampled inference wins on
/// memory; dense architectures must keep *all* layer results).
pub fn layerwise_memory_bytes(num_nodes: usize, hidden: usize, num_layers: usize, dense: bool) -> usize {
    let per_layer = num_nodes * hidden * 4;
    if dense {
        per_layer * num_layers
    } else {
        per_layer * 2 // ping-pong buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;
    use salient_nn::{build_model, ModelKind};
    use salient_sampler::FastSampler;

    /// A model that always panics — stands in for any poisoned request.
    struct PoisonModel;

    impl GnnModel for PoisonModel {
        fn forward(
            &mut self,
            _tape: &Tape,
            _x: salient_tensor::Var,
            _mfg: &MessageFlowGraph,
            _mode: Mode,
            _rng: &mut StdRng,
        ) -> salient_tensor::Var {
            panic!("poisoned request");
        }
        fn params(&self) -> Vec<&salient_tensor::Param> {
            Vec::new()
        }
        fn params_mut(&mut self) -> Vec<&mut salient_tensor::Param> {
            Vec::new()
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Sage
        }
        fn num_layers(&self) -> usize {
            1
        }
    }

    #[test]
    fn staged_inference_matches_direct_gather() {
        let ds = Arc::new(DatasetConfig::tiny(11).build());
        let mut model = build_model(ModelKind::Sage, ds.features.dim(), 8, ds.num_classes, 2, 3);
        let mut sampler = FastSampler::new(9);
        let batch: Vec<NodeId> = ds.splits.val[..16].to_vec();
        let mfg = sampler.sample(&ds.graph, &batch, &[4, 4]);
        let inferencer = BatchInferencer::new(Arc::clone(&ds), 1, 32);
        let mut rng = StdRng::seed_from_u64(0);
        let staged = inferencer.infer_mfg(model.as_mut(), &mfg, &mut rng).unwrap();
        // Reference: the pre-existing direct-gather path.
        let tape = Tape::new();
        let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
        let mut rng2 = StdRng::seed_from_u64(0);
        let out = model.forward(&tape, x, &mfg, Mode::Eval, &mut rng2);
        assert_eq!(staged, metrics::argmax_rows(&out.value()));
        assert_eq!(staged.len(), mfg.batch_size());
    }

    #[test]
    fn panicking_forward_returns_slot_to_pool() {
        let ds = Arc::new(DatasetConfig::tiny(12).build());
        let mut sampler = FastSampler::new(1);
        let batch: Vec<NodeId> = ds.splits.val[..8].to_vec();
        let mfg = sampler.sample(&ds.graph, &batch, &[3, 3]);
        // One slot: any leak would deadlock the second call instead of
        // completing it.
        let inferencer = BatchInferencer::new(Arc::clone(&ds), 1, 16);
        let mut rng = StdRng::seed_from_u64(0);
        let mut poison = PoisonModel;
        for _ in 0..3 {
            let err = inferencer
                .infer_mfg(&mut poison, &mfg, &mut rng)
                .unwrap_err();
            assert!(err.message.contains("poisoned request"), "{err}");
            assert_eq!(
                inferencer.pool().available(),
                inferencer.pool().capacity(),
                "slot must return on unwind"
            );
        }
        // The pool still works after the unwinds.
        let mut model = build_model(ModelKind::Sage, ds.features.dim(), 8, ds.num_classes, 2, 0);
        assert!(inferencer.infer_mfg(model.as_mut(), &mfg, &mut rng).is_ok());
    }

    #[test]
    fn panicking_stage_returns_slot_to_pool() {
        let ds = Arc::new(DatasetConfig::tiny(13).build());
        let inferencer = BatchInferencer::new(Arc::clone(&ds), 1, 16);
        // An MFG referencing a node outside the dataset: slicing panics.
        let bogus = MessageFlowGraph {
            node_ids: vec![ds.graph.num_nodes() as NodeId + 10],
            layers: vec![MfgLayer { edge_src: vec![], edge_dst: vec![], n_src: 1, n_dst: 1 }],
        };
        assert!(inferencer.stage(&bogus).is_err());
        assert_eq!(inferencer.pool().available(), inferencer.pool().capacity());
        // Dropping a staged batch without forwarding it also frees the slot.
        let mut sampler = FastSampler::new(2);
        let batch: Vec<NodeId> = ds.splits.val[..4].to_vec();
        let mfg = sampler.sample(&ds.graph, &batch, &[3]);
        let staged = inferencer.stage(&mfg).unwrap();
        assert!(staged.payload_bytes() > 0);
        assert_eq!(inferencer.pool().available(), 0);
        drop(staged);
        assert_eq!(inferencer.pool().available(), 1);
    }

    #[test]
    fn full_graph_mfg_is_valid_and_complete() {
        let ds = DatasetConfig::tiny(9).build();
        let mfg = full_graph_mfg(&ds.graph, 3);
        mfg.validate().unwrap();
        assert_eq!(mfg.num_nodes(), ds.graph.num_nodes());
        assert_eq!(mfg.layers.len(), 3);
        assert_eq!(mfg.layers[0].num_edges(), ds.graph.num_edges());
        assert_eq!(mfg.batch_size(), ds.graph.num_nodes());
    }

    #[test]
    fn memory_model_orders() {
        let sampled = layerwise_memory_bytes(1000, 64, 3, false);
        let dense = layerwise_memory_bytes(1000, 64, 3, true);
        assert!(dense > sampled, "dense connections store all layer results");
    }
}
