//! Inference helpers (§5 of the paper).
//!
//! SALIENT's key observation is that *sampled* inference matches
//! full-neighborhood accuracy at modest fanouts, so the mini-batch training
//! path can be reused verbatim. For the "fanout: all" reference this module
//! builds a full-graph MFG — every hop is the complete (bipartite-ized)
//! graph — which makes the layer-wise full-neighborhood computation run
//! through the exact same model code.

use salient_graph::{CsrGraph, NodeId};
use salient_sampler::{MessageFlowGraph, MfgLayer};

/// Builds an MFG whose every hop is the entire graph: `n_src = n_dst = |V|`
/// and the edge list enumerates every edge. Feeding it to a model performs
/// classic layer-wise full-neighborhood inference over all nodes at once.
pub fn full_graph_mfg(graph: &CsrGraph, num_layers: usize) -> MessageFlowGraph {
    let n = graph.num_nodes();
    let mut edge_src = Vec::with_capacity(graph.num_edges());
    let mut edge_dst = Vec::with_capacity(graph.num_edges());
    for v in 0..n as NodeId {
        for &u in graph.neighbors(v) {
            edge_src.push(u);
            edge_dst.push(v);
        }
    }
    let layer = MfgLayer {
        edge_src,
        edge_dst,
        n_src: n,
        n_dst: n,
    };
    MessageFlowGraph {
        node_ids: (0..n as NodeId).collect(),
        layers: vec![layer; num_layers],
    }
}

/// Host-memory bytes needed by layer-wise full inference: one activation
/// matrix per layer boundary (the paper's reason sampled inference wins on
/// memory; dense architectures must keep *all* layer results).
pub fn layerwise_memory_bytes(num_nodes: usize, hidden: usize, num_layers: usize, dense: bool) -> usize {
    let per_layer = num_nodes * hidden * 4;
    if dense {
        per_layer * num_layers
    } else {
        per_layer * 2 // ping-pong buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    #[test]
    fn full_graph_mfg_is_valid_and_complete() {
        let ds = DatasetConfig::tiny(9).build();
        let mfg = full_graph_mfg(&ds.graph, 3);
        mfg.validate().unwrap();
        assert_eq!(mfg.num_nodes(), ds.graph.num_nodes());
        assert_eq!(mfg.layers.len(), 3);
        assert_eq!(mfg.layers[0].num_edges(), ds.graph.num_edges());
        assert_eq!(mfg.batch_size(), ds.graph.num_nodes());
    }

    #[test]
    fn memory_model_orders() {
        let sampled = layerwise_memory_bytes(1000, 64, 3, false);
        let dense = layerwise_memory_bytes(1000, 64, 3, true);
        assert!(dense > sampled, "dense connections store all layer results");
    }
}
