//! # salient-core
//!
//! The SALIENT public API: end-to-end GNN training and inference with fast
//! sampling and pipelined batch preparation, on real (synthetic) datasets.
//!
//! Two executors implement the paper's Figure-1 comparison:
//!
//! * [`ExecutorKind::Baseline`] — the standard serial PyTorch-style loop;
//! * [`ExecutorKind::Salient`] — shared-memory batch-prep workers slicing
//!   into pinned buffers, overlapping preparation with training.
//!
//! Multi-rank data-parallel training ([`train_ddp`]) and sampled /
//! full-neighborhood inference complete the system.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use salient_core::{RunConfig, Trainer};
//! use salient_graph::DatasetConfig;
//!
//! let ds = Arc::new(DatasetConfig::tiny(1).build());
//! let mut trainer = Trainer::new(Arc::clone(&ds), RunConfig::test_tiny());
//! trainer.fit();
//! let (acc, _) = trainer.evaluate_sampled(&ds.splits.val.clone(), &[5, 5]);
//! assert!(acc > 0.0);
//! ```

#![warn(missing_docs)]

mod config;
mod ddp_train;
mod timing;
mod train;

pub mod cache;
pub mod checkpoint;
pub mod infer;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use infer::{BatchInferencer, InferPanic, StagedBatch};
pub use config::{ExecutorKind, ModelKindConfig, RunConfig};
pub use ddp_train::{train_ddp, train_ddp_traced, DdpError, DdpRunResult};
pub use timing::{Stage, StageTimings};
pub use train::{EpochStats, Trainer};
