//! Per-stage wall-clock accounting (the real-execution analogue of
//! Table 1's blocking-time columns).
//!
//! Since the observability pass, `StageTimings` is a *view*: the executors
//! in [`crate::train`] stamp stage spans into a [`salient_trace::Trace`] and
//! derive these seconds from the recorded intervals
//! ([`StageTimings::from_report`]), so the legacy struct and the trace
//! reports can never disagree — they are the same clock reads.

use salient_trace::PipelineReport;
use std::time::Duration;

/// Blocking time per pipeline stage over one epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Batch preparation (sampling + slicing) blocking seconds.
    pub prep_s: f64,
    /// Host→device staging ("transfer", including the f16→f32 upcast).
    pub transfer_s: f64,
    /// Model compute (forward + backward + step).
    pub train_s: f64,
    /// End-to-end epoch seconds.
    pub total_s: f64,
}

impl StageTimings {
    /// Adds a duration to a stage.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        let s = d.as_secs_f64();
        match stage {
            Stage::Prep => self.prep_s += s,
            Stage::Transfer => self.transfer_s += s,
            Stage::Train => self.train_s += s,
        }
    }

    /// The view over a trace analysis: stage seconds from the trainer's
    /// recorded span intervals.
    pub fn from_report(r: &PipelineReport) -> StageTimings {
        StageTimings {
            prep_s: r.prep_ns as f64 / 1e9,
            transfer_s: r.transfer_ns as f64 / 1e9,
            train_s: r.compute_ns as f64 / 1e9,
            total_s: r.window_ns as f64 / 1e9,
        }
    }

    /// Seconds attributed to a stage.
    pub fn stage_s(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Prep => self.prep_s,
            Stage::Transfer => self.transfer_s,
            Stage::Train => self.train_s,
        }
    }

    /// Percent of the total attributed to a stage.
    pub fn pct(&self, stage: Stage) -> f64 {
        self.pct_of(self.stage_s(stage))
    }

    /// Percent of the total attributed to the unattributed remainder.
    pub fn other_pct(&self) -> f64 {
        self.pct_of(self.other_s())
    }

    fn pct_of(&self, stage_s: f64) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            100.0 * stage_s / self.total_s
        }
    }

    /// Unattributed time (scheduling gaps, pipeline fill).
    pub fn other_s(&self) -> f64 {
        (self.total_s - self.prep_s - self.transfer_s - self.train_s).max(0.0)
    }
}

/// Pipeline stage label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Sampling + slicing.
    Prep,
    /// Host→device staging.
    Transfer,
    /// Forward/backward/update.
    Train,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut t = StageTimings::default();
        t.add(Stage::Prep, Duration::from_millis(300));
        t.add(Stage::Transfer, Duration::from_millis(100));
        t.add(Stage::Train, Duration::from_millis(500));
        t.total_s = 1.0;
        assert!((t.pct(Stage::Train) - 50.0).abs() < 1e-9);
        assert!((t.other_s() - 0.1).abs() < 1e-9);
        assert!((t.other_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn view_over_a_report() {
        let r = PipelineReport {
            window_ns: 2_000_000_000,
            prep_ns: 500_000_000,
            transfer_ns: 250_000_000,
            compute_ns: 1_000_000_000,
            ..PipelineReport::default()
        };
        let t = StageTimings::from_report(&r);
        assert!((t.total_s - 2.0).abs() < 1e-12);
        assert!((t.pct(Stage::Prep) - 25.0).abs() < 1e-9);
        assert!((t.other_s() - 0.25).abs() < 1e-12);
    }
}
