//! Per-stage wall-clock accounting (the real-execution analogue of
//! Table 1's blocking-time columns).

use std::time::Duration;

/// Blocking time per pipeline stage over one epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Batch preparation (sampling + slicing) blocking seconds.
    pub prep_s: f64,
    /// Host→device staging ("transfer", including the f16→f32 upcast).
    pub transfer_s: f64,
    /// Model compute (forward + backward + step).
    pub train_s: f64,
    /// End-to-end epoch seconds.
    pub total_s: f64,
}

impl StageTimings {
    /// Adds a duration to a stage.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        let s = d.as_secs_f64();
        match stage {
            Stage::Prep => self.prep_s += s,
            Stage::Transfer => self.transfer_s += s,
            Stage::Train => self.train_s += s,
        }
    }

    /// Percent of the total attributed to a stage value.
    pub fn pct(&self, stage_s: f64) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            100.0 * stage_s / self.total_s
        }
    }

    /// Unattributed time (scheduling gaps, pipeline fill).
    pub fn other_s(&self) -> f64 {
        (self.total_s - self.prep_s - self.transfer_s - self.train_s).max(0.0)
    }
}

/// Pipeline stage label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Sampling + slicing.
    Prep,
    /// Host→device staging.
    Transfer,
    /// Forward/backward/update.
    Train,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut t = StageTimings::default();
        t.add(Stage::Prep, Duration::from_millis(300));
        t.add(Stage::Transfer, Duration::from_millis(100));
        t.add(Stage::Train, Duration::from_millis(500));
        t.total_s = 1.0;
        assert!((t.pct(t.train_s) - 50.0).abs() < 1e-9);
        assert!((t.other_s() - 0.1).abs() < 1e-9);
    }
}
