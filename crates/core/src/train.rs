//! The training loop: baseline (serial PyG-style) and SALIENT (pipelined
//! shared-memory batch preparation) executors over real data.
//!
//! Both executors are expressed as [`StageGraph`] descriptions. The
//! baseline runs the graph inline (it *is* the serial reference schedule);
//! the SALIENT executor lets [`StageGraph::run`] pick the threaded
//! schedule when the thread budget allows, so the transfer/widen of batch
//! `k+1` overlaps the compute of batch `k` in addition to the worker-side
//! preparation overlap.

use crate::config::{ExecutorKind, RunConfig};
use crate::timing::StageTimings;
use salient_batchprep::{run_epoch, BatchResult, PrepConfig, PrepMode, SamplerKind};
use salient_fault as fault;
use salient_graph::{Dataset, FeatureSlab, NodeId};
use salient_nn::{build_model, metrics, GnnModel, Mode};
use salient_pipeline::{shape, GraphSpec, PipeItem, StageGraph, StageOutcome, StageSpec};
use salient_sampler::{FastSampler, MessageFlowGraph, PygSampler};
use salient_tensor::optim::{Adam, Optimizer};
use salient_tensor::rng::SliceRandom;
use salient_tensor::rng::StdRng;
use salient_tensor::{Tape, Tensor};
use salient_trace::{analyze, names, Clock, Trace, NO_BATCH};
use std::sync::Arc;

/// The item flowing through both training pipelines; fields are filled in
/// (and consumed) stage by stage.
struct TrainItem {
    bid: u64,
    /// Salient source: the worker-prepared batch (or failure marker).
    result: Option<BatchResult>,
    /// Baseline source: the raw mini-batch node ids.
    chunk: Vec<NodeId>,
    mfg: Option<MessageFlowGraph>,
    /// Baseline prep output: packed staged rows awaiting the widen.
    staged: Option<FeatureSlab>,
    features: Option<Tensor>,
    labels: Vec<u32>,
}

impl TrainItem {
    fn empty(bid: u64) -> TrainItem {
        TrainItem {
            bid,
            result: None,
            chunk: Vec::new(),
            mfg: None,
            staged: None,
            features: None,
            labels: Vec::new(),
        }
    }
}

impl PipeItem for TrainItem {
    fn batch_id(&self) -> u64 {
        self.bid
    }
}

/// Result of one training epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training NLL loss over batches.
    pub mean_loss: f64,
    /// Number of batches processed.
    pub batches: usize,
    /// Batches whose preparation exhausted its retry budget and was skipped
    /// (always 0 unless fault injection or real faults occurred).
    pub failed_batches: usize,
    /// Blocking-time breakdown.
    pub timings: StageTimings,
}

/// Trains and evaluates a GNN on a synthetic dataset.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use salient_core::{RunConfig, Trainer};
/// use salient_graph::DatasetConfig;
///
/// let ds = Arc::new(DatasetConfig::tiny(0).build());
/// let mut trainer = Trainer::new(Arc::clone(&ds), RunConfig::test_tiny());
/// let stats = trainer.train_epoch();
/// assert!(stats.mean_loss.is_finite());
/// ```
pub struct Trainer {
    dataset: Arc<Dataset>,
    config: RunConfig,
    model: Box<dyn GnnModel>,
    opt: Adam,
    rng: StdRng,
    epoch: usize,
    trace: Trace,
}

impl Trainer {
    /// Builds the model and optimizer for a dataset. Tracing is enabled
    /// against the monotonic clock; use [`Trainer::with_trace`] to supply a
    /// disabled handle or a [`salient_trace::VirtualClock`]-backed one.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`RunConfig::validate`]).
    pub fn new(dataset: Arc<Dataset>, config: RunConfig) -> Self {
        Trainer::with_trace(dataset, config, Trace::new(Clock::monotonic()))
    }

    /// Like [`Trainer::new`] with an explicit tracing handle. Every epoch
    /// records `epoch` / `stage.*` spans and per-batch histograms against
    /// it; [`EpochStats::timings`] is derived from those spans, so a
    /// disabled handle reports zero timings.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn with_trace(dataset: Arc<Dataset>, config: RunConfig, trace: Trace) -> Self {
        config.validate();
        // With a flight recorder attached, arm the fault-site observer so a
        // triggered injection dumps the recorder *before* the action (e.g.
        // an injected panic) lands — the dump names the site and carries the
        // failing batch's causal window.
        if trace.blackbox().is_some() {
            let obs_trace = trace.clone();
            fault::set_fire_observer(Some(std::sync::Arc::new(move |site: &str, occ: u64| {
                if let Some(bb) = obs_trace.blackbox() {
                    let _ = bb.dump(&obs_trace, site, occ);
                }
            })));
        }
        let model = build_model(
            config.model.into(),
            dataset.features.dim(),
            config.hidden,
            dataset.num_classes,
            config.num_layers,
            config.seed,
        );
        let opt = Adam::new(config.learning_rate);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7AA7);
        Trainer {
            dataset,
            config,
            model,
            opt,
            rng,
            epoch: 0,
            trace,
        }
    }

    /// The tracing handle this trainer records against.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Derives this epoch's [`StageTimings`] view from the spans recorded in
    /// the window `[e0, e1]` (flushes and snapshots the registry).
    fn timings_view(&self, e0: u64, e1: u64) -> StageTimings {
        let snap = self.trace.snapshot();
        StageTimings::from_report(&analyze(&snap.window(e0, e1)))
    }

    /// The wrapped model.
    pub fn model(&self) -> &dyn GnnModel {
        self.model.as_ref()
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut dyn GnnModel {
        self.model.as_mut()
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Runs one training epoch with the configured executor.
    pub fn train_epoch(&mut self) -> EpochStats {
        let mut order = self.dataset.splits.train.clone();
        order.shuffle(&mut self.rng);
        let stats = match self.config.executor {
            ExecutorKind::Baseline => self.baseline_epoch(&order),
            ExecutorKind::Salient => self.salient_epoch(&order),
        };
        self.epoch += 1;
        stats
    }

    /// Trains for `config.epochs` epochs.
    pub fn fit(&mut self) -> Vec<EpochStats> {
        (0..self.config.epochs).map(|_| self.train_epoch()).collect()
    }

    /// Trains with per-epoch validation and early stopping: stops once
    /// validation accuracy has not improved for `patience` consecutive
    /// epochs (bounded by `config.epochs`). Returns the epoch history and
    /// the best validation accuracy observed.
    pub fn fit_with_early_stopping(&mut self, patience: usize) -> (Vec<EpochStats>, f64) {
        let val_nodes = self.dataset.splits.val.clone();
        let fanouts = self.config.infer_fanouts.clone();
        let mut history = Vec::new();
        let mut best = f64::NEG_INFINITY;
        let mut since_best = 0usize;
        for _ in 0..self.config.epochs {
            history.push(self.train_epoch());
            let (acc, _) = self.evaluate_sampled(&val_nodes, &fanouts);
            if acc > best + 1e-9 {
                best = acc;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    break;
                }
            }
        }
        (history, best.max(0.0))
    }

    /// One optimizer step on a staged batch; returns the loss.
    fn train_batch(&mut self, mfg: &MessageFlowGraph, features: Tensor, labels: &[u32]) -> f64 {
        let tape = Tape::new();
        let x = tape.constant(features);
        let out = self
            .model
            .forward(&tape, x, mfg, Mode::Train, &mut self.rng);
        let targets: Vec<usize> = labels.iter().map(|&c| c as usize).collect();
        let loss = out.nll_loss(&targets);
        let loss_value = loss.value().item() as f64;
        let grads = tape.backward(&loss);
        salient_tensor::optim::zero_grads(self.model.params_mut().into_iter());
        grads.apply_to(self.model.params_mut());
        self.opt.step(self.model.params_mut().into_iter());
        loss_value
    }

    /// Serial PyG-style epoch (Listing 1 of the paper), expressed as the
    /// same stage graph the SALIENT executor uses but pinned to the inline
    /// schedule: prep, transfer and train run back-to-back on the trainer
    /// thread with shared boundary timestamps — the serial reference.
    fn baseline_epoch(&mut self, order: &[NodeId]) -> EpochStats {
        let trace = self.trace.clone();
        let clock = trace.clock();
        let epoch_start = clock.now_ns();
        let mut sampler = PygSampler::new(self.config.seed ^ self.epoch as u64);
        let dim = self.dataset.features.dim();
        let fanouts = self.config.train_fanouts.clone();
        let transfer_bytes = trace.counter(names::counters::TRANSFER_BYTES);
        let mut total_loss = 0.0;
        let mut batches = 0usize;
        let dataset = Arc::clone(&self.dataset);
        {
            let this = &mut *self;
            let total_loss = &mut total_loss;
            let batches = &mut batches;
            let mut chunks = order.chunks(this.config.batch_size);
            let mut next_bid = 0u64;
            let ds = Arc::clone(&dataset);
            StageGraph::new(GraphSpec::new("baseline"), move || {
                let chunk = chunks.next()?;
                let bid = next_bid;
                next_bid += 1;
                Some(TrainItem {
                    chunk: chunk.to_vec(),
                    ..TrainItem::empty(bid)
                })
            })
            // Batch preparation: sample then slice (lines 1–4). For the
            // baseline this is real work on the trainer thread.
            .stage(
                StageSpec::new("prep", names::spans::STAGE_PREP),
                move |mut item: TrainItem| {
                    let mfg = sampler.sample(&ds.graph, &item.chunk, &fanouts);
                    let mut staged = FeatureSlab::new(ds.features.dtype(), 0);
                    staged.resize(mfg.num_nodes() * dim);
                    ds.features.slice_into(&mfg.node_ids, staged.rows_mut());
                    item.labels = mfg.node_ids[..mfg.batch_size()]
                        .iter()
                        .map(|&v| ds.labels[v as usize])
                        .collect();
                    item.mfg = Some(mfg);
                    item.staged = Some(staged);
                    StageOutcome::Emit(item)
                },
            )
            // Transfer: the packed→f32 upcast stands in for the PCIe copy +
            // device-side widening (line 5). The counted bytes are the
            // *packed* payload — the quantity the copy would move.
            .stage(
                StageSpec::new("transfer", names::spans::STAGE_TRANSFER),
                move |mut item: TrainItem| {
                    let (Some(staged), Some(mfg)) = (item.staged.take(), item.mfg.as_ref()) else {
                        return StageOutcome::Skip;
                    };
                    let mut wide = vec![0.0f32; staged.len()];
                    staged.widen_into(&mut wide);
                    transfer_bytes.add(
                        (staged.bytes() + item.labels.len() * std::mem::size_of::<u32>()) as u64,
                    );
                    item.features = Some(Tensor::from_vec(wide, [mfg.num_nodes(), dim]));
                    StageOutcome::Emit(item)
                },
            )
            // Training (lines 6–8).
            .stage(
                StageSpec::new("train", names::spans::STAGE_TRAIN)
                    .hist(names::hists::TRAIN_BATCH_NS),
                move |mut item: TrainItem| {
                    let (Some(mfg), Some(features)) = (item.mfg.take(), item.features.take())
                    else {
                        return StageOutcome::Skip;
                    };
                    let labels = std::mem::take(&mut item.labels);
                    *total_loss += this.train_batch(&mfg, features, &labels);
                    *batches += 1;
                    StageOutcome::Emit(item)
                },
            )
            .run_inline(&trace);
        }
        let epoch_end = clock.now_ns();
        trace.record_span(names::spans::EPOCH, NO_BATCH, epoch_start, epoch_end);
        EpochStats {
            epoch: self.epoch,
            mean_loss: total_loss / batches.max(1) as f64,
            batches,
            failed_batches: 0,
            timings: self.timings_view(epoch_start, epoch_end),
        }
    }

    /// SALIENT epoch: shared-memory workers prepare batches concurrently;
    /// the consumer side is a transfer→train stage graph. On an adequate
    /// thread budget ([`StageGraph::threaded_available`]) the two stages
    /// run on dedicated threads with a bounded
    /// ([`shape::TRANSFER_QUEUE_CAP`]) queue between them, so batch `k+1`'s
    /// widen/copy overlaps batch `k`'s compute; otherwise the inline
    /// schedule reproduces the exact clock-read and FP-operation order of
    /// the serial consumer loop.
    ///
    /// Workers record into the same trace registry (sample/slice spans,
    /// slot-wait backpressure, fault events), so one snapshot holds the
    /// whole pipeline: trainer stalls *and* the concurrent prep work they
    /// overlapped with.
    fn salient_epoch(&mut self, order: &[NodeId]) -> EpochStats {
        let trace = self.trace.clone();
        let clock = trace.clock();
        let transfer_bytes = trace.counter(names::counters::TRANSFER_BYTES);
        let epoch_start = clock.now_ns();
        let prep_cfg = PrepConfig {
            num_workers: self.config.num_workers,
            fanouts: self.config.train_fanouts.clone(),
            batch_size: self.config.batch_size,
            slots: self.config.slots,
            mode: PrepMode::SharedMemory,
            sampler: SamplerKind::Fast,
            seed: self.config.seed ^ (self.epoch as u64) << 16,
            retry_budget: self.config.prep_retry_budget,
            respawn_budget: self.config.prep_respawn_budget,
            trace: trace.clone(),
        };
        let handle = run_epoch(&self.dataset, order, &prep_cfg);
        let dim = self.dataset.features.dim();
        let mut total_loss = 0.0;
        let mut batches = 0usize;
        let mut failed_batches = 0usize;
        let stats = {
            let this = &mut *self;
            let total_loss = &mut total_loss;
            let batches = &mut batches;
            let failed = &mut failed_batches;
            let rx = handle.batches.clone();
            // Panic budget 2: an isolated stage panic retires its batch
            // (counted in `failed_batches`, mirroring prep's
            // retry-exhaustion policy); repetition beyond the budget
            // poisons the pipeline, because a recurring executor panic is
            // a bug, not a flaky batch.
            StageGraph::new(
                GraphSpec::new("train")
                    .panic_budget(2)
                    .wait_hist(names::hists::PREP_WAIT_NS),
                move || {
                    let result = rx.recv().ok()?;
                    let mut item = TrainItem::empty(result.batch_id() as u64);
                    item.result = Some(result);
                    Some(item)
                },
            )
            // Transfer: widen the packed staged rows to f32 — the PCIe
            // copy + device-side cast stand-in. The pinned slot returns to
            // the pool when it drops at the end of this stage.
            .stage(
                StageSpec::new("transfer", names::spans::STAGE_TRANSFER)
                    .wait(names::spans::PIPE_WAIT),
                move |mut item: TrainItem| {
                    let bid = item.bid;
                    let batch = match item.result.take() {
                        Some(BatchResult::Ready(batch)) => batch,
                        Some(BatchResult::Failed { .. }) => {
                            // Terminal marker: preparation exhausted its
                            // retry budget. The epoch proceeds on the
                            // surviving batches.
                            *failed += 1;
                            return StageOutcome::Skip;
                        }
                        None => return StageOutcome::Skip,
                    };
                    if fault::fire(fault::sites::PIPE_TRANSFER, bid) {
                        // Injected transfer drop: the batch retires here,
                        // its slot returning to the pool via RAII.
                        *failed += 1;
                        return StageOutcome::Skip;
                    }
                    let mut wide = vec![0.0f32; batch.mfg.num_nodes() * dim];
                    batch.slot.features().widen_into(&mut wide);
                    transfer_bytes.add(batch.slot.payload_bytes() as u64);
                    item.features =
                        Some(Tensor::from_vec(wide, [batch.mfg.num_nodes(), dim]));
                    item.labels = batch.slot.labels().to_vec();
                    item.mfg = Some(batch.mfg);
                    StageOutcome::Emit(item)
                },
            )
            // Train: the consumer's wait on this stage's input is the
            // SALIENT Table 1 "prep" stall (only the time it blocks; the
            // prep work itself ran on the workers).
            .stage(
                StageSpec::new("train", names::spans::STAGE_TRAIN)
                    .wait(names::spans::STAGE_PREP)
                    .queue(shape::TRANSFER_QUEUE_CAP)
                    .gauge(names::gauges::PIPE_QUEUE_COMPUTE)
                    .hist(names::hists::TRAIN_BATCH_NS),
                move |mut item: TrainItem| {
                    let (Some(mfg), Some(features)) = (item.mfg.take(), item.features.take())
                    else {
                        return StageOutcome::Skip;
                    };
                    let labels = std::mem::take(&mut item.labels);
                    *total_loss += this.train_batch(&mfg, features, &labels);
                    *batches += 1;
                    StageOutcome::Emit(item)
                },
            )
            .run(&trace)
        };
        // Batches dropped by an injected stage panic count as failed: they
        // left the pipeline without training, like a prep failure.
        failed_batches += stats.panics as usize;
        handle.join();
        let epoch_end = clock.now_ns();
        trace.record_span(names::spans::EPOCH, NO_BATCH, epoch_start, epoch_end);
        EpochStats {
            epoch: self.epoch,
            mean_loss: total_loss / batches.max(1) as f64,
            batches,
            failed_batches,
            timings: self.timings_view(epoch_start, epoch_end),
        }
    }

    /// Sampled mini-batch inference over `nodes` with the given fanouts.
    /// Returns `(accuracy, predictions)`.
    ///
    /// Runs through [`crate::infer::BatchInferencer`] — the same pinned-slot
    /// staging path the serving layer uses, numerically identical to a
    /// direct f32 gather (staging copies the packed values; the widen is the
    /// same per-element conversion `gather_f32` performs).
    pub fn evaluate_sampled(&mut self, nodes: &[NodeId], fanouts: &[usize]) -> (f64, Vec<u32>) {
        let mut sampler = FastSampler::new(self.config.seed ^ 0x1FE2);
        let inferencer = crate::infer::BatchInferencer::with_trace(
            Arc::clone(&self.dataset),
            1,
            self.config.batch_size,
            &self.trace,
        );
        let mut preds = Vec::with_capacity(nodes.len());
        for chunk in nodes.chunks(self.config.batch_size) {
            let mfg = sampler.sample(&self.dataset.graph, chunk, fanouts);
            let batch_preds = inferencer
                .infer_mfg(self.model.as_mut(), &mfg, &mut self.rng)
                // Offline evaluation keeps the old contract: a poisoned model
                // is a caller bug, not load to shed — re-raise it.
                .unwrap_or_else(|p| panic!("{p}"));
            preds.extend(batch_preds);
        }
        let targets: Vec<u32> = nodes.iter().map(|&v| self.dataset.labels[v as usize]).collect();
        (metrics::accuracy(&preds, &targets), preds)
    }

    /// Consumes the trainer, handing its trained model to another owner
    /// (the serving layer takes the model without the training scaffolding).
    pub fn into_model(self) -> Box<dyn GnnModel> {
        self.model
    }

    /// Full-neighborhood inference ("fanout: all" in Table 6) via the
    /// layer-wise trick: an MFG whose every hop is the entire graph.
    ///
    /// Memory scales with `num_nodes × hidden`, which is exactly why the
    /// paper's papers100M run goes out of memory on this path.
    pub fn evaluate_full(&mut self, nodes: &[NodeId]) -> (f64, Vec<u32>) {
        let mfg = crate::infer::full_graph_mfg(&self.dataset.graph, self.config.num_layers);
        let tape = Tape::new();
        let x = tape.constant(self.dataset.features.gather_f32(&mfg.node_ids));
        let out = self
            .model
            .forward(&tape, x, &mfg, Mode::Eval, &mut self.rng);
        let all_preds = metrics::argmax_rows(&out.value());
        let preds: Vec<u32> = nodes.iter().map(|&v| all_preds[v as usize]).collect();
        let targets: Vec<u32> = nodes.iter().map(|&v| self.dataset.labels[v as usize]).collect();
        (metrics::accuracy(&preds, &targets), preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    fn dataset() -> Arc<Dataset> {
        Arc::new(DatasetConfig::tiny(42).build())
    }

    #[test]
    fn baseline_and_salient_both_reduce_loss() {
        for executor in [ExecutorKind::Baseline, ExecutorKind::Salient] {
            let cfg = RunConfig {
                executor,
                epochs: 4,
                ..RunConfig::test_tiny()
            };
            let mut trainer = Trainer::new(dataset(), cfg);
            let history = trainer.fit();
            let first = history.first().unwrap().mean_loss;
            let last = history.last().unwrap().mean_loss;
            assert!(
                last < first,
                "{executor:?}: loss should fall, {first:.3} -> {last:.3}"
            );
        }
    }

    #[test]
    fn salient_processes_every_batch() {
        let cfg = RunConfig::test_tiny();
        let ds = dataset();
        let expected = ds.splits.train.len().div_ceil(cfg.batch_size);
        let mut trainer = Trainer::new(ds, cfg);
        let stats = trainer.train_epoch();
        assert_eq!(stats.batches, expected);
        assert!(stats.timings.total_s > 0.0);
    }

    #[test]
    fn traced_epoch_agrees_with_stage_timings() {
        let trace = Trace::new(Clock::virtual_with_tick(10_000));
        let cfg = RunConfig::test_tiny();
        let mut trainer = Trainer::with_trace(dataset(), cfg, trace.clone());
        let stats = trainer.train_epoch();
        let snap = trace.snapshot();
        let report = analyze(&snap);
        // Both views derive from the same clock reads: they must agree
        // exactly, and the stage percentages partition the window.
        let t = StageTimings::from_report(&report);
        assert!((t.total_s - stats.timings.total_s).abs() < 1e-12);
        assert!((t.prep_s - stats.timings.prep_s).abs() < 1e-12);
        let sum: f64 = report.stage_pcts().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9, "{sum}");
        // Workers recorded real prep work into the same registry.
        assert!(snap.spans(names::spans::PREP_SAMPLE).count() >= stats.batches);
        assert!(snap.distinct_tids() >= 2);
    }

    #[test]
    fn disabled_trace_still_trains() {
        let cfg = RunConfig::test_tiny();
        let mut trainer = Trainer::with_trace(dataset(), cfg, Trace::disabled());
        let stats = trainer.train_epoch();
        assert!(stats.mean_loss.is_finite());
        assert!(stats.batches > 0);
        // No registry: the timings view is empty by construction.
        assert_eq!(stats.timings.total_s, 0.0);
    }

    #[test]
    fn trained_model_beats_chance() {
        let cfg = RunConfig {
            epochs: 12,
            ..RunConfig::test_tiny()
        };
        let ds = dataset();
        let chance = 1.0 / ds.num_classes as f64;
        let mut trainer = Trainer::new(Arc::clone(&ds), cfg);
        trainer.fit();
        let nodes = ds.splits.val.clone();
        let (acc, preds) = trainer.evaluate_sampled(&nodes, &[5, 5]);
        assert_eq!(preds.len(), nodes.len());
        assert!(
            acc > chance * 2.0,
            "sampled eval accuracy {acc:.3} barely above chance {chance:.3}"
        );
    }

    #[test]
    fn full_inference_agrees_with_heavily_sampled() {
        let cfg = RunConfig {
            epochs: 10,
            ..RunConfig::test_tiny()
        };
        let ds = dataset();
        let mut trainer = Trainer::new(Arc::clone(&ds), cfg);
        trainer.fit();
        let nodes = ds.splits.test.clone();
        let (full_acc, _) = trainer.evaluate_full(&nodes);
        let (sampled_acc, _) = trainer.evaluate_sampled(&nodes, &[100, 100]);
        assert!(
            (full_acc - sampled_acc).abs() < 0.08,
            "huge-fanout sampling ≈ full: {sampled_acc:.3} vs {full_acc:.3}"
        );
    }
}
