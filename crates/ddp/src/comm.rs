//! In-process collective communication: a ring all-reduce over threads.
//!
//! SALIENT delegates gradient synchronization to PyTorch DDP over NCCL; this
//! module provides the equivalent primitive for the Rust reproduction. The
//! algorithm is the standard two-phase ring: `n − 1` reduce-scatter steps
//! followed by `n − 1` all-gather steps, so each rank sends and receives
//! `2·(n−1)/n` of the buffer — the same communication volume the simulator's
//! cost model charges.

use salient_tensor::Tensor;
use std::sync::mpsc::{channel, Receiver, Sender};

/// One rank's endpoint of a ring communicator.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    world: usize,
    to_next: Sender<Vec<f32>>,
    from_prev: Receiver<Vec<f32>>,
}

impl Communicator {
    /// Creates a ring of `world` connected communicators.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn ring(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world size must be positive");
        // Each ring link has exactly one producer and one consumer, so the
        // std SPSC channel is sufficient.
        let channels: Vec<(Sender<Vec<f32>>, Receiver<Vec<f32>>)> =
            (0..world).map(|_| channel()).collect();
        let mut senders: Vec<Option<Sender<Vec<f32>>>> =
            channels.iter().map(|(s, _)| Some(s.clone())).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, rx))| {
                // rank sends to rank+1; channel i is *received* by rank i,
                // so rank r sends on channel (r + 1) % world.
                let to_next = senders[(rank + 1) % world]
                    .take()
                    .expect("each channel has one producer");
                Communicator {
                    rank,
                    world,
                    to_next,
                    from_prev: rx,
                }
            })
            .collect()
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.world
    }

    fn chunk_bounds(len: usize, world: usize, chunk: usize) -> (usize, usize) {
        let base = len / world;
        let rem = len % world;
        let start = chunk * base + chunk.min(rem);
        let size = base + usize::from(chunk < rem);
        (start, start + size)
    }

    /// In-place ring all-reduce (sum) over a flat buffer. Every rank must
    /// call this with a buffer of identical length.
    ///
    /// # Panics
    ///
    /// Panics if a peer disconnected mid-collective.
    pub fn all_reduce_sum(&self, data: &mut [f32]) {
        let n = self.world;
        if n == 1 {
            return;
        }
        let len = data.len();
        // Reduce-scatter: after step s, rank r owns the full sum of chunk
        // (r + 1) mod n ... eventually chunk (r + 1) mod n is complete.
        let mut send_chunk = self.rank;
        for _ in 0..n - 1 {
            let (s, e) = Self::chunk_bounds(len, n, send_chunk);
            self.to_next
                .send(data[s..e].to_vec())
                .expect("ring peer disconnected");
            let recv_chunk = (send_chunk + n - 1) % n;
            let (rs, re) = Self::chunk_bounds(len, n, recv_chunk);
            let incoming = self.from_prev.recv().expect("ring peer disconnected");
            debug_assert_eq!(incoming.len(), re - rs);
            for (d, v) in data[rs..re].iter_mut().zip(incoming) {
                *d += v;
            }
            send_chunk = recv_chunk;
        }
        // All-gather: circulate the completed chunks.
        for _ in 0..n - 1 {
            let (s, e) = Self::chunk_bounds(len, n, send_chunk);
            self.to_next
                .send(data[s..e].to_vec())
                .expect("ring peer disconnected");
            let recv_chunk = (send_chunk + n - 1) % n;
            let (rs, re) = Self::chunk_bounds(len, n, recv_chunk);
            let incoming = self.from_prev.recv().expect("ring peer disconnected");
            data[rs..re].copy_from_slice(&incoming);
            send_chunk = recv_chunk;
        }
    }

    /// In-place all-reduce that averages instead of summing.
    pub fn all_reduce_mean(&self, data: &mut [f32]) {
        self.all_reduce_sum(data);
        let inv = 1.0 / self.world as f32;
        for d in data {
            *d *= inv;
        }
    }

    /// Averages a tensor across ranks in place.
    pub fn all_reduce_mean_tensor(&self, t: &mut Tensor) {
        self.all_reduce_mean(t.data_mut());
    }

    /// Broadcast from rank 0: every rank ends with rank 0's buffer.
    pub fn broadcast(&self, data: &mut [f32]) {
        if self.world == 1 {
            return;
        }
        // Pass the buffer around the ring n-1 times starting at rank 0.
        if self.rank == 0 {
            self.to_next
                .send(data.to_vec())
                .expect("ring peer disconnected");
        } else {
            let incoming = self.from_prev.recv().expect("ring peer disconnected");
            data.copy_from_slice(&incoming);
            if self.rank != self.world - 1 {
                self.to_next
                    .send(data.to_vec())
                    .expect("ring peer disconnected");
            }
        }
    }

    /// Synchronization barrier (an all-reduce of a scalar).
    pub fn barrier(&self) {
        let mut token = [0.0f32];
        self.all_reduce_sum(&mut token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ranks<F>(world: usize, f: F) -> Vec<Vec<f32>>
    where
        F: Fn(usize, &Communicator) -> Vec<f32> + Send + Sync,
    {
        let comms = Communicator::ring(world);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (r, comm) in comms.into_iter().enumerate() {
                let f = &f;
                handles.push(s.spawn(move || f(r, &comm)));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sum_across_4_ranks() {
        let results = run_ranks(4, |r, comm| {
            let mut data: Vec<f32> = (0..10).map(|i| (r * 10 + i) as f32).collect();
            comm.all_reduce_sum(&mut data);
            data
        });
        // Sum over ranks of (10r + i) = 60 + 4i.
        for data in results {
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 60.0 + 4.0 * i as f32);
            }
        }
    }

    #[test]
    fn all_reduce_mean_equals_average() {
        let results = run_ranks(3, |r, comm| {
            let mut data = vec![r as f32; 7];
            comm.all_reduce_mean(&mut data);
            data
        });
        for data in results {
            assert!(data.iter().all(|&v| (v - 1.0).abs() < 1e-6));
        }
    }

    #[test]
    fn buffer_shorter_than_world_still_works() {
        let results = run_ranks(4, |r, comm| {
            let mut data = vec![r as f32 + 1.0];
            comm.all_reduce_sum(&mut data);
            data
        });
        for data in results {
            assert_eq!(data[0], 10.0);
        }
    }

    #[test]
    fn broadcast_from_rank_zero() {
        let results = run_ranks(4, |r, comm| {
            let mut data = if r == 0 { vec![3.5; 5] } else { vec![0.0; 5] };
            comm.broadcast(&mut data);
            data
        });
        for data in results {
            assert!(data.iter().all(|&v| v == 3.5));
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let comms = Communicator::ring(1);
        let mut data = vec![1.0, 2.0];
        comms[0].all_reduce_mean(&mut data);
        assert_eq!(data, vec![1.0, 2.0]);
        comms[0].barrier();
    }

    #[test]
    fn barrier_completes() {
        run_ranks(5, |_, comm| {
            comm.barrier();
            vec![]
        });
    }
}
