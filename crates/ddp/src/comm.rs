//! In-process collective communication: a ring all-reduce over threads.
//!
//! SALIENT delegates gradient synchronization to PyTorch DDP over NCCL; this
//! module provides the equivalent primitive for the Rust reproduction. The
//! algorithm is the standard two-phase ring: `n − 1` reduce-scatter steps
//! followed by `n − 1` all-gather steps, so each rank sends and receives
//! `2·(n−1)/n` of the buffer — the same communication volume the simulator's
//! cost model charges.
//!
//! Every ring receive is bounded by a configurable deadline: a dead or
//! dropped peer surfaces as a typed [`CommError`] naming the rank, step, and
//! phase where the collective stalled, instead of deadlocking the ring on a
//! blocking `recv`. Fault injection hooks ([`salient_fault::sites::DDP_SEND`]
//! / [`salient_fault::sites::DDP_RECV`]) allow tests to drop links and delay
//! ranks deterministically.

use salient_fault::{self as fault, FaultAction};
use salient_tensor::Tensor;
use salient_trace::{names, Counter, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Which phase of a collective an error occurred in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommPhase {
    /// The reduce-scatter half of an all-reduce.
    ReduceScatter,
    /// The all-gather half of an all-reduce.
    AllGather,
    /// A broadcast from rank 0.
    Broadcast,
}

impl std::fmt::Display for CommPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommPhase::ReduceScatter => "reduce-scatter",
            CommPhase::AllGather => "all-gather",
            CommPhase::Broadcast => "broadcast",
        };
        f.write_str(s)
    }
}

/// Why a collective failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommErrorKind {
    /// No message arrived from the previous rank within the deadline.
    Timeout(Duration),
    /// A peer's endpoint was dropped (its thread died).
    Disconnected,
}

/// A failed collective: which rank observed it, at which ring step, in which
/// phase. Replaces the ring's previous behavior of blocking forever (or
/// panicking) when a peer dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommError {
    /// The rank that observed the failure.
    pub rank: usize,
    /// The communicator's monotone ring-step counter at the failure.
    pub step: u64,
    /// The collective phase that stalled.
    pub phase: CommPhase,
    /// Timeout or disconnect.
    pub kind: CommErrorKind,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            CommErrorKind::Timeout(d) => write!(
                f,
                "rank {} timed out after {:?} at ring step {} ({})",
                self.rank, d, self.step, self.phase
            ),
            CommErrorKind::Disconnected => write!(
                f,
                "rank {} lost its ring peer at step {} ({})",
                self.rank, self.step, self.phase
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Default per-step receive deadline (override per-ring with
/// [`Communicator::ring_with_timeout`] or globally with
/// `SALIENT_COMM_TIMEOUT_MS`).
pub const DEFAULT_STEP_TIMEOUT: Duration = Duration::from_secs(5);

fn default_timeout() -> Duration {
    std::env::var("SALIENT_COMM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_STEP_TIMEOUT)
}

/// One rank's endpoint of a ring communicator.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    world: usize,
    timeout: Duration,
    steps: AtomicU64,
    to_next: Sender<Vec<f32>>,
    /// Wrapped so `Communicator: Sync`: the pipelined executors capture
    /// `&Communicator` in `Send` stage closures. Uncontended in practice —
    /// only the owning rank ever receives on its link.
    from_prev: Mutex<Receiver<Vec<f32>>>,
    trace: Trace,
    // Metric handles resolved once at ring construction so the per-step hot
    // path is two relaxed atomic adds (detached no-ops when tracing is off).
    bytes_sent: Counter,
    steps_counter: Counter,
}

impl Communicator {
    /// Creates a ring of `world` connected communicators with the default
    /// step deadline.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn ring(world: usize) -> Vec<Communicator> {
        Self::ring_with_timeout(world, default_timeout())
    }

    /// Creates a ring whose receives give up after `timeout` per step.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn ring_with_timeout(world: usize, timeout: Duration) -> Vec<Communicator> {
        Self::ring_traced(world, timeout, &Trace::disabled())
    }

    /// Creates a ring whose endpoints record `ddp.step` spans and
    /// bytes/steps counters against `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn ring_traced(world: usize, timeout: Duration, trace: &Trace) -> Vec<Communicator> {
        assert!(world > 0, "world size must be positive");
        // Each ring link has exactly one producer and one consumer, so the
        // std SPSC channel is sufficient. Channel i is *received* by rank i
        // and rank r sends to rank r + 1, so rotating the sender list left
        // by one pairs rank r with the sender of channel (r + 1) % world —
        // no Option juggling, each sender moved exactly once.
        let (mut senders, receivers): (Vec<Sender<Vec<f32>>>, Vec<Receiver<Vec<f32>>>) =
            (0..world).map(|_| channel()).unzip();
        senders.rotate_left(1);
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to_next, from_prev))| Communicator {
                rank,
                world,
                timeout,
                steps: AtomicU64::new(0),
                to_next,
                from_prev: Mutex::new(from_prev),
                trace: trace.clone(),
                bytes_sent: trace.counter(names::counters::DDP_BYTES),
                steps_counter: trace.counter(names::counters::DDP_STEPS),
            })
            .collect()
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The per-step receive deadline.
    pub fn step_timeout(&self) -> Duration {
        self.timeout
    }

    /// Ring steps completed by this endpoint (diagnostic).
    pub fn steps(&self) -> u64 {
        // Relaxed: purely diagnostic counter; no other memory depends on it.
        self.steps.load(Ordering::Relaxed)
    }

    fn chunk_bounds(len: usize, world: usize, chunk: usize) -> (usize, usize) {
        let base = len / world;
        let rem = len % world;
        let start = chunk * base + chunk.min(rem);
        let size = base + usize::from(chunk < rem);
        (start, start + size)
    }

    fn err(&self, phase: CommPhase, kind: CommErrorKind) -> CommError {
        CommError {
            rank: self.rank,
            // Relaxed: step number only labels the error message.
            step: self.steps.load(Ordering::Relaxed),
            phase,
            kind,
        }
    }

    /// One ring step: send `payload` to the next rank (unless an injected
    /// fault drops the link) and receive the previous rank's payload within
    /// the deadline.
    fn step(&self, payload: Vec<f32>, phase: CommPhase) -> Result<Vec<f32>, CommError> {
        // The pre-increment value doubles as the ring-step index tagged
        // onto the send/recv edge spans, letting the critical-path
        // reconstructor chain them across ranks. Relaxed: diagnostic
        // counter; the channel send/recv provide all cross-rank ordering.
        let ring_step = self.steps.fetch_add(1, Ordering::Relaxed);
        // Comm span covers the send and the (possibly blocking) receive —
        // the trace-level view of ring latency. Payloads are f32s.
        let _comm_span = self.trace.span(names::spans::COMM_STEP);
        self.steps_counter.inc();
        self.bytes_sent
            .add(payload.len() as u64 * std::mem::size_of::<f32>() as u64);
        let clock = self.trace.clock();
        let send_t0 = clock.now_ns();
        match fault::point(fault::sites::DDP_SEND, self.rank as u64) {
            FaultAction::Proceed => {
                if self.to_next.send(payload).is_err() {
                    return Err(self.err(phase, CommErrorKind::Disconnected));
                }
            }
            FaultAction::Drop => {} // link down: the next rank will time out
            FaultAction::Delay(d) => {
                // lint: allow(determinism, deterministically injected fault delay; duration comes from the fault plan)
                std::thread::sleep(d);
                if self.to_next.send(payload).is_err() {
                    return Err(self.err(phase, CommErrorKind::Disconnected));
                }
            }
            FaultAction::Panic => {
                // lint: allow(panic-freedom, injected fault demands a panic; the epoch supervisor catches and retries)
                panic!("injected fault: panic at ddp.send (rank {})", self.rank)
            }
        }
        self.trace
            .record_span(names::spans::DDP_RING_SEND, ring_step, send_t0, clock.now_ns());
        if let FaultAction::Delay(d) = fault::point(fault::sites::DDP_RECV, self.rank as u64) {
            // lint: allow(determinism, deterministically injected fault delay; duration comes from the fault plan)
            std::thread::sleep(d);
        }
        let recv_t0 = clock.now_ns();
        let received = self.recv_from_prev();
        self.trace
            .record_span(names::spans::DDP_RING_RECV, ring_step, recv_t0, clock.now_ns());
        match received {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) => {
                Err(self.err(phase, CommErrorKind::Timeout(self.timeout)))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(self.err(phase, CommErrorKind::Disconnected))
            }
        }
    }

    /// Receives from the ring predecessor within the step deadline. The
    /// link mutex is exclusive to this rank (see `from_prev`), so the lock
    /// never blocks and a poisoned guard carries no broken invariant.
    fn recv_from_prev(&self) -> Result<Vec<f32>, RecvTimeoutError> {
        self.from_prev
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv_timeout(self.timeout)
    }

    /// In-place ring all-reduce (sum) over a flat buffer. Every rank must
    /// call this with a buffer of identical length.
    ///
    /// # Errors
    ///
    /// Returns a [`CommError`] if a peer disconnected or stalled past the
    /// step deadline; the buffer contents are unspecified on error.
    pub fn all_reduce_sum(&self, data: &mut [f32]) -> Result<(), CommError> {
        let n = self.world;
        if n == 1 {
            return Ok(());
        }
        let len = data.len();
        // Reduce-scatter: after step s, rank r owns the full sum of chunk
        // (r + 1) mod n ... eventually chunk (r + 1) mod n is complete.
        let mut send_chunk = self.rank;
        for _ in 0..n - 1 {
            let (s, e) = Self::chunk_bounds(len, n, send_chunk);
            let incoming = self.step(data[s..e].to_vec(), CommPhase::ReduceScatter)?;
            let recv_chunk = (send_chunk + n - 1) % n;
            let (rs, re) = Self::chunk_bounds(len, n, recv_chunk);
            debug_assert_eq!(incoming.len(), re - rs);
            for (d, v) in data[rs..re].iter_mut().zip(incoming) {
                *d += v;
            }
            send_chunk = recv_chunk;
        }
        // All-gather: circulate the completed chunks.
        for _ in 0..n - 1 {
            let (s, e) = Self::chunk_bounds(len, n, send_chunk);
            let incoming = self.step(data[s..e].to_vec(), CommPhase::AllGather)?;
            let recv_chunk = (send_chunk + n - 1) % n;
            let (rs, re) = Self::chunk_bounds(len, n, recv_chunk);
            data[rs..re].copy_from_slice(&incoming);
            send_chunk = recv_chunk;
        }
        Ok(())
    }

    /// In-place all-reduce that averages instead of summing.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_reduce_sum`].
    pub fn all_reduce_mean(&self, data: &mut [f32]) -> Result<(), CommError> {
        self.all_reduce_sum(data)?;
        let inv = 1.0 / self.world as f32;
        for d in data {
            *d *= inv;
        }
        Ok(())
    }

    /// Averages a tensor across ranks in place.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_reduce_sum`].
    pub fn all_reduce_mean_tensor(&self, t: &mut Tensor) -> Result<(), CommError> {
        self.all_reduce_mean(t.data_mut())
    }

    /// Broadcast from rank 0: every rank ends with rank 0's buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`CommError`] if the chain stalls or a peer disconnected.
    pub fn broadcast(&self, data: &mut [f32]) -> Result<(), CommError> {
        if self.world == 1 {
            return Ok(());
        }
        // Relaxed: diagnostic step counter only.
        self.steps.fetch_add(1, Ordering::Relaxed);
        let _comm_span = self.trace.span(names::spans::COMM_STEP);
        self.steps_counter.inc();
        if self.rank != self.world - 1 {
            self.bytes_sent
                .add(data.len() as u64 * std::mem::size_of::<f32>() as u64);
        }
        // Pass the buffer down the ring n-1 times starting at rank 0.
        if self.rank == 0 {
            if fault::fire(fault::sites::DDP_SEND, self.rank as u64) {
                return Ok(()); // dropped: downstream ranks will time out
            }
            if self.to_next.send(data.to_vec()).is_err() {
                return Err(self.err(CommPhase::Broadcast, CommErrorKind::Disconnected));
            }
        } else {
            let incoming = match self.recv_from_prev() {
                Ok(v) => v,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.err(CommPhase::Broadcast, CommErrorKind::Timeout(self.timeout)))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(self.err(CommPhase::Broadcast, CommErrorKind::Disconnected))
                }
            };
            data.copy_from_slice(&incoming);
            if self.rank != self.world - 1 {
                if fault::fire(fault::sites::DDP_SEND, self.rank as u64) {
                    return Ok(());
                }
                if self.to_next.send(data.to_vec()).is_err() {
                    return Err(self.err(CommPhase::Broadcast, CommErrorKind::Disconnected));
                }
            }
        }
        Ok(())
    }

    /// Synchronization barrier (an all-reduce of a scalar).
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_reduce_sum`].
    pub fn barrier(&self) -> Result<(), CommError> {
        let mut token = [0.0f32];
        self.all_reduce_sum(&mut token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ranks<F>(world: usize, f: F) -> Vec<Vec<f32>>
    where
        F: Fn(usize, &Communicator) -> Vec<f32> + Send + Sync,
    {
        let comms = Communicator::ring(world);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (r, comm) in comms.into_iter().enumerate() {
                let f = &f;
                handles.push(s.spawn(move || f(r, &comm)));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sum_across_4_ranks() {
        let results = run_ranks(4, |r, comm| {
            let mut data: Vec<f32> = (0..10).map(|i| (r * 10 + i) as f32).collect();
            comm.all_reduce_sum(&mut data).unwrap();
            data
        });
        // Sum over ranks of (10r + i) = 60 + 4i.
        for data in results {
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 60.0 + 4.0 * i as f32);
            }
        }
    }

    #[test]
    fn all_reduce_mean_equals_average() {
        let results = run_ranks(3, |r, comm| {
            let mut data = vec![r as f32; 7];
            comm.all_reduce_mean(&mut data).unwrap();
            data
        });
        for data in results {
            assert!(data.iter().all(|&v| (v - 1.0).abs() < 1e-6));
        }
    }

    #[test]
    fn buffer_shorter_than_world_still_works() {
        let results = run_ranks(4, |r, comm| {
            let mut data = vec![r as f32 + 1.0];
            comm.all_reduce_sum(&mut data).unwrap();
            data
        });
        for data in results {
            assert_eq!(data[0], 10.0);
        }
    }

    #[test]
    fn broadcast_from_rank_zero() {
        let results = run_ranks(4, |r, comm| {
            let mut data = if r == 0 { vec![3.5; 5] } else { vec![0.0; 5] };
            comm.broadcast(&mut data).unwrap();
            data
        });
        for data in results {
            assert!(data.iter().all(|&v| v == 3.5));
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let comms = Communicator::ring(1);
        let mut data = vec![1.0, 2.0];
        comms[0].all_reduce_mean(&mut data).unwrap();
        assert_eq!(data, vec![1.0, 2.0]);
        comms[0].barrier().unwrap();
    }

    #[test]
    fn barrier_completes() {
        run_ranks(5, |_, comm| {
            comm.barrier().unwrap();
            vec![]
        });
    }

    #[test]
    fn traced_ring_records_comm_spans_and_bytes() {
        let trace = Trace::new(salient_trace::Clock::virtual_with_tick(10));
        let comms = Communicator::ring_traced(2, Duration::from_secs(2), &trace);
        std::thread::scope(|s| {
            for comm in comms {
                s.spawn(move || {
                    let mut data = vec![1.0f32; 8];
                    comm.all_reduce_sum(&mut data).unwrap();
                    // Scoped threads can release the scope before their
                    // TLS destructors run, so flush explicitly rather than
                    // relying on teardown to beat the snapshot below.
                    comm.trace.flush_current_thread();
                });
            }
        });
        let snap = trace.snapshot();
        // 2 ranks × (1 reduce-scatter + 1 all-gather) ring steps.
        assert_eq!(snap.spans(names::spans::COMM_STEP).count(), 4);
        // Every step carries one send edge and one recv edge, batch-tagged
        // with its ring-step index for the critical-path reconstructor.
        assert_eq!(snap.spans(names::spans::DDP_RING_SEND).count(), 4);
        assert_eq!(snap.spans(names::spans::DDP_RING_RECV).count(), 4);
        assert!(snap
            .spans(names::spans::DDP_RING_SEND)
            .all(|e| e.batch == 0 || e.batch == 1));
        assert_eq!(snap.metrics.counter(names::counters::DDP_STEPS), 4);
        // Each step ships one 4-float chunk (len 8 split across 2 ranks).
        assert_eq!(snap.metrics.counter(names::counters::DDP_BYTES), 4 * 16);
        assert_eq!(snap.distinct_tids(), 2);
    }

    #[test]
    fn dead_peer_times_out_with_typed_error() {
        // Rank 1 never participates: its communicator is dropped, so rank 0
        // observes a disconnect (closed channel) or times out, instead of
        // blocking forever.
        let mut comms = Communicator::ring_with_timeout(2, Duration::from_millis(50));
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        drop(c1);
        let err = c0.all_reduce_sum(&mut [1.0, 2.0]).unwrap_err();
        assert_eq!(err.rank, 0);
        assert_eq!(err.phase, CommPhase::ReduceScatter);
        assert!(matches!(
            err.kind,
            CommErrorKind::Timeout(_) | CommErrorKind::Disconnected
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn silent_peer_times_out_with_typed_error() {
        // Rank 1 stays alive but never sends: rank 0 must time out (the
        // channel is open, so only the deadline can save it).
        let comms = Communicator::ring_with_timeout(2, Duration::from_millis(40));
        let mut it = comms.into_iter();
        let c0 = it.next().unwrap();
        let _c1 = it.next().unwrap(); // held alive, silent
        let err = c0.all_reduce_sum(&mut [1.0]).unwrap_err();
        assert_eq!(err.kind, CommErrorKind::Timeout(Duration::from_millis(40)));
        assert_eq!(err.rank, 0);
    }
}
