//! # salient-ddp
//!
//! In-process distributed data parallelism for the SALIENT reproduction:
//! a ring all-reduce [`Communicator`] (the NCCL stand-in) plus replica
//! synchronization and gradient-averaging helpers (the PyTorch-DDP
//! stand-in). Ranks are threads; the semantics — identical replicas,
//! mean-of-gradients steps — match `torch.nn.parallel.DistributedDataParallel`.
//!
//! # Example
//!
//! ```
//! use salient_ddp::Communicator;
//!
//! let comms = Communicator::ring(2);
//! std::thread::scope(|s| {
//!     for (r, comm) in comms.into_iter().enumerate() {
//!         s.spawn(move || {
//!             let mut grad = vec![r as f32 + 1.0];
//!             comm.all_reduce_mean(&mut grad).unwrap();
//!             assert_eq!(grad[0], 1.5);
//!         });
//!     }
//! });
//! ```
//!
//! Collectives are fallible: a dead or stalled peer surfaces as a typed
//! [`CommError`] (rank, step, phase) after a bounded `recv_timeout` instead
//! of deadlocking the ring.

#![warn(missing_docs)]

mod comm;
mod trainer;

pub use comm::{
    CommError, CommErrorKind, CommPhase, Communicator, DEFAULT_STEP_TIMEOUT,
};
pub use trainer::{
    average_gradients, average_model_gradients, replicas_equal, sync_model, sync_parameters,
};
