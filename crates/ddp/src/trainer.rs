//! Distributed data-parallel model utilities: replica synchronization and
//! gradient averaging (the work PyTorch DDP does for SALIENT).

use crate::comm::{CommError, Communicator};
use salient_nn::GnnModel;
use salient_tensor::Param;

/// Averages every parameter's gradient across ranks (in place).
///
/// All ranks must call this with parameters in the same order — guaranteed
/// when each rank builds the same architecture.
///
/// # Errors
///
/// Propagates the first [`CommError`] (dead or stalled peer).
pub fn average_gradients(comm: &Communicator, params: &mut [&mut Param]) -> Result<(), CommError> {
    for p in params.iter_mut() {
        comm.all_reduce_mean_tensor(p.grad_mut())?;
    }
    Ok(())
}

/// Broadcasts rank 0's parameter values to every rank, making replicas
/// bit-identical before training starts.
///
/// # Errors
///
/// Propagates the first [`CommError`] (dead or stalled peer).
pub fn sync_parameters(comm: &Communicator, params: &mut [&mut Param]) -> Result<(), CommError> {
    for p in params.iter_mut() {
        let mut buf = p.value().data().to_vec();
        comm.broadcast(&mut buf)?;
        let shape = p.value().shape().clone();
        p.set_value(salient_tensor::Tensor::from_vec(buf, shape));
    }
    Ok(())
}

/// Broadcasts a model's parameters from rank 0 (convenience wrapper).
///
/// # Errors
///
/// Propagates the first [`CommError`] (dead or stalled peer).
pub fn sync_model(comm: &Communicator, model: &mut dyn GnnModel) -> Result<(), CommError> {
    let mut params = model.params_mut();
    sync_parameters(comm, &mut params)
}

/// Averages a model's gradients across ranks (convenience wrapper).
///
/// # Errors
///
/// Propagates the first [`CommError`] (dead or stalled peer).
pub fn average_model_gradients(
    comm: &Communicator,
    model: &mut dyn GnnModel,
) -> Result<(), CommError> {
    let mut params = model.params_mut();
    average_gradients(comm, &mut params)
}

/// Verifies two parameter sets are element-wise equal (test helper for the
/// replica-consistency invariant).
pub fn replicas_equal(a: &[&Param], b: &[&Param]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.value().data() == y.value().data())
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_nn::{build_model, ModelKind};
    use salient_tensor::Tensor;

    #[test]
    fn gradient_averaging_matches_mean() {
        let comms = Communicator::ring(3);
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(r, comm)| {
                    s.spawn(move || {
                        let mut p = Param::new("w", Tensor::zeros([4]));
                        p.accumulate_grad(&Tensor::full([4], r as f32));
                        average_gradients(&comm, &mut [&mut p]).unwrap();
                        p.grad().data().to_vec()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for g in results {
            assert!(g.iter().all(|&v| (v - 1.0).abs() < 1e-6), "mean of 0,1,2 is 1");
        }
    }

    #[test]
    fn sync_makes_replicas_identical() {
        let comms = Communicator::ring(2);
        let values = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(r, comm)| {
                    s.spawn(move || {
                        // Different seeds => different initial replicas.
                        let mut model =
                            build_model(ModelKind::Sage, 8, 4, 3, 2, 100 + r as u64);
                        sync_model(&comm, model.as_mut()).unwrap();
                        model
                            .params()
                            .iter()
                            .flat_map(|p| p.value().data().to_vec())
                            .collect::<Vec<f32>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        assert_eq!(values[0], values[1], "replicas must match rank 0 after sync");
    }

    #[test]
    fn replicas_equal_helper() {
        let a = Param::new("a", Tensor::ones([2]));
        let b = Param::new("b", Tensor::ones([2]));
        let c = Param::new("c", Tensor::zeros([2]));
        assert!(replicas_equal(&[&a], &[&b]));
        assert!(!replicas_equal(&[&a], &[&c]));
        assert!(!replicas_equal(&[&a], &[&a, &b]));
    }
}
