//! Deterministic, dependency-free fault injection.
//!
//! Production pipelines survive panicking workers, straggler threads, and
//! dropped messages; this workspace is single-core and dependency-free, so
//! the only way to *test* those paths is to inject the faults
//! deterministically. This crate provides:
//!
//! * a registry of named injection sites ([`sites`]) threaded through
//!   `batchprep`, `ddp`, and `core::checkpoint`;
//! * a seeded [`FaultPlan`] mapping `(site, occurrence)` to a
//!   [`FaultAction`] — the same seed always produces the identical fault
//!   schedule, independent of thread interleaving;
//! * a process-global install point with an atomic fast path: with no plan
//!   installed, [`point`] is one relaxed load and a predictable branch, so
//!   instrumented hot paths are behaviorally identical to uninstrumented
//!   ones.
//!
//! # Occurrence indices
//!
//! Every call site passes a *logical* occurrence id rather than a wall-clock
//! or arrival index, so a plan fires on the same logical event no matter
//! which worker thread happens to execute it:
//!
//! | site | occurrence |
//! |------|------------|
//! | `prep.sample`, `prep.slice`, `prep.send` | batch id |
//! | `prep.worker` | worker id |
//! | `ddp.send`, `ddp.recv`, `ddp.rank` | rank id |
//! | `ckpt.write` | entry index |
//! | `serve.request`, `serve.queue` | request id |
//! | `serve.sampler`, `serve.slice`, `serve.gemm` | micro-batch sequence |
//! | `serve.worker` | worker incarnation |
//!
//! # Example
//!
//! ```
//! use salient_fault::{self as fault, FaultAction, FaultPlan};
//!
//! let plan = FaultPlan::new(42).panic_at(fault::sites::PREP_SAMPLE, 3);
//! assert_eq!(plan.decide(fault::sites::PREP_SAMPLE, 3), FaultAction::Panic);
//! assert_eq!(plan.decide(fault::sites::PREP_SAMPLE, 4), FaultAction::Proceed);
//!
//! // Nothing installed globally: every point is a no-op.
//! assert!(!fault::enabled());
//! assert_eq!(fault::point(fault::sites::PREP_SAMPLE, 3), FaultAction::Proceed);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The registry of named injection sites instrumented in the workspace.
pub mod sites {
    /// Batch-prep worker, inside neighborhood sampling (occ = batch id).
    pub const PREP_SAMPLE: &str = "prep.sample";
    /// Batch-prep worker, inside feature/label slicing (occ = batch id).
    pub const PREP_SLICE: &str = "prep.slice";
    /// Batch-prep worker, just before publishing a batch (occ = batch id).
    pub const PREP_SEND: &str = "prep.send";
    /// Batch-prep worker loop itself — kills the whole thread, exercising
    /// supervision rather than per-item retry (occ = worker id).
    pub const PREP_WORKER: &str = "prep.worker";
    /// DDP ring step, before sending to the next rank (occ = rank id).
    pub const DDP_SEND: &str = "ddp.send";
    /// DDP ring step, before receiving from the previous rank (occ = rank id).
    pub const DDP_RECV: &str = "ddp.recv";
    /// DDP rank training loop (occ = rank id).
    pub const DDP_RANK: &str = "ddp.rank";
    /// Checkpoint serialization, before writing an entry (occ = entry index).
    pub const CKPT_WRITE: &str = "ckpt.write";
    /// Serving request handler, inside the per-request pipeline (occ =
    /// request id). `panic` poisons exactly that request; the server's
    /// isolation boundary must contain it.
    pub const SERVE_REQUEST: &str = "serve.request";
    /// Serving admission queue (occ = request id). Any triggered action is
    /// treated as a forced queue-full: the request is shed with a typed
    /// `Rejected::Overload`, never silently dropped.
    pub const SERVE_QUEUE: &str = "serve.queue";
    /// Serving sampler stage (occ = micro-batch sequence number). `delay`
    /// models a slow-sampler stall; `panic` a crashed sampler.
    pub const SERVE_SAMPLER: &str = "serve.sampler";
    /// Serving feature-slice stage (occ = micro-batch sequence number).
    pub const SERVE_SLICE: &str = "serve.slice";
    /// Serving model-compute (GEMM) stage (occ = micro-batch sequence
    /// number).
    pub const SERVE_GEMM: &str = "serve.gemm";
    /// Serving worker thread itself (occ = worker incarnation) — kills the
    /// whole thread, exercising the serve supervisor's respawn path.
    pub const SERVE_WORKER: &str = "serve.worker";
    /// Stage-graph executor transfer/widen stage (occ = batch id). `panic`
    /// exercises the executor's per-item catch boundary: the batch is
    /// dropped and counted, the pinned slot returns via RAII, and the
    /// epoch completes on the remaining batches.
    pub const PIPE_TRANSFER: &str = "pipe.transfer";

    /// Every known site, for spec validation and documentation.
    pub const ALL: &[&str] = &[
        PREP_SAMPLE,
        PREP_SLICE,
        PREP_SEND,
        PREP_WORKER,
        DDP_SEND,
        DDP_RECV,
        DDP_RANK,
        CKPT_WRITE,
        SERVE_REQUEST,
        SERVE_QUEUE,
        SERVE_SAMPLER,
        SERVE_SLICE,
        SERVE_GEMM,
        SERVE_WORKER,
        PIPE_TRANSFER,
    ];
}

/// What a triggered site should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (a crashing worker / rank).
    Panic,
    /// Sleep at the site (a straggler).
    Delay(Duration),
    /// Suppress the site's message or effect (a dropped message).
    Drop,
}

/// The decision returned by [`FaultPlan::decide`] / [`point`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: run the site normally.
    Proceed,
    /// Panic at the site.
    Panic,
    /// Sleep for the given duration, then proceed.
    Delay(Duration),
    /// Suppress the message/effect guarded by the site.
    Drop,
}

/// When a spec fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fire on exactly this occurrence id.
    Once(u64),
    /// Fire on every occurrence.
    Always,
    /// Fire pseudo-randomly with this probability, derived from the plan
    /// seed and the occurrence id (deterministic per `(seed, site, occ)`).
    Prob(f64),
}

/// One injection rule: a site, a trigger, and the fault to apply.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The named site this rule instruments.
    pub site: String,
    /// The fault applied when the trigger fires.
    pub kind: FaultKind,
    /// When the rule fires.
    pub trigger: Trigger,
    /// Maximum number of firings (`None` = unlimited). Consumed across
    /// threads with a shared atomic counter.
    pub budget: Option<u64>,
}

#[derive(Debug)]
struct SpecState {
    spec: FaultSpec,
    fired: AtomicU64,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    specs: Vec<SpecState>,
}

/// A seeded, shareable fault schedule. Cloning shares firing budgets.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// Creates an empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner { seed, specs: Vec::new() }),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// The plan's rules, in matching order.
    pub fn specs(&self) -> Vec<FaultSpec> {
        self.inner.specs.iter().map(|s| s.spec.clone()).collect()
    }

    fn push(mut self, spec: FaultSpec) -> Self {
        inner_mut(&mut self.inner).specs.push(SpecState {
            spec,
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Adds an arbitrary rule.
    pub fn with_spec(self, spec: FaultSpec) -> Self {
        self.push(spec)
    }

    /// Panic at `site` on occurrence `occ` (once).
    pub fn panic_at(self, site: &str, occ: u64) -> Self {
        self.push(FaultSpec {
            site: site.to_string(),
            kind: FaultKind::Panic,
            trigger: Trigger::Once(occ),
            budget: Some(1),
        })
    }

    /// Sleep `delay` at `site` on occurrence `occ` (once).
    pub fn delay_at(self, site: &str, occ: u64, delay: Duration) -> Self {
        self.push(FaultSpec {
            site: site.to_string(),
            kind: FaultKind::Delay(delay),
            trigger: Trigger::Once(occ),
            budget: Some(1),
        })
    }

    /// Drop the message at `site` on every hit of occurrence `occ`.
    ///
    /// Unlike [`FaultPlan::panic_at`], this is unbudgeted: a dropped rank
    /// stays dropped for every ring step it would have participated in.
    pub fn drop_at(self, site: &str, occ: u64) -> Self {
        self.push(FaultSpec {
            site: site.to_string(),
            kind: FaultKind::Drop,
            trigger: Trigger::Once(occ),
            budget: None,
        })
    }

    /// Apply `kind` at `site` with seeded probability `p` per occurrence.
    pub fn prob(self, site: &str, kind: FaultKind, p: f64) -> Self {
        self.push(FaultSpec {
            site: site.to_string(),
            kind,
            trigger: Trigger::Prob(p),
            budget: None,
        })
    }

    /// Decides what happens at `(site, occ)`. The first matching rule whose
    /// trigger fires (and whose budget is not exhausted) wins.
    ///
    /// For a given plan seed the decision is a pure function of
    /// `(site, occ)` up to budget exhaustion, so schedules are reproducible
    /// regardless of thread interleaving.
    pub fn decide(&self, site: &str, occ: u64) -> FaultAction {
        for st in &self.inner.specs {
            if st.spec.site != site {
                continue;
            }
            let hit = match st.spec.trigger {
                Trigger::Once(k) => occ == k,
                Trigger::Always => true,
                Trigger::Prob(p) => {
                    let h = splitmix64(self.inner.seed ^ fnv1a(site) ^ occ.wrapping_mul(0x9E37));
                    // Map the top 53 bits to [0, 1).
                    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
                }
            };
            if !hit {
                continue;
            }
            if let Some(budget) = st.spec.budget {
                // Claim one firing; back off if the budget is spent.
                if st.fired.fetch_add(1, Ordering::AcqRel) >= budget {
                    continue;
                }
            }
            return match st.spec.kind {
                FaultKind::Panic => FaultAction::Panic,
                FaultKind::Delay(d) => FaultAction::Delay(d),
                FaultKind::Drop => FaultAction::Drop,
            };
        }
        FaultAction::Proceed
    }

    /// Builds a plan from `SALIENT_FAULT_SEED` / `SALIENT_FAULT_SPEC`.
    ///
    /// Returns `None` when `SALIENT_FAULT_SPEC` is unset or empty (a bare
    /// seed does nothing by itself).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let spec = match std::env::var("SALIENT_FAULT_SPEC") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Ok(None),
        };
        let seed = std::env::var("SALIENT_FAULT_SEED")
            .ok()
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("SALIENT_FAULT_SEED is not a u64: {s:?}"))
            })
            .transpose()?
            .unwrap_or(0);
        Self::parse(seed, &spec).map(Some)
    }

    /// Parses a spec string into a plan.
    ///
    /// Grammar (clauses separated by `;`):
    ///
    /// * `site=panic@K` — panic once, on occurrence `K`
    /// * `site=delay:MSms@K` — sleep `MS` milliseconds on occurrence `K`
    /// * `site=drop@K` — drop every message with occurrence `K`
    /// * `site=panic%P` / `site=drop%P` / `site=delay:MSms%P` — fire with
    ///   seeded probability `P` per occurrence
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause or unknown site.
    pub fn parse(seed: u64, spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (site, rule) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause missing '=': {clause:?}"))?;
            let site = site.trim();
            if !sites::ALL.contains(&site) {
                return Err(format!(
                    "unknown fault site {site:?} (known: {})",
                    sites::ALL.join(", ")
                ));
            }
            let (kind_str, trigger) = if let Some((k, occ)) = rule.split_once('@') {
                let occ: u64 = occ
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad occurrence in clause {clause:?}"))?;
                (k.trim(), Trigger::Once(occ))
            } else if let Some((k, p)) = rule.split_once('%') {
                let p: f64 = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad probability in clause {clause:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of [0,1] in clause {clause:?}"));
                }
                (k.trim(), Trigger::Prob(p))
            } else {
                (rule.trim(), Trigger::Always)
            };
            let kind = if kind_str == "panic" {
                FaultKind::Panic
            } else if kind_str == "drop" {
                FaultKind::Drop
            } else if let Some(ms) = kind_str
                .strip_prefix("delay:")
                .and_then(|d| d.strip_suffix("ms"))
            {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad delay in clause {clause:?}"))?;
                FaultKind::Delay(Duration::from_millis(ms))
            } else {
                return Err(format!("unknown fault kind {kind_str:?} in clause {clause:?}"));
            };
            // Single-shot triggers default to a one-firing budget; drops are
            // sticky (a dropped link stays dropped).
            let budget = match (kind, trigger) {
                (FaultKind::Drop, _) => None,
                (_, Trigger::Once(_)) => Some(1),
                _ => None,
            };
            plan = plan.push(FaultSpec {
                site: site.to_string(),
                kind,
                trigger,
                budget,
            });
        }
        Ok(plan)
    }
}

// `Arc::make_mut` requires `Clone` on the inner value (atomics aren't);
// builder methods consume `self` before the plan is shared, so the Arc is
// normally unique — rebuild only in the already-shared corner case.
fn inner_mut(this: &mut Arc<PlanInner>) -> &mut PlanInner {
    if Arc::get_mut(this).is_none() {
        let rebuilt = PlanInner {
            seed: this.seed,
            specs: this
                .specs
                .iter()
                .map(|s| SpecState {
                    spec: s.spec.clone(),
                    fired: AtomicU64::new(s.fired.load(Ordering::Acquire)),
                })
                .collect(),
        };
        *this = Arc::new(rebuilt);
    }
    Arc::get_mut(this).expect("uniquely owned after rebuild")
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// A callback invoked whenever an installed plan actually triggers a fault
/// (any [`FaultAction`] other than `Proceed`), with the site name and
/// occurrence id. Used to hook the flight recorder: a dump taken *before*
/// an injected panic unwinds captures the causal window leading up to it.
pub type FireObserver = Arc<dyn Fn(&str, u64) + Send + Sync>;

static OBSERVER_ARMED: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<FireObserver>> = Mutex::new(None);

/// Registers (or with `None`, clears) the process-global fire observer.
///
/// The observer runs on the faulting thread, after the plan decision and
/// before the action is applied — in particular before an injected panic
/// unwinds. It is called outside every fault-crate lock, so it may freely
/// take its own locks (e.g. to dump a trace).
pub fn set_fire_observer(obs: Option<FireObserver>) {
    // Armed flag first-cleared / last-set so the fast path in
    // `notify_observer` never observes the flag without the observer.
    OBSERVER_ARMED.store(false, Ordering::Release);
    let armed = obs.is_some();
    *OBSERVER.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = obs;
    OBSERVER_ARMED.store(armed, Ordering::Release);
}

fn notify_observer(site: &str, occ: u64) {
    // Relaxed fast path mirrors `point`: with no observer armed this is one
    // load on the (already cold) fault-firing path.
    if !OBSERVER_ARMED.load(Ordering::Relaxed) {
        return;
    }
    // Clone the handle out of the lock before calling so the observer can
    // itself reach fault/trace machinery without a lock-order cycle.
    let obs = OBSERVER
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(f) = obs {
        f(site, occ);
    }
}

/// Installs `plan` process-wide; subsequent [`point`] calls consult it.
pub fn install(plan: FaultPlan) {
    *PLAN.lock().unwrap() = Some(plan);
    ENABLED.store(true, Ordering::Release);
}

/// Removes any installed plan; [`point`] returns to its no-op fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    *PLAN.lock().unwrap() = None;
}

/// Whether a plan is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Installs a plan from the environment if `SALIENT_FAULT_SPEC` is set.
/// Returns whether a plan was installed.
///
/// # Errors
///
/// Propagates parse errors from [`FaultPlan::from_env`].
pub fn install_from_env() -> Result<bool, String> {
    match FaultPlan::from_env()? {
        Some(plan) => {
            install(plan);
            Ok(true)
        }
        None => Ok(false),
    }
}

/// A guard that keeps a plan installed for a scope (tests); clears on drop.
#[derive(Debug)]
pub struct ScopedPlan(());

/// Installs `plan` until the returned guard drops.
#[must_use = "the plan is cleared when the guard drops"]
pub fn scoped(plan: FaultPlan) -> ScopedPlan {
    install(plan);
    ScopedPlan(())
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        clear();
    }
}

/// Consults the installed plan at a named site. With no plan installed this
/// is one relaxed atomic load — cheap enough for per-batch hot paths.
#[inline]
pub fn point(site: &str, occ: u64) -> FaultAction {
    // Relaxed: the enable flag is a monotone fast-path filter; plan
    // installation publishes through the PLAN mutex, not this load.
    if !ENABLED.load(Ordering::Relaxed) {
        return FaultAction::Proceed;
    }
    point_slow(site, occ)
}

#[cold]
fn point_slow(site: &str, occ: u64) -> FaultAction {
    // Poison recovery: the lock guards a read-mostly `Option<Plan>` whose
    // critical sections are plain reads/assignments, so a poisoned guard
    // carries no broken invariant — and decision points sit on hot paths
    // that must stay panic-free.
    let action = {
        let guard = PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match guard.as_ref() {
            Some(plan) => plan.decide(site, occ),
            None => FaultAction::Proceed,
        }
    };
    // Notify after the plan lock drops: the observer may dump a trace or
    // take arbitrary locks of its own.
    if action != FaultAction::Proceed {
        notify_observer(site, occ);
    }
    action
}

/// Evaluates `point(site, occ)` and applies panics and delays inline.
/// Returns `true` when the site's message/effect should be dropped.
///
/// # Panics
///
/// Panics (by design) when the installed plan injects a panic here.
#[inline]
pub fn fire(site: &str, occ: u64) -> bool {
    match point(site, occ) {
        FaultAction::Proceed => false,
        FaultAction::Panic => panic!("injected fault: panic at {site} (occ {occ})"),
        FaultAction::Delay(d) => {
            // lint: allow(determinism, deterministically injected fault delay; duration comes from the installed plan)
            std::thread::sleep(d);
            false
        }
        FaultAction::Drop => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_proceeds() {
        let plan = FaultPlan::new(7);
        for occ in 0..100 {
            assert_eq!(plan.decide(sites::PREP_SAMPLE, occ), FaultAction::Proceed);
        }
    }

    #[test]
    fn once_trigger_fires_exactly_once() {
        let plan = FaultPlan::new(0).panic_at(sites::PREP_SAMPLE, 5);
        assert_eq!(plan.decide(sites::PREP_SAMPLE, 4), FaultAction::Proceed);
        assert_eq!(plan.decide(sites::PREP_SAMPLE, 5), FaultAction::Panic);
        // Budget of one: a retry of the same batch proceeds.
        assert_eq!(plan.decide(sites::PREP_SAMPLE, 5), FaultAction::Proceed);
        // Other sites are untouched.
        assert_eq!(plan.decide(sites::PREP_SLICE, 5), FaultAction::Proceed);
    }

    #[test]
    fn drop_is_sticky() {
        let plan = FaultPlan::new(0).drop_at(sites::DDP_SEND, 1);
        for _ in 0..10 {
            assert_eq!(plan.decide(sites::DDP_SEND, 1), FaultAction::Drop);
        }
        assert_eq!(plan.decide(sites::DDP_SEND, 0), FaultAction::Proceed);
    }

    #[test]
    fn same_seed_injects_identical_schedule() {
        // The property the whole crate hangs on: schedules are a pure
        // function of (seed, site, occ).
        let mk = |seed| {
            FaultPlan::new(seed)
                .prob(sites::PREP_SAMPLE, FaultKind::Panic, 0.25)
                .prob(sites::DDP_SEND, FaultKind::Drop, 0.1)
        };
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = mk(seed);
            let b = mk(seed);
            for site in [sites::PREP_SAMPLE, sites::DDP_SEND] {
                for occ in 0..2_000 {
                    assert_eq!(a.decide(site, occ), b.decide(site, occ), "seed {seed} {site} {occ}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultPlan::new(1).prob(sites::PREP_SAMPLE, FaultKind::Panic, 0.5);
        let b = FaultPlan::new(2).prob(sites::PREP_SAMPLE, FaultKind::Panic, 0.5);
        let diverges = (0..1_000).any(|occ| {
            a.decide(sites::PREP_SAMPLE, occ) != b.decide(sites::PREP_SAMPLE, occ)
        });
        assert!(diverges, "seeds 1 and 2 produced the same 1000-event schedule");
    }

    #[test]
    fn probability_rate_is_roughly_honored() {
        let plan = FaultPlan::new(9).prob(sites::PREP_SAMPLE, FaultKind::Drop, 0.3);
        let fired = (0..10_000)
            .filter(|&occ| plan.decide(sites::PREP_SAMPLE, occ) == FaultAction::Drop)
            .count();
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn parse_round_trips_each_form() {
        let plan = FaultPlan::parse(
            3,
            "prep.sample=panic@4; ddp.send=drop@1; prep.slice=delay:25ms@0; ckpt.write=panic%0.5",
        )
        .unwrap();
        assert_eq!(plan.decide(sites::PREP_SAMPLE, 4), FaultAction::Panic);
        assert_eq!(plan.decide(sites::DDP_SEND, 1), FaultAction::Drop);
        assert_eq!(
            plan.decide(sites::PREP_SLICE, 0),
            FaultAction::Delay(Duration::from_millis(25))
        );
        assert_eq!(plan.specs().len(), 4);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse(0, "nosuchsite=panic@1").is_err());
        assert!(FaultPlan::parse(0, "prep.sample-panic").is_err());
        assert!(FaultPlan::parse(0, "prep.sample=explode@1").is_err());
        assert!(FaultPlan::parse(0, "prep.sample=panic@x").is_err());
        assert!(FaultPlan::parse(0, "prep.sample=panic%1.5").is_err());
    }

    #[test]
    fn global_install_and_scoped_clear() {
        // Note: this test manipulates process-global state; it is the only
        // unit test in this crate that does, and it restores the disabled
        // state before returning.
        assert_eq!(point(sites::PREP_SAMPLE, 1), FaultAction::Proceed);
        {
            let _g = scoped(FaultPlan::new(0).drop_at(sites::PREP_SEND, 2));
            assert!(enabled());
            assert_eq!(point(sites::PREP_SEND, 2), FaultAction::Drop);
            assert_eq!(point(sites::PREP_SEND, 3), FaultAction::Proceed);
        }
        assert!(!enabled());
        assert_eq!(point(sites::PREP_SEND, 2), FaultAction::Proceed);
    }

    #[test]
    fn fire_observer_sees_triggered_sites_before_the_action() {
        // Global state, like global_install_and_scoped_clear: restores the
        // disarmed observer and cleared plan before returning.
        let seen: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        set_fire_observer(Some(Arc::new(move |site: &str, occ: u64| {
            sink.lock().unwrap().push((site.to_string(), occ));
        })));
        {
            let _g = scoped(FaultPlan::new(0).drop_at(sites::PREP_WORKER, 77));
            // A proceed decision must not notify.
            assert_eq!(point(sites::PREP_WORKER, 76), FaultAction::Proceed);
            // A triggered drop must.
            assert_eq!(point(sites::PREP_WORKER, 77), FaultAction::Drop);
        }
        set_fire_observer(None);
        let seen = seen.lock().unwrap();
        assert!(
            seen.contains(&(sites::PREP_WORKER.to_string(), 77)),
            "observer missed the triggered site: {seen:?}"
        );
        assert!(!seen.contains(&(sites::PREP_WORKER.to_string(), 76)));
    }

    #[test]
    fn budget_is_claimed_across_clones() {
        let plan = FaultPlan::new(0).panic_at(sites::PREP_SAMPLE, 0);
        let clone = plan.clone();
        assert_eq!(plan.decide(sites::PREP_SAMPLE, 0), FaultAction::Panic);
        // The clone shares the budget: already spent.
        assert_eq!(clone.decide(sites::PREP_SAMPLE, 0), FaultAction::Proceed);
    }
}
