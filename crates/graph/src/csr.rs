//! Compressed sparse row (CSR) graph storage.
//!
//! The input graph is stored exactly as PyG stores it for `NeighborSampler`:
//! a row pointer array and a column index array. Node ids are `u32` (the
//! largest paper dataset, ogbn-papers100M, has 111 M nodes, well within
//! range) which halves index memory versus `u64` and matches the memory-
//! bandwidth-sensitive design of the paper's sampler.


/// A node identifier in the global input graph.
pub type NodeId = u32;

/// An immutable graph in compressed sparse row form.
///
/// `indptr` has `n + 1` entries; the neighbors of node `v` are
/// `indices[indptr[v] .. indptr[v + 1]]`.
///
/// # Examples
///
/// ```
/// use salient_graph::CsrGraph;
///
/// // 0 -> 1, 0 -> 2, 1 -> 2
/// let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.degree(1), 1);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    indptr: Vec<usize>,
    indices: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `indptr` must be monotone,
    /// start at 0, end at `indices.len()`, and every index must be a valid
    /// node.
    pub fn from_csr(indptr: Vec<usize>, indices: Vec<NodeId>) -> Self {
        assert!(!indptr.is_empty(), "indptr must have at least one entry");
        assert_eq!(indptr[0], 0, "indptr must start at zero");
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr must end at the number of edges"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be monotone non-decreasing"
        );
        let n = indptr.len() - 1;
        assert!(
            indices.iter().all(|&v| (v as usize) < n),
            "edge endpoint out of range"
        );
        CsrGraph { indptr, indices }
    }

    /// Builds a graph from a directed edge list. Duplicate edges are kept.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut indptr = vec![0usize; num_nodes + 1];
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
            indptr[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            indptr[i + 1] += indptr[i];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0 as NodeId; edges.len()];
        for &(u, v) in edges {
            indices[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        CsrGraph { indptr, indices }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Out-degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        // lint: allow(panic-reachability, the CSR contract: indptr has num_nodes+1 entries and node ids are validated < num_nodes at build)
        self.indptr[v + 1] - self.indptr[v]
    }

    /// The neighbors of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.indices[self.indptr[v]..self.indptr[v + 1]]
    }

    /// The raw row-pointer array (length `num_nodes() + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw column-index array.
    pub fn indices(&self) -> &[NodeId] {
        &self.indices
    }

    /// Returns the symmetrized graph: for every edge `(u, v)` both `(u, v)`
    /// and `(v, u)` are present, with duplicates (and self-loops) removed.
    ///
    /// The paper makes all benchmark graphs undirected "as is common
    /// practice" (§6).
    pub fn to_undirected(&self) -> CsrGraph {
        let n = self.num_nodes();
        // Count both directions.
        let mut deg = vec![0usize; n];
        for u in 0..n {
            for &v in self.neighbors(u as NodeId) {
                if (v as usize) != u {
                    deg[u] += 1;
                    deg[v as usize] += 1;
                }
            }
        }
        let mut indptr = vec![0usize; n + 1];
        for i in 0..n {
            indptr[i + 1] = indptr[i] + deg[i];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0 as NodeId; indptr[n]];
        for u in 0..n {
            for &v in self.neighbors(u as NodeId) {
                if (v as usize) != u {
                    indices[cursor[u]] = v;
                    cursor[u] += 1;
                    indices[cursor[v as usize]] = u as NodeId;
                    cursor[v as usize] += 1;
                }
            }
        }
        // Sort each adjacency list and deduplicate.
        let mut out_indptr = vec![0usize; n + 1];
        let mut out_indices = Vec::with_capacity(indices.len());
        for u in 0..n {
            let row = &mut indices[indptr[u]..indptr[u + 1]];
            row.sort_unstable();
            let mut prev: Option<NodeId> = None;
            for &v in row.iter() {
                if prev != Some(v) {
                    out_indices.push(v);
                    prev = Some(v);
                }
            }
            out_indptr[u + 1] = out_indices.len();
        }
        CsrGraph {
            indptr: out_indptr,
            indices: out_indices,
        }
    }

    /// Whether every adjacency list is sorted (useful precondition for
    /// binary-search based membership tests).
    pub fn is_sorted(&self) -> bool {
        (0..self.num_nodes()).all(|u| {
            self.neighbors(u as NodeId)
                .windows(2)
                .all(|w| w[0] <= w[1])
        })
    }

    /// Whether the graph is symmetric (every edge has its reverse).
    ///
    /// Requires sorted adjacency lists for efficiency.
    pub fn is_undirected(&self) -> bool {
        (0..self.num_nodes() as NodeId).all(|u| {
            self.neighbors(u)
                .iter()
                .all(|&v| self.neighbors(v).binary_search(&u).is_ok())
        })
    }

    /// Histogram of out-degrees: `hist[d]` = number of nodes of degree `d`,
    /// capped at `max_degree` (all larger degrees land in the last bucket).
    pub fn degree_histogram(&self, max_degree: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_degree + 1];
        for v in 0..self.num_nodes() {
            let d = self.degree(v as NodeId).min(max_degree);
            hist[d] += 1;
        }
        hist
    }

    /// Bytes of memory used by the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn from_edges_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn from_csr_validates() {
        let g = CsrGraph::from_csr(vec![0, 2, 2, 3], vec![1, 2, 0]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[NodeId]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_csr_rejects_decreasing_indptr() {
        CsrGraph::from_csr(vec![0, 2, 1, 3], vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_csr_rejects_bad_index() {
        CsrGraph::from_csr(vec![0, 1], vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_endpoint() {
        CsrGraph::from_edges(2, &[(0, 3)]);
    }

    #[test]
    fn to_undirected_symmetrizes_and_dedups() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 1), (1, 0), (2, 2), (2, 3)]);
        let u = g.to_undirected();
        assert!(u.is_undirected());
        assert!(u.is_sorted());
        assert_eq!(u.neighbors(0), &[1]);
        assert_eq!(u.neighbors(1), &[0]);
        assert_eq!(u.neighbors(2), &[3], "self loop dropped");
        assert_eq!(u.neighbors(3), &[2]);
    }

    #[test]
    fn degree_histogram_caps() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (0, 0), (1, 2)]);
        let h = g.degree_histogram(2);
        // Degrees: 3 (capped to 2), 1, 0.
        assert_eq!(h, vec![1, 1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.is_undirected());
    }
}
