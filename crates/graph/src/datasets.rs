//! Synthetic stand-ins for the OGB benchmark datasets, at two scales.
//!
//! * **Real scale** ([`Dataset`]): a fully materialized graph + features +
//!   labels + splits, sized to run on one CPU core. These drive the
//!   correctness and accuracy experiments (Table 6, Figure 3) and the real
//!   sampler microbenchmarks (Figure 2).
//! * **Paper scale** ([`DatasetStats`]): the published statistics of
//!   ogbn-arxiv / ogbn-products / ogbn-papers100M (Table 4), which drive the
//!   discrete-event simulator's workload model for the timing experiments
//!   (Tables 1–3, Figures 4–6).

use crate::csr::CsrGraph;
use crate::features::FeatureMatrix;
use salient_tensor::Dtype;
use crate::generate::{chung_lu_communities, ChungLuConfig};
use crate::labels::{planted_features, PlantedFeatureConfig};
use crate::split::Splits;

/// Everything needed to train and evaluate on a synthetic dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name, e.g. `"arxiv-sim"`.
    pub name: String,
    /// Undirected input graph.
    pub graph: CsrGraph,
    /// Node features, packed at the configured [`Dtype`] (f16 by default).
    pub features: FeatureMatrix,
    /// Node labels (class = planted community).
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Train/val/test node splits.
    pub splits: Splits,
}

/// Generation parameters for a synthetic dataset.
#[derive(Clone, Debug)]
pub struct DatasetConfig {
    /// Dataset name.
    pub name: String,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of classes / communities.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feat_dim: usize,
    /// Power-law exponent of the degree distribution.
    pub alpha: f64,
    /// Minimum expected degree.
    pub d_min: f64,
    /// Maximum expected degree.
    pub d_max: f64,
    /// Intra-community edge probability (homophily).
    pub p_intra: f64,
    /// Feature signal scale (class prototype component).
    pub signal: f32,
    /// Feature noise standard deviation.
    pub noise: f32,
    /// Train/val/test fractions.
    pub split_fracs: (f64, f64, f64),
    /// RNG seed.
    pub seed: u64,
    /// Host storage dtype for node features. Presets read the
    /// `SALIENT_DTYPE` environment knob (default: f16, the paper's layout).
    pub dtype: Dtype,
}

impl DatasetConfig {
    /// An ogbn-arxiv-like dataset (169 K nodes, avg degree ≈ 14, 40 classes,
    /// 54/18/28 split) shrunk by `scale` (1.0 ⇒ ~17 K nodes).
    pub fn arxiv_sim(scale: f64) -> Self {
        DatasetConfig {
            name: "arxiv-sim".into(),
            num_nodes: ((17_000.0 * scale) as usize).max(200),
            num_classes: 40,
            feat_dim: 32,
            alpha: 2.0,
            d_min: 3.0,
            d_max: 400.0,
            p_intra: 0.85,
            signal: 0.4,
            noise: 1.0,
            split_fracs: (0.54, 0.18, 0.28),
            seed: 0xA12,
            dtype: Dtype::from_env(),
        }
    }

    /// An ogbn-products-like dataset (2.4 M nodes, avg degree ≈ 52, 47
    /// classes, tiny train set and huge test set) shrunk by `scale`
    /// (1.0 ⇒ ~24 K nodes).
    pub fn products_sim(scale: f64) -> Self {
        DatasetConfig {
            name: "products-sim".into(),
            num_nodes: ((24_000.0 * scale) as usize).max(200),
            num_classes: 47,
            feat_dim: 32,
            alpha: 2.0,
            d_min: 10.0,
            d_max: 2_000.0,
            p_intra: 0.85,
            signal: 0.4,
            noise: 1.0,
            split_fracs: (0.082, 0.016, 0.90),
            seed: 0xB34,
            dtype: Dtype::from_env(),
        }
    }

    /// An ogbn-papers100M-like dataset (111 M nodes, avg degree ≈ 29, 172
    /// classes, only ~1.4 % of nodes labeled) shrunk by `scale`
    /// (1.0 ⇒ 100 K nodes).
    pub fn papers_sim(scale: f64) -> Self {
        DatasetConfig {
            name: "papers-sim".into(),
            num_nodes: ((100_000.0 * scale) as usize).max(2_000),
            num_classes: 172,
            feat_dim: 32,
            alpha: 2.0,
            d_min: 6.0,
            d_max: 800.0,
            p_intra: 0.85,
            signal: 0.4,
            noise: 1.0,
            // Labeled fractions mirror 1.2M / 125K / 214K of 111M, scaled up
            // 4x so the sim-scale train set is not degenerately small.
            split_fracs: (0.044, 0.0045, 0.0077),
            seed: 0xC56,
            dtype: Dtype::from_env(),
        }
    }

    /// A tiny dataset for unit tests (fast to generate).
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig {
            name: "tiny".into(),
            num_nodes: 600,
            num_classes: 6,
            feat_dim: 16,
            alpha: 2.0,
            d_min: 3.0,
            d_max: 60.0,
            p_intra: 0.85,
            signal: 0.5,
            noise: 0.8,
            split_fracs: (0.5, 0.2, 0.3),
            seed,
            dtype: Dtype::from_env(),
        }
    }

    /// Generates the dataset.
    pub fn build(&self) -> Dataset {
        let cg = chung_lu_communities(&ChungLuConfig {
            num_nodes: self.num_nodes,
            num_communities: self.num_classes,
            alpha: self.alpha,
            d_min: self.d_min,
            d_max: self.d_max,
            p_intra: self.p_intra,
            seed: self.seed,
        });
        let feat_cfg = PlantedFeatureConfig {
            dim: self.feat_dim,
            num_classes: self.num_classes,
            signal: self.signal,
            noise: self.noise,
            seed: self.seed ^ 0xF00D,
        };
        let raw = planted_features(&cg.community, &feat_cfg);
        let features = FeatureMatrix::from_f32_dtype(self.dtype, self.num_nodes, self.feat_dim, &raw);
        let (ft, fv, fs) = self.split_fracs;
        let splits = Splits::random(self.num_nodes, ft, fv, fs, self.seed ^ 0x5EED);
        Dataset {
            name: self.name.clone(),
            graph: cg.graph,
            features,
            labels: cg.community,
            num_classes: self.num_classes,
            splits,
        }
    }
}

impl Dataset {
    /// Total memory of graph structure plus features, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes() + self.features.memory_bytes()
    }
}

/// Published statistics of the paper's benchmark datasets (Table 4), used by
/// the event simulator to model paper-scale workloads.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of nodes.
    pub num_nodes: u64,
    /// Number of edges (as published, before symmetrization).
    pub num_edges: u64,
    /// Feature dimensionality.
    pub feat_dim: u32,
    /// Training-set size.
    pub train_size: u64,
    /// Validation-set size.
    pub val_size: u64,
    /// Test-set size.
    pub test_size: u64,
    /// Effective average degree of the symmetrized graph, which governs
    /// neighborhood-expansion cost.
    pub avg_degree: f64,
}

impl DatasetStats {
    /// ogbn-arxiv: 169 K nodes, 1.2 M edges, 128 features.
    pub fn arxiv() -> Self {
        DatasetStats {
            name: "arxiv",
            num_nodes: 169_343,
            num_edges: 1_166_243,
            feat_dim: 128,
            train_size: 90_941,
            val_size: 29_799,
            test_size: 48_603,
            avg_degree: 13.7,
        }
    }

    /// ogbn-products: 2.4 M nodes, 62 M edges, 100 features.
    pub fn products() -> Self {
        DatasetStats {
            name: "products",
            num_nodes: 2_449_029,
            num_edges: 61_859_140,
            feat_dim: 100,
            train_size: 196_615,
            val_size: 39_323,
            test_size: 2_213_091,
            avg_degree: 50.5,
        }
    }

    /// ogbn-papers100M: 111 M nodes, 1.6 B edges, 128 features.
    pub fn papers() -> Self {
        DatasetStats {
            name: "papers",
            num_nodes: 111_059_956,
            num_edges: 1_615_685_872,
            feat_dim: 128,
            train_size: 1_207_179,
            val_size: 125_265,
            test_size: 214_338,
            avg_degree: 29.1,
        }
    }

    /// All three benchmark datasets in paper order.
    pub fn all() -> Vec<DatasetStats> {
        vec![Self::arxiv(), Self::products(), Self::papers()]
    }

    /// Number of mini-batches in one training epoch at the given batch size.
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        (self.train_size as usize).div_ceil(batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_builds_consistently() {
        let ds = DatasetConfig::tiny(1).build();
        assert_eq!(ds.graph.num_nodes(), 600);
        assert_eq!(ds.labels.len(), 600);
        assert_eq!(ds.features.num_nodes(), 600);
        assert_eq!(ds.features.dim(), 16);
        assert!(ds.splits.is_disjoint());
        assert!(ds.graph.is_undirected());
        assert!(ds.labels.iter().all(|&c| (c as usize) < ds.num_classes));
    }

    #[test]
    fn arxiv_sim_degree_in_ballpark() {
        let ds = DatasetConfig {
            num_nodes: 4_000,
            ..DatasetConfig::arxiv_sim(1.0)
        }
        .build();
        let avg = ds.graph.avg_degree();
        assert!(
            (6.0..30.0).contains(&avg),
            "arxiv-like avg degree {avg} out of range"
        );
    }

    #[test]
    fn paper_stats_match_table4() {
        let all = DatasetStats::all();
        assert_eq!(all.len(), 3);
        let papers = &all[2];
        assert_eq!(papers.num_nodes, 111_059_956);
        assert_eq!(papers.batches_per_epoch(1024), 1_179);
        let arxiv = &all[0];
        assert_eq!(arxiv.batches_per_epoch(1024), 89);
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = DatasetConfig::tiny(5).build();
        let b = DatasetConfig::tiny(5).build();
        assert_eq!(a.graph.indices(), b.graph.indices());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.splits.train, b.splits.train);
    }
}
