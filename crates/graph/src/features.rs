//! Node feature storage in host memory, dtype-aware.
//!
//! By default features are stored row-major in IEEE binary16, exactly as the
//! paper's tuned baseline does ("half-precision floating point for feature
//! vectors in host memory to reduce bandwidth pressure in slicing and
//! CPU-to-GPU data transfers", §3): slicing then moves 2 bytes per value and
//! the (simulated) device widens to `f32` once, after the transfer. The same
//! matrix can instead hold full-precision rows ([`Dtype::F32`], selected per
//! dataset or via the `SALIENT_DTYPE` environment knob) so the byte-volume
//! lever is measurable: the two layouts run the identical slice/transfer
//! code paths and differ only in bytes moved.
//!
//! The storage itself is a [`FeatureSlab`] — an enum over packed `F16` or
//! `f32` buffers — with borrowed views ([`FeatureRows`] /
//! [`FeatureRowsMut`]) so staging buffers (pinned slots, worker-private
//! scratch) can carry either dtype without generics spreading through the
//! pipeline crates.

use salient_tensor::{kernels, Dtype, Tensor, F16};

/// A packed, dtype-tagged feature buffer: the backing storage for the
/// dataset's feature matrix and for every staging buffer that carries sliced
/// rows toward the trainer.
#[derive(Clone, Debug)]
pub enum FeatureSlab {
    /// Packed binary16 values (2 bytes per feature).
    Half(Vec<F16>),
    /// Full-precision values (4 bytes per feature).
    Full(Vec<f32>),
}

impl FeatureSlab {
    /// A zero-filled slab of `len` values in the given dtype.
    pub fn new(dtype: Dtype, len: usize) -> Self {
        match dtype {
            Dtype::F16 => FeatureSlab::Half(vec![F16::ZERO; len]),
            Dtype::F32 => FeatureSlab::Full(vec![0.0; len]),
        }
    }

    /// Quantizes (or copies) an `f32` buffer into a slab of the given dtype.
    pub fn from_f32(dtype: Dtype, values: &[f32]) -> Self {
        match dtype {
            Dtype::F16 => FeatureSlab::Half(salient_tensor::quantize(values)),
            Dtype::F32 => FeatureSlab::Full(values.to_vec()),
        }
    }

    /// The element dtype.
    pub fn dtype(&self) -> Dtype {
        match self {
            FeatureSlab::Half(_) => Dtype::F16,
            FeatureSlab::Full(_) => Dtype::F32,
        }
    }

    /// Number of values (not bytes).
    pub fn len(&self) -> usize {
        match self {
            FeatureSlab::Half(v) => v.len(),
            FeatureSlab::Full(v) => v.len(),
        }
    }

    /// Whether the slab holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied by the packed values — the quantity a slice or
    /// host-to-device copy of this slab actually moves.
    pub fn bytes(&self) -> usize {
        self.len() * self.dtype().size_of()
    }

    /// Resizes to `len` values, zero-filling any growth.
    pub fn resize(&mut self, len: usize) {
        match self {
            FeatureSlab::Half(v) => v.resize(len, F16::ZERO),
            FeatureSlab::Full(v) => v.resize(len, 0.0),
        }
    }

    /// Borrowed view of the whole slab.
    pub fn rows(&self) -> FeatureRows<'_> {
        self.view(0, self.len())
    }

    /// Borrowed view of `len` values starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn view(&self, start: usize, len: usize) -> FeatureRows<'_> {
        match self {
            // lint: allow(panic-reachability, row ranges derive from node ids validated against num_nodes when the dataset is built)
            FeatureSlab::Half(v) => FeatureRows::Half(&v[start..start + len]),
            FeatureSlab::Full(v) => FeatureRows::Full(&v[start..start + len]),
        }
    }

    /// Mutable view of the whole slab.
    pub fn rows_mut(&mut self) -> FeatureRowsMut<'_> {
        let len = self.len();
        self.view_mut(0, len)
    }

    /// Mutable view of `len` values starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn view_mut(&mut self, start: usize, len: usize) -> FeatureRowsMut<'_> {
        match self {
            FeatureSlab::Half(v) => FeatureRowsMut::Half(&mut v[start..start + len]),
            FeatureSlab::Full(v) => FeatureRowsMut::Full(&mut v[start..start + len]),
        }
    }

    /// Widens the whole slab into `out` (the "device-side upcast": bulk F16C
    /// for half slabs, a plain copy for full slabs).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn widen_into(&self, out: &mut [f32]) {
        self.rows().widen_into(out);
    }
}

/// A borrowed, dtype-tagged run of packed feature values.
#[derive(Debug, Clone, Copy)]
pub enum FeatureRows<'a> {
    /// Binary16 values.
    Half(&'a [F16]),
    /// Full-precision values.
    Full(&'a [f32]),
}

impl FeatureRows<'_> {
    /// The element dtype.
    pub fn dtype(&self) -> Dtype {
        match self {
            FeatureRows::Half(_) => Dtype::F16,
            FeatureRows::Full(_) => Dtype::F32,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            FeatureRows::Half(v) => v.len(),
            FeatureRows::Full(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes the viewed values occupy (what copying them would move).
    pub fn bytes(&self) -> usize {
        self.len() * self.dtype().size_of()
    }

    /// Widens the values into `out` — bulk F16C for half rows, a plain copy
    /// for full rows.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn widen_into(&self, out: &mut [f32]) {
        match self {
            FeatureRows::Half(v) => salient_tensor::widen_into(v, out),
            FeatureRows::Full(v) => out.copy_from_slice(v),
        }
    }

    /// The values widened into a fresh `Vec<f32>`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        self.widen_into(&mut out);
        out
    }

    /// Sub-view of `len` values starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn view(&self, start: usize, len: usize) -> FeatureRows<'_> {
        match self {
            FeatureRows::Half(v) => FeatureRows::Half(&v[start..start + len]),
            FeatureRows::Full(v) => FeatureRows::Full(&v[start..start + len]),
        }
    }
}

/// Value equality after widening (so a half view and a full view holding the
/// same representable values compare equal). Inherits `f32` semantics:
/// `-0.0 == +0.0`, `NaN != NaN`.
impl PartialEq for FeatureRows<'_> {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.to_f32_vec() == other.to_f32_vec()
    }
}

/// A mutable, dtype-tagged run of packed feature values.
#[derive(Debug)]
pub enum FeatureRowsMut<'a> {
    /// Binary16 values.
    Half(&'a mut [F16]),
    /// Full-precision values.
    Full(&'a mut [f32]),
}

impl FeatureRowsMut<'_> {
    /// The element dtype.
    pub fn dtype(&self) -> Dtype {
        match self {
            FeatureRowsMut::Half(_) => Dtype::F16,
            FeatureRowsMut::Full(_) => Dtype::F32,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            FeatureRowsMut::Half(v) => v.len(),
            FeatureRowsMut::Full(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies packed values from `src` without changing representation (the
    /// shared-memory copy stage: same dtype in, same dtype out).
    ///
    /// # Panics
    ///
    /// Panics if the dtypes differ or the lengths mismatch.
    pub fn copy_from(&mut self, src: FeatureRows<'_>) {
        match (self, src) {
            (FeatureRowsMut::Half(d), FeatureRows::Half(s)) => d.copy_from_slice(s),
            (FeatureRowsMut::Full(d), FeatureRows::Full(s)) => d.copy_from_slice(s),
            _ => panic!("feature copy across dtypes (staging buffers must share the store's dtype)"),
        }
    }
}

/// A dense `num_nodes × dim` feature matrix in packed [`Dtype::F16`] or
/// [`Dtype::F32`] storage.
///
/// # Examples
///
/// ```
/// use salient_graph::FeatureMatrix;
///
/// let f = FeatureMatrix::from_f32(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(f.dim(), 3);
/// let row = f.row_f32(1);
/// assert_eq!(row, vec![4.0, 5.0, 6.0]);
/// ```
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    data: FeatureSlab,
    num_nodes: usize,
    dim: usize,
}

impl FeatureMatrix {
    /// Quantizes an `f32` buffer into half-precision storage (the paper's
    /// default host layout). Use [`FeatureMatrix::from_f32_dtype`] to pick
    /// the dtype explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_nodes * dim`.
    pub fn from_f32(num_nodes: usize, dim: usize, values: &[f32]) -> Self {
        Self::from_f32_dtype(Dtype::F16, num_nodes, dim, values)
    }

    /// Packs an `f32` buffer into storage of the given dtype.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_nodes * dim`.
    pub fn from_f32_dtype(dtype: Dtype, num_nodes: usize, dim: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), num_nodes * dim, "feature buffer size mismatch");
        FeatureMatrix {
            data: FeatureSlab::from_f32(dtype, values),
            num_nodes,
            dim,
        }
    }

    /// Wraps an existing half-precision buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_nodes * dim`.
    pub fn from_halves(num_nodes: usize, dim: usize, values: Vec<F16>) -> Self {
        assert_eq!(values.len(), num_nodes * dim, "feature buffer size mismatch");
        FeatureMatrix {
            data: FeatureSlab::Half(values),
            num_nodes,
            dim,
        }
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Feature dimensionality (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The storage dtype.
    pub fn dtype(&self) -> Dtype {
        self.data.dtype()
    }

    /// The packed backing storage.
    pub fn slab(&self) -> &FeatureSlab {
        &self.data
    }

    /// Bytes occupied by the feature storage.
    pub fn memory_bytes(&self) -> usize {
        self.data.bytes()
    }

    /// The packed row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn row(&self, v: u32) -> FeatureRows<'_> {
        let v = v as usize;
        assert!(v < self.num_nodes, "node {v} out of range");
        self.data.view(v * self.dim, self.dim)
    }

    /// Row `v` widened to `f32`.
    pub fn row_f32(&self, v: u32) -> Vec<f32> {
        self.row(v).to_f32_vec()
    }

    /// Serially slices the rows `ids` into `out` at the matrix's own dtype —
    /// the exact data-movement kernel of the paper's batch preparation (a
    /// half-stored matrix moves 2 bytes per value here, which is the whole
    /// point of the layout).
    ///
    /// The kernel is deliberately *serial*: SALIENT's batch-prep threads each
    /// run a serial slice to keep cache locality and avoid inter-thread
    /// contention (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != ids.len() * dim`, the dtypes differ, or any id
    /// is out of range.
    pub fn slice_into(&self, ids: &[u32], out: FeatureRowsMut<'_>) {
        assert_eq!(out.len(), ids.len() * self.dim, "slice output size mismatch");
        let dim = self.dim;
        match (&self.data, out) {
            (FeatureSlab::Half(src), FeatureRowsMut::Half(dst)) => {
                for (i, &v) in ids.iter().enumerate() {
                    let v = v as usize;
                    assert!(v < self.num_nodes, "node {v} out of range");
                    dst[i * dim..(i + 1) * dim].copy_from_slice(&src[v * dim..(v + 1) * dim]);
                }
            }
            (FeatureSlab::Full(src), FeatureRowsMut::Full(dst)) => {
                for (i, &v) in ids.iter().enumerate() {
                    let v = v as usize;
                    assert!(v < self.num_nodes, "node {v} out of range");
                    dst[i * dim..(i + 1) * dim].copy_from_slice(&src[v * dim..(v + 1) * dim]);
                }
            }
            // lint: allow(panic-reachability, documented dtype contract (# Panics); a mismatch is a wiring bug caught on the first batch, not a runtime fault)
            _ => panic!("slice output dtype must match the feature store"),
        }
    }

    /// Slices rows and widens to an `f32` [`Tensor`] in one pass (used by
    /// eval and the gather-style training paths after the "transfer").
    /// Dispatches to the parallel gather kernels: the fused f16 gather for
    /// half storage, the plain row gather for full storage.
    pub fn gather_f32(&self, ids: &[u32]) -> Tensor {
        let out = match &self.data {
            FeatureSlab::Half(v) => kernels::gather_rows_forward_f16(v, self.dim, ids),
            FeatureSlab::Full(v) => kernels::gather_rows_forward(v, self.dim, ids),
        };
        Tensor::from_vec(out, [ids.len(), self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_rows() {
        let f = FeatureMatrix::from_f32(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(f.row_f32(0), vec![1.0, 2.0]);
        assert_eq!(f.row_f32(2), vec![5.0, 6.0]);
        assert_eq!(f.dtype(), Dtype::F16);
        assert_eq!(f.memory_bytes(), 12);
    }

    #[test]
    fn full_precision_store_doubles_bytes() {
        let vals: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let half = FeatureMatrix::from_f32_dtype(Dtype::F16, 3, 2, &vals);
        let full = FeatureMatrix::from_f32_dtype(Dtype::F32, 3, 2, &vals);
        assert_eq!(full.dtype(), Dtype::F32);
        assert_eq!(full.memory_bytes(), 2 * half.memory_bytes());
        assert_eq!(full.row_f32(1), vec![2.0, 3.0]);
        // Same representable values ⇒ rows compare equal across dtypes.
        assert_eq!(full.row(2), half.row(2));
    }

    #[test]
    fn slice_into_gathers_rows() {
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for dtype in [Dtype::F16, Dtype::F32] {
            let f = FeatureMatrix::from_f32_dtype(dtype, 3, 2, &vals);
            let mut out = FeatureSlab::new(dtype, 4);
            f.slice_into(&[2, 0], out.rows_mut());
            assert_eq!(out.rows().to_f32_vec(), vec![5.0, 6.0, 1.0, 2.0]);
            assert_eq!(out.bytes(), 4 * dtype.size_of());
        }
    }

    #[test]
    fn gather_f32_matches_slice() {
        let vals: Vec<f32> = (0..12).map(|i| i as f32).collect();
        for dtype in [Dtype::F16, Dtype::F32] {
            let f = FeatureMatrix::from_f32_dtype(dtype, 4, 3, &vals);
            let t = f.gather_f32(&[1, 3]);
            assert_eq!(t.shape().dims(), &[2, 3]);
            assert_eq!(t.data(), &[3.0, 4.0, 5.0, 9.0, 10.0, 11.0]);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn slice_into_checks_output_len() {
        let f = FeatureMatrix::from_f32(2, 2, &[0.0; 4]);
        let mut out = FeatureSlab::new(Dtype::F16, 3);
        f.slice_into(&[0], out.rows_mut());
    }

    #[test]
    #[should_panic(expected = "dtype must match")]
    fn slice_into_checks_dtype() {
        let f = FeatureMatrix::from_f32(2, 2, &[0.0; 4]);
        let mut out = FeatureSlab::new(Dtype::F32, 2);
        f.slice_into(&[0], out.rows_mut());
    }

    #[test]
    fn quantization_error_is_half_precision() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32) * 0.3117 - 15.0).collect();
        let f = FeatureMatrix::from_f32(10, 10, &xs);
        for (i, &x) in xs.iter().enumerate() {
            let got = f.row_f32((i / 10) as u32)[i % 10];
            assert!((got - x).abs() <= x.abs() * 1e-3 + 1e-3);
        }
    }

    #[test]
    fn slab_widen_and_copy_round_trip() {
        let vals: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        for dtype in [Dtype::F16, Dtype::F32] {
            let slab = FeatureSlab::from_f32(dtype, &vals);
            let mut wide = vec![0.0f32; slab.len()];
            slab.widen_into(&mut wide);
            assert_eq!(wide, vals);
            let mut copy = FeatureSlab::new(dtype, slab.len());
            copy.rows_mut().copy_from(slab.rows());
            assert_eq!(copy.rows(), slab.rows());
        }
    }
}
