//! Node feature storage in host memory.
//!
//! Features are stored row-major in IEEE binary16, exactly as the paper's
//! tuned baseline does ("half-precision floating point for feature vectors in
//! host memory to reduce bandwidth pressure in slicing and CPU-to-GPU data
//! transfers", §3). Slicing therefore moves 2 bytes per value and the
//! (simulated) device widens to `f32` after transfer.

use salient_tensor::{F16, Tensor};

/// A dense `num_nodes × dim` feature matrix stored as binary16.
///
/// # Examples
///
/// ```
/// use salient_graph::FeatureMatrix;
///
/// let f = FeatureMatrix::from_f32(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(f.dim(), 3);
/// let row = f.row_f32(1);
/// assert_eq!(row, vec![4.0, 5.0, 6.0]);
/// ```
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    data: Vec<F16>,
    num_nodes: usize,
    dim: usize,
}

impl FeatureMatrix {
    /// Quantizes an `f32` buffer into half-precision storage.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_nodes * dim`.
    pub fn from_f32(num_nodes: usize, dim: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), num_nodes * dim, "feature buffer size mismatch");
        FeatureMatrix {
            data: salient_tensor::quantize(values),
            num_nodes,
            dim,
        }
    }

    /// Wraps an existing half-precision buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_nodes * dim`.
    pub fn from_halves(num_nodes: usize, dim: usize, values: Vec<F16>) -> Self {
        assert_eq!(values.len(), num_nodes * dim, "feature buffer size mismatch");
        FeatureMatrix {
            data: values,
            num_nodes,
            dim,
        }
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Feature dimensionality (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw half-precision buffer.
    pub fn data(&self) -> &[F16] {
        &self.data
    }

    /// Bytes occupied by the feature storage.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<F16>()
    }

    /// The half-precision row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn row(&self, v: u32) -> &[F16] {
        let v = v as usize;
        assert!(v < self.num_nodes, "node {v} out of range");
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Row `v` widened to `f32`.
    pub fn row_f32(&self, v: u32) -> Vec<f32> {
        self.row(v).iter().map(|h| h.to_f32()).collect()
    }

    /// Serially slices the rows `ids` into `out` (half precision, the exact
    /// data-movement kernel of the paper's batch preparation).
    ///
    /// The kernel is deliberately *serial*: SALIENT's batch-prep threads each
    /// run a serial slice to keep cache locality and avoid inter-thread
    /// contention (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != ids.len() * dim` or any id is out of range.
    pub fn slice_into(&self, ids: &[u32], out: &mut [F16]) {
        assert_eq!(out.len(), ids.len() * self.dim, "slice output size mismatch");
        for (i, &v) in ids.iter().enumerate() {
            let row = self.row(v);
            out[i * self.dim..(i + 1) * self.dim].copy_from_slice(row);
        }
    }

    /// Slices rows and widens to an `f32` [`Tensor`] in one pass (used by the
    /// real-execution training path after the "transfer").
    pub fn gather_f32(&self, ids: &[u32]) -> Tensor {
        let mut out = vec![0.0f32; ids.len() * self.dim];
        for (i, &v) in ids.iter().enumerate() {
            for (o, h) in out[i * self.dim..(i + 1) * self.dim]
                .iter_mut()
                .zip(self.row(v).iter())
            {
                *o = h.to_f32();
            }
        }
        Tensor::from_vec(out, [ids.len(), self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_rows() {
        let f = FeatureMatrix::from_f32(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(f.row_f32(0), vec![1.0, 2.0]);
        assert_eq!(f.row_f32(2), vec![5.0, 6.0]);
        assert_eq!(f.memory_bytes(), 12);
    }

    #[test]
    fn slice_into_gathers_rows() {
        let f = FeatureMatrix::from_f32(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![F16::ZERO; 4];
        f.slice_into(&[2, 0], &mut out);
        let widened: Vec<f32> = out.iter().map(|h| h.to_f32()).collect();
        assert_eq!(widened, vec![5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn gather_f32_matches_slice() {
        let f = FeatureMatrix::from_f32(4, 3, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let t = f.gather_f32(&[1, 3]);
        assert_eq!(t.shape().dims(), &[2, 3]);
        assert_eq!(t.data(), &[3.0, 4.0, 5.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn slice_into_checks_output_len() {
        let f = FeatureMatrix::from_f32(2, 2, &[0.0; 4]);
        let mut out = vec![F16::ZERO; 3];
        f.slice_into(&[0], &mut out);
    }

    #[test]
    fn quantization_error_is_half_precision() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32) * 0.3117 - 15.0).collect();
        let f = FeatureMatrix::from_f32(10, 10, &xs);
        for (i, &x) in xs.iter().enumerate() {
            let got = f.row_f32((i / 10) as u32)[i % 10];
            assert!((got - x).abs() <= x.abs() * 1e-3 + 1e-3);
        }
    }
}
