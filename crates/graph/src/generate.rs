//! Synthetic random-graph generators with heavy-tailed degree distributions.
//!
//! The OGB benchmark graphs (citation and co-purchase networks) have
//! power-law degree distributions; neighborhood-expansion cost, MFG size and
//! transfer volume all depend on that tail. The generators here reproduce it:
//! a community-structured Chung–Lu model (used for the label-bearing
//! datasets) and an R-MAT generator (used for stress tests).

use crate::csr::{CsrGraph, NodeId};
use salient_tensor::rng::Rng;

/// Draws `n` expected-degree weights from a discrete Pareto (power-law) with
/// exponent `alpha`, minimum `d_min` and cap `d_max`.
///
/// # Panics
///
/// Panics if `d_min == 0`, `d_max < d_min`, or `alpha <= 1`.
pub fn power_law_weights(
    n: usize,
    alpha: f64,
    d_min: f64,
    d_max: f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert!(d_min > 0.0 && d_max >= d_min, "invalid degree bounds");
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    // Inverse-CDF sampling of a bounded Pareto.
    let a = 1.0 - alpha;
    let lo = d_min.powf(a);
    let hi = d_max.powf(a);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            (lo + u * (hi - lo)).powf(1.0 / a)
        })
        .collect()
}

/// Parameters for the community Chung–Lu generator.
#[derive(Clone, Debug)]
pub struct ChungLuConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of planted communities (also the label count downstream).
    pub num_communities: usize,
    /// Power-law exponent of the expected-degree distribution.
    pub alpha: f64,
    /// Minimum expected degree.
    pub d_min: f64,
    /// Maximum expected degree.
    pub d_max: f64,
    /// Probability that an edge stays inside its source's community.
    pub p_intra: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChungLuConfig {
    fn default() -> Self {
        ChungLuConfig {
            num_nodes: 10_000,
            num_communities: 16,
            alpha: 2.2,
            d_min: 3.0,
            d_max: 500.0,
            p_intra: 0.85,
            seed: 0,
        }
    }
}

/// Result of the community Chung–Lu generator: the symmetrized graph plus
/// each node's community assignment.
#[derive(Clone, Debug)]
pub struct CommunityGraph {
    /// Undirected graph with sorted, deduplicated adjacency lists.
    pub graph: CsrGraph,
    /// `community[v]` is the planted community of node `v`.
    pub community: Vec<u32>,
}

/// Generates a community-structured Chung–Lu graph.
///
/// Node `v` receives an expected degree `w_v` from a bounded power law.
/// Each of the ~`Σw/2` edges picks its source proportional to `w`, then its
/// destination proportional to `w` restricted to the source's community with
/// probability `p_intra` (and to the whole graph otherwise). High-weight hub
/// nodes therefore accumulate disproportionally many cross-community edges —
/// the property behind Figure 3's "high-degree nodes are predicted less
/// accurately".
///
/// # Panics
///
/// Panics if `num_communities == 0` or `num_nodes == 0`.
pub fn chung_lu_communities(cfg: &ChungLuConfig) -> CommunityGraph {
    assert!(cfg.num_nodes > 0, "empty graph requested");
    assert!(cfg.num_communities > 0, "need at least one community");
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(cfg.seed);
    let n = cfg.num_nodes;
    let weights = power_law_weights(n, cfg.alpha, cfg.d_min, cfg.d_max, &mut rng);

    // Round-robin community assignment keeps communities balanced while the
    // node order is random by construction of the weights.
    let community: Vec<u32> = (0..n).map(|v| (v % cfg.num_communities) as u32).collect();

    // Cumulative weights: global and per community (over the community's
    // member list), enabling O(log n) proportional sampling.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.num_communities];
    for v in 0..n {
        members[community[v] as usize].push(v as NodeId);
    }
    let build_cum = |ids: &[NodeId]| -> Vec<f64> {
        let mut cum = Vec::with_capacity(ids.len());
        let mut acc = 0.0;
        for &v in ids {
            acc += weights[v as usize];
            cum.push(acc);
        }
        cum
    };
    let all_ids: Vec<NodeId> = (0..n as NodeId).collect();
    let global_cum = build_cum(&all_ids);
    let member_cum: Vec<Vec<f64>> = members.iter().map(|m| build_cum(m)).collect();

    let sample_from = |cum: &[f64], ids: &[NodeId], rng: &mut salient_tensor::rng::StdRng| -> NodeId {
        let total = *cum.last().unwrap();
        let x: f64 = rng.random::<f64>() * total;
        let i = cum.partition_point(|&c| c < x).min(ids.len() - 1);
        ids[i]
    };

    let total_weight: f64 = weights.iter().sum();
    let num_edges = (total_weight / 2.0).round() as usize;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = sample_from(&global_cum, &all_ids, &mut rng);
        let c = community[u as usize] as usize;
        let v = if rng.random::<f64>() < cfg.p_intra && !members[c].is_empty() {
            sample_from(&member_cum[c], &members[c], &mut rng)
        } else {
            sample_from(&global_cum, &all_ids, &mut rng)
        };
        if u != v {
            edges.push((u, v));
        }
    }
    let graph = CsrGraph::from_edges(n, &edges).to_undirected();
    CommunityGraph { graph, community }
}

/// Parameters for the R-MAT generator (Chakrabarti et al.).
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of nodes.
    pub scale: u32,
    /// Average directed edges per node.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
        }
    }
}

/// Generates an R-MAT graph (directed, may contain duplicates), the standard
/// skewed-degree stress-test topology (Graph500).
///
/// # Panics
///
/// Panics if the quadrant probabilities exceed 1.
pub fn rmat(cfg: &RmatConfig) -> CsrGraph {
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(d >= -1e-9, "quadrant probabilities exceed 1");
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(cfg.seed);
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..cfg.scale {
            let r: f64 = rng.random();
            let (du, dv) = if r < cfg.a {
                (0, 0)
            } else if r < cfg.a + cfg.b {
                (0, 1)
            } else if r < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Generates an Erdős–Rényi `G(n, m)` graph (directed, duplicates possible).
pub fn erdos_renyi(num_nodes: usize, num_edges: usize, seed: u64) -> CsrGraph {
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(seed);
    let edges: Vec<(NodeId, NodeId)> = (0..num_edges)
        .map(|_| {
            (
                rng.random_range(0..num_nodes as NodeId),
                rng.random_range(0..num_nodes as NodeId),
            )
        })
        .filter(|(u, v)| u != v)
        .collect();
    CsrGraph::from_edges(num_nodes, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let w = power_law_weights(10_000, 2.5, 2.0, 100.0, &mut rng);
        assert!(w.iter().all(|&x| (2.0..=100.0).contains(&x)));
        // Heavy tail: the max should be much larger than the median.
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sorted[9_999] > 4.0 * sorted[5_000]);
    }

    #[test]
    fn chung_lu_produces_undirected_graph_with_communities() {
        let cfg = ChungLuConfig {
            num_nodes: 2_000,
            num_communities: 8,
            seed: 42,
            ..Default::default()
        };
        let cg = chung_lu_communities(&cfg);
        assert_eq!(cg.graph.num_nodes(), 2_000);
        assert!(cg.graph.is_undirected());
        assert!(cg.community.iter().all(|&c| c < 8));
        // Average degree should be in the ballpark of the weight mean.
        assert!(cg.graph.avg_degree() > 2.0, "avg {}", cg.graph.avg_degree());
    }

    #[test]
    fn chung_lu_homophily() {
        let cfg = ChungLuConfig {
            num_nodes: 4_000,
            num_communities: 4,
            p_intra: 0.9,
            seed: 7,
            ..Default::default()
        };
        let cg = chung_lu_communities(&cfg);
        let mut intra = 0usize;
        let mut total = 0usize;
        for u in 0..cg.graph.num_nodes() as NodeId {
            for &v in cg.graph.neighbors(u) {
                total += 1;
                if cg.community[u as usize] == cg.community[v as usize] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.6, "intra-community edge fraction {frac} too low");
    }

    #[test]
    fn chung_lu_is_deterministic_per_seed() {
        let cfg = ChungLuConfig {
            num_nodes: 500,
            seed: 9,
            ..Default::default()
        };
        let a = chung_lu_communities(&cfg);
        let b = chung_lu_communities(&cfg);
        assert_eq!(a.graph.indices(), b.graph.indices());
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(&RmatConfig {
            scale: 10,
            edge_factor: 8,
            seed: 3,
            ..Default::default()
        });
        assert_eq!(g.num_nodes(), 1024);
        let max_deg = (0..1024).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg > 8 * 4,
            "R-MAT should produce hubs; max degree {max_deg}"
        );
    }

    #[test]
    fn erdos_renyi_size() {
        let g = erdos_renyi(100, 500, 1);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() <= 500 && g.num_edges() > 450);
    }
}
