//! Planted label model: class-prototype features with controllable
//! signal-to-noise ratio.
//!
//! Real OGB labels cannot be downloaded here, so the datasets plant a
//! recoverable classification task: each node's label is its Chung–Lu
//! community, and its feature vector is a *noisy* class prototype. A single
//! node's feature is too noisy to classify reliably, but averaging a sampled
//! neighborhood (mostly same-community under homophily) denoises it — so a
//! GNN beats a pointwise classifier, accuracy improves with inference fanout,
//! and saturates once the sample mean stabilizes. This reproduces the
//! *mechanics* behind Table 6 and Figure 3.

use salient_tensor::rng::Rng;
use salient_tensor::Shape;

/// Configuration of the planted feature model.
#[derive(Clone, Debug)]
pub struct PlantedFeatureConfig {
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes (must match the community count of the graph).
    pub num_classes: usize,
    /// Scale of the class-prototype component in each node feature.
    pub signal: f32,
    /// Standard deviation of the per-node Gaussian noise.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedFeatureConfig {
    fn default() -> Self {
        PlantedFeatureConfig {
            dim: 32,
            num_classes: 16,
            signal: 0.4,
            noise: 1.0,
            seed: 0,
        }
    }
}

fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generates `num_nodes × dim` planted features for the given labels.
///
/// Returns a flat row-major `f32` buffer.
///
/// # Panics
///
/// Panics if a label is `>= num_classes`.
pub fn planted_features(labels: &[u32], cfg: &PlantedFeatureConfig) -> Vec<f32> {
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(cfg.seed);
    // Random unit prototypes, one per class.
    let mut prototypes = vec![0.0f32; cfg.num_classes * cfg.dim];
    for p in prototypes.chunks_mut(cfg.dim) {
        let mut norm = 0.0f32;
        for x in p.iter_mut() {
            *x = gaussian(&mut rng);
            norm += *x * *x;
        }
        let inv = 1.0 / norm.sqrt().max(1e-6);
        for x in p.iter_mut() {
            *x *= inv;
        }
    }
    let mut out = vec![0.0f32; labels.len() * cfg.dim];
    for (v, &c) in labels.iter().enumerate() {
        assert!(
            (c as usize) < cfg.num_classes,
            "label {c} out of range for {} classes",
            cfg.num_classes
        );
        let proto = &prototypes[c as usize * cfg.dim..(c as usize + 1) * cfg.dim];
        for (o, &p) in out[v * cfg.dim..(v + 1) * cfg.dim].iter_mut().zip(proto) {
            *o = cfg.signal * p + cfg.noise * gaussian(&mut rng) / (cfg.dim as f32).sqrt();
        }
    }
    out
}

/// A linear readout bound on the planted task: classify each node by the
/// nearest class prototype using *only its own feature*. Used in tests to
/// verify that the pointwise problem is genuinely hard (so neighborhood
/// aggregation has something to add).
pub fn pointwise_prototype_accuracy(
    features: &[f32],
    labels: &[u32],
    cfg: &PlantedFeatureConfig,
) -> f64 {
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(cfg.seed);
    // Re-derive the same prototypes (same seed, same draw order).
    let mut prototypes = vec![0.0f32; cfg.num_classes * cfg.dim];
    for p in prototypes.chunks_mut(cfg.dim) {
        let mut norm = 0.0f32;
        for x in p.iter_mut() {
            *x = gaussian(&mut rng);
            norm += *x * *x;
        }
        let inv = 1.0 / norm.sqrt().max(1e-6);
        for x in p.iter_mut() {
            *x *= inv;
        }
    }
    let mut correct = 0usize;
    for (v, &c) in labels.iter().enumerate() {
        let x = &features[v * cfg.dim..(v + 1) * cfg.dim];
        let mut best = 0usize;
        let mut best_dot = f32::NEG_INFINITY;
        for k in 0..cfg.num_classes {
            let p = &prototypes[k * cfg.dim..(k + 1) * cfg.dim];
            let dot: f32 = x.iter().zip(p).map(|(a, b)| a * b).sum();
            if dot > best_dot {
                best_dot = dot;
                best = k;
            }
        }
        if best == c as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len().max(1) as f64
}

/// Sanity helper: the shape of the feature tensor produced by
/// [`planted_features`].
pub fn feature_shape(num_nodes: usize, cfg: &PlantedFeatureConfig) -> Shape {
    Shape::matrix(num_nodes, cfg.dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_have_expected_size() {
        let labels = vec![0u32, 1, 2, 0];
        let cfg = PlantedFeatureConfig {
            num_classes: 3,
            dim: 8,
            ..Default::default()
        };
        let f = planted_features(&labels, &cfg);
        assert_eq!(f.len(), 4 * 8);
        assert_eq!(feature_shape(4, &cfg).dims(), &[4, 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let cfg = PlantedFeatureConfig {
            num_classes: 2,
            ..Default::default()
        };
        planted_features(&[5], &cfg);
    }

    #[test]
    fn task_is_hard_pointwise_but_not_impossible() {
        let n = 4_000;
        let cfg = PlantedFeatureConfig {
            num_classes: 8,
            dim: 32,
            signal: 0.4,
            noise: 1.0,
            seed: 11,
        };
        let labels: Vec<u32> = (0..n).map(|v| (v % 8) as u32).collect();
        let f = planted_features(&labels, &cfg);
        let acc = pointwise_prototype_accuracy(&f, &labels, &cfg);
        let chance = 1.0 / 8.0;
        assert!(acc > chance + 0.05, "signal should be detectable, acc {acc}");
        assert!(acc < 0.95, "pointwise task must stay noisy, acc {acc}");
    }

    #[test]
    fn noise_zero_is_perfectly_separable() {
        let cfg = PlantedFeatureConfig {
            num_classes: 4,
            dim: 16,
            signal: 1.0,
            noise: 0.0,
            seed: 3,
        };
        let labels: Vec<u32> = (0..100).map(|v| (v % 4) as u32).collect();
        let f = planted_features(&labels, &cfg);
        let acc = pointwise_prototype_accuracy(&f, &labels, &cfg);
        assert!(acc > 0.99, "noise-free task should be trivial, acc {acc}");
    }
}
