//! # salient-graph
//!
//! Graph storage and synthetic datasets for the SALIENT reproduction: CSR
//! graphs (the input format of the neighborhood sampler), heavy-tailed random
//! graph generators, dtype-aware packed feature storage (f16 by default),
//! planted-label tasks, and the published statistics of the paper's OGB
//! benchmarks.
//!
//! # Example
//!
//! ```
//! use salient_graph::DatasetConfig;
//!
//! let ds = DatasetConfig::tiny(0).build();
//! assert!(ds.graph.is_undirected());
//! assert_eq!(ds.features.num_nodes(), ds.graph.num_nodes());
//! ```

#![warn(missing_docs)]

mod csr;
mod datasets;
mod features;
mod split;

pub mod generate;
pub mod labels;
pub mod partition;

pub use csr::{CsrGraph, NodeId};
pub use datasets::{Dataset, DatasetConfig, DatasetStats};
pub use features::{FeatureMatrix, FeatureRows, FeatureRowsMut, FeatureSlab};
pub use split::Splits;
