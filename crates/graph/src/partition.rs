//! Graph partitioning for distributed training (the paper's §8 future-work
//! direction: "distributing the graph and node data … graph partitioning
//! will inevitably be invoked, but the objective may consider not only edge
//! cut and load balance but also the cost of multi-hop neighborhood
//! sampling").
//!
//! Two partitioners are provided — random (hash) partitioning and a
//! BFS-grown balanced partitioner (a cheap stand-in for METIS) — together
//! with the two metrics §8 calls out: edge cut and the *multi-hop sampling
//! communication fraction* (how many sampled feature rows live on a remote
//! partition).

use crate::csr::{CsrGraph, NodeId};
use salient_tensor::rng::SliceRandom;

/// A node-to-partition assignment.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// `part[v]` = partition index of node `v`.
    pub part: Vec<u32>,
    /// Number of partitions.
    pub k: usize,
}

impl Partitioning {
    /// Validates the assignment against a graph.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree or a partition id is out of range.
    pub fn validate(&self, graph: &CsrGraph) {
        assert_eq!(self.part.len(), graph.num_nodes(), "one entry per node");
        assert!(
            self.part.iter().all(|&p| (p as usize) < self.k),
            "partition id out of range"
        );
    }

    /// Number of nodes per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.part {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Load imbalance: `max_size / ideal_size` (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.part.len() as f64 / self.k as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }

    /// Fraction of edges whose endpoints land in different partitions.
    pub fn edge_cut(&self, graph: &CsrGraph) -> f64 {
        let mut cut = 0usize;
        let mut total = 0usize;
        for v in 0..graph.num_nodes() as NodeId {
            for &u in graph.neighbors(v) {
                total += 1;
                if self.part[v as usize] != self.part[u as usize] {
                    cut += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }
}

/// Random (hash) partitioning: the DistDGL-default baseline.
pub fn random_partition(graph: &CsrGraph, k: usize, seed: u64) -> Partitioning {
    assert!(k > 0, "need at least one partition");
    let n = graph.num_nodes();
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let mut part = vec![0u32; n];
    for (rank, &v) in ids.iter().enumerate() {
        part[v as usize] = (rank % k) as u32;
    }
    Partitioning { part, k }
}

/// Balanced BFS-grown partitioning: repeatedly grow a partition by breadth-
/// first search from an unassigned seed until it reaches `n/k` nodes. Keeps
/// partitions connected-ish and locality-preserving — a cheap approximation
/// of multilevel partitioners like METIS.
pub fn bfs_partition(graph: &CsrGraph, k: usize, seed: u64) -> Partitioning {
    assert!(k > 0, "need at least one partition");
    let n = graph.num_nodes();
    let target = n.div_ceil(k);
    let mut part = vec![u32::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut cursor = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for p in 0..k as u32 {
        let mut grown = 0usize;
        queue.clear();
        while grown < target {
            if queue.is_empty() {
                // Find a fresh unassigned seed.
                while cursor < n && part[order[cursor] as usize] != u32::MAX {
                    cursor += 1;
                }
                if cursor >= n {
                    break;
                }
                queue.push_back(order[cursor]);
                part[order[cursor] as usize] = p;
                grown += 1;
            }
            let Some(v) = queue.pop_front() else { continue };
            for &u in graph.neighbors(v) {
                if grown >= target {
                    break;
                }
                if part[u as usize] == u32::MAX {
                    part[u as usize] = p;
                    grown += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    // Any stragglers (possible with ceil rounding) go to the last partition.
    for p in &mut part {
        if *p == u32::MAX {
            *p = (k - 1) as u32;
        }
    }
    Partitioning { part, k }
}

/// Measures the remote fraction of a sampled MFG's feature rows under a
/// partitioning: given the sampled node list and the partition that owns
/// the batch, how many rows must be fetched across the network?
pub fn remote_fraction(partitioning: &Partitioning, home: u32, node_ids: &[NodeId]) -> f64 {
    if node_ids.is_empty() {
        return 0.0;
    }
    let remote = node_ids
        .iter()
        .filter(|&&v| partitioning.part[v as usize] != home)
        .count();
    remote as f64 / node_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetConfig;

    #[test]
    fn random_partition_is_balanced() {
        let ds = DatasetConfig::tiny(90).build();
        let p = random_partition(&ds.graph, 4, 0);
        p.validate(&ds.graph);
        assert!(p.imbalance() < 1.05, "imbalance {}", p.imbalance());
    }

    #[test]
    fn bfs_partition_is_balanced_and_cuts_fewer_edges() {
        let ds = DatasetConfig::tiny(91).build();
        let rnd = random_partition(&ds.graph, 4, 0);
        let bfs = bfs_partition(&ds.graph, 4, 0);
        bfs.validate(&ds.graph);
        assert!(bfs.imbalance() < 1.25, "imbalance {}", bfs.imbalance());
        let (rc, bc) = (rnd.edge_cut(&ds.graph), bfs.edge_cut(&ds.graph));
        assert!(
            bc < rc,
            "BFS partitioning should cut fewer edges: {bc:.3} vs random {rc:.3}"
        );
    }

    #[test]
    fn remote_fraction_bounds() {
        let ds = DatasetConfig::tiny(92).build();
        let p = random_partition(&ds.graph, 4, 1);
        let nodes: Vec<u32> = (0..100).collect();
        let f = remote_fraction(&p, 0, &nodes);
        assert!((0.0..=1.0).contains(&f));
        // Random 4-way partitioning: ~3/4 of arbitrary nodes are remote.
        assert!((0.55..0.95).contains(&f), "got {f}");
        assert_eq!(remote_fraction(&p, 0, &[]), 0.0);
    }

    #[test]
    fn single_partition_has_no_cut() {
        let ds = DatasetConfig::tiny(93).build();
        let p = bfs_partition(&ds.graph, 1, 0);
        assert_eq!(p.edge_cut(&ds.graph), 0.0);
        assert_eq!(p.sizes(), vec![ds.graph.num_nodes()]);
    }
}
