//! Train / validation / test node splits.

use crate::csr::NodeId;
use salient_tensor::rng::SliceRandom;

/// Disjoint train / validation / test node sets.
///
/// Fractions need not cover every node: ogbn-papers100M labels only ~1.4 % of
/// its 111 M nodes, and the split reflects that.
#[derive(Clone, Debug)]
pub struct Splits {
    /// Training node ids.
    pub train: Vec<NodeId>,
    /// Validation node ids.
    pub val: Vec<NodeId>,
    /// Test node ids.
    pub test: Vec<NodeId>,
}

impl Splits {
    /// Randomly partitions `num_nodes` nodes with the given fractions
    /// (remaining nodes are unlabeled).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum to more than 1.
    pub fn random(num_nodes: usize, frac_train: f64, frac_val: f64, frac_test: f64, seed: u64) -> Self {
        assert!(
            frac_train >= 0.0 && frac_val >= 0.0 && frac_test >= 0.0,
            "negative split fraction"
        );
        assert!(
            frac_train + frac_val + frac_test <= 1.0 + 1e-9,
            "split fractions sum to more than 1"
        );
        let mut ids: Vec<NodeId> = (0..num_nodes as NodeId).collect();
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        let n_train = (num_nodes as f64 * frac_train).round() as usize;
        let n_val = (num_nodes as f64 * frac_val).round() as usize;
        let n_test = (num_nodes as f64 * frac_test).round() as usize;
        // lint: allow(panic-reachability, split fractions are validated to sum <= 1, so every prefix length is <= num_nodes)
        let train = ids[..n_train].to_vec();
        let val = ids[n_train..n_train + n_val].to_vec();
        let test = ids[n_train + n_val..(n_train + n_val + n_test).min(num_nodes)].to_vec();
        Splits { train, val, test }
    }

    /// Total number of labeled nodes.
    pub fn num_labeled(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Verifies the three sets are pairwise disjoint (test helper).
    pub fn is_disjoint(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.num_labeled());
        self.train
            .iter()
            .chain(self.val.iter())
            .chain(self.test.iter())
            .all(|&v| seen.insert(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_fractions() {
        let s = Splits::random(1000, 0.5, 0.2, 0.3, 0);
        assert_eq!(s.train.len(), 500);
        assert_eq!(s.val.len(), 200);
        assert_eq!(s.test.len(), 300);
        assert!(s.is_disjoint());
    }

    #[test]
    fn partial_labeling() {
        let s = Splits::random(10_000, 0.011, 0.001, 0.002, 1);
        assert_eq!(s.num_labeled(), 110 + 10 + 20);
        assert!(s.is_disjoint());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Splits::random(100, 0.5, 0.25, 0.25, 7);
        let b = Splits::random(100, 0.5, 0.25, 0.25, 7);
        assert_eq!(a.train, b.train);
        let c = Splits::random(100, 0.5, 0.25, 0.25, 8);
        assert_ne!(a.train, c.train);
    }

    #[test]
    #[should_panic(expected = "more than 1")]
    fn rejects_oversubscribed_split() {
        Splits::random(10, 0.8, 0.3, 0.2, 0);
    }
}
