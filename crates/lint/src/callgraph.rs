//! The cross-crate call graph over [`crate::parser`] output.
//!
//! Resolution is deliberately *approximate but biased sound* for the
//! reachability rules: a call that cannot be resolved contributes no
//! edge (std methods, closures), and an ambiguous call contributes an
//! edge to **every** plausible workspace target, so panic-reachability
//! over-reports rather than under-reports. Precision comes from three
//! locality tiers (same file → same crate → whole workspace) and a
//! std-method denylist: method names that shadow ubiquitous std methods
//! (`push`, `get`, `len`, …) only resolve through a literal
//! `self.…` receiver chain in the defining file, otherwise every
//! `Vec::push` in the workspace would appear to call every workspace
//! method of that name.

use crate::diag::json_escape;
use crate::parser::{Call, ParsedFile};
use std::collections::{HashMap, VecDeque};

/// Method names that collide with std-type methods: resolved only via a
/// `self.`-rooted receiver against the caller's own file.
const STD_METHODS: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "push",
    "pop", "insert", "remove", "contains", "contains_key", "iter",
    "iter_mut", "into_iter", "next", "collect", "map", "and_then", "filter",
    "fold", "extend", "clear", "resize", "fill", "take", "replace", "set",
    "load", "store", "swap", "fetch_add", "fetch_sub", "lock", "read",
    "write", "try_lock", "join", "spawn", "drain", "split_at", "chunks",
    "windows", "sort", "sort_by", "min", "max", "abs", "sqrt", "to_vec",
    "to_string", "to_owned", "as_ref", "as_mut", "as_slice", "as_str",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err",
    "is_some", "is_none", "is_ok", "is_err", "copied", "cloned",
    "enumerate", "zip", "rev", "position", "find", "any", "all", "count",
    "sum", "product", "push_back", "push_front", "pop_front", "pop_back",
    "entry", "or_insert", "starts_with", "ends_with", "trim", "split",
    "parse", "fmt", "drop", "first", "last", "retain", "truncate",
    "reserve", "with_capacity", "copy_from_slice", "clone_from_slice",
    "swap_remove", "min_by_key", "max_by_key", "flat_map", "flatten",
    "clamp", "rem_euclid", "saturating_sub", "saturating_add",
    "wrapping_add", "abs_diff", "start", "end",
];

/// One fn in the flattened workspace view.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// Index into the `ParsedFile` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
    /// Display key: `crate::module::Type::name`.
    pub key: String,
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<NodeInfo>,
    /// Adjacency (sorted, deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Nodes declared `// lint: entry(panic-reachability)`.
    pub entries: Vec<usize>,
}

/// Reachability from the declared entries: for each node,
/// `Some((entry, predecessor))` when reachable (`predecessor` is `None`
/// for the entries themselves).
pub struct Reach {
    pub from: Vec<Option<(usize, Option<usize>)>>,
}

fn display_key(pf: &ParsedFile, item: usize) -> String {
    let f = &pf.fns[item];
    let mut key = String::new();
    if !pf.krate.is_empty() {
        key.push_str(&pf.krate);
        key.push_str("::");
    }
    for m in &f.module {
        key.push_str(m);
        key.push_str("::");
    }
    if let Some(ty) = &f.impl_type {
        key.push_str(ty);
        key.push_str("::");
    }
    key.push_str(&f.name);
    key
}

/// Strips the `salient_` package prefix so `salient_graph::x` and a
/// `use salient_fault as fault` alias both resolve to the crate dir name.
fn normalize_crate(seg: &str) -> &str {
    seg.strip_prefix("salient_").unwrap_or(seg)
}

impl CallGraph {
    /// Builds nodes and edges for the whole workspace.
    pub fn build(parsed: &[ParsedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, pf) in parsed.iter().enumerate() {
            for (gi, _) in pf.fns.iter().enumerate() {
                nodes.push(NodeInfo { file: fi, item: gi, key: display_key(pf, gi) });
            }
        }
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (n, info) in nodes.iter().enumerate() {
            let f = &parsed[info.file].fns[info.item];
            by_name.entry(f.name.as_str()).or_default().push(n);
        }
        let mut entries = Vec::new();
        let mut edges = vec![Vec::new(); nodes.len()];
        for (n, info) in nodes.iter().enumerate() {
            let caller = &parsed[info.file].fns[info.item];
            if caller.entry && !caller.is_test {
                entries.push(n);
            }
            if caller.is_test {
                continue;
            }
            let mut targets = Vec::new();
            for call in &caller.calls {
                targets.extend(resolve(parsed, &nodes, &by_name, info, call));
            }
            targets.sort_unstable();
            targets.dedup();
            targets.retain(|&t| t != n);
            edges[n] = targets;
        }
        CallGraph { nodes, edges, entries }
    }

    /// BFS from the declared entries, remembering one predecessor per
    /// node so findings can print a concrete call path as evidence.
    pub fn reachability(&self) -> Reach {
        let mut from: Vec<Option<(usize, Option<usize>)>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &e in &self.entries {
            if from[e].is_none() {
                from[e] = Some((e, None));
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            let entry = match from[n] {
                Some((e, _)) => e,
                None => continue,
            };
            for &t in &self.edges[n] {
                if from[t].is_none() {
                    from[t] = Some((entry, Some(n)));
                    queue.push_back(t);
                }
            }
        }
        Reach { from }
    }

    /// The entry → … → `node` call path recorded by [`reachability`].
    pub fn path_to(&self, reach: &Reach, node: usize) -> Vec<usize> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some((_, Some(pred))) = reach.from[cur] {
            path.push(pred);
            cur = pred;
            if path.len() > self.nodes.len() {
                break; // defensive: malformed predecessor chain
            }
        }
        path.reverse();
        path
    }

    /// A human-readable `a → b → c` rendering of the evidence path,
    /// elided in the middle when long.
    pub fn path_display(&self, reach: &Reach, node: usize) -> String {
        let path = self.path_to(reach, node);
        let keys: Vec<&str> = path.iter().map(|&n| self.nodes[n].key.as_str()).collect();
        if keys.len() <= 5 {
            keys.join(" -> ")
        } else {
            format!(
                "{} -> {} -> ... -> {} -> {}",
                keys[0],
                keys[1],
                keys[keys.len() - 2],
                keys[keys.len() - 1]
            )
        }
    }
}

/// Resolves one call to its plausible workspace targets.
fn resolve(
    parsed: &[ParsedFile],
    nodes: &[NodeInfo],
    by_name: &HashMap<&str, Vec<usize>>,
    caller: &NodeInfo,
    call: &Call,
) -> Vec<usize> {
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let caller_fn = &parsed[caller.file].fns[caller.item];
    let live: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&n| !parsed[nodes[n].file].fns[nodes[n].item].is_test)
        .collect();
    let same_file = |n: &usize| nodes[*n].file == caller.file;
    let same_crate = |n: &usize| parsed[nodes[*n].file].krate == parsed[caller.file].krate;

    if call.method {
        let is_method =
            |n: &usize| parsed[nodes[*n].file].fns[nodes[*n].item].impl_type.is_some();
        let in_file: Vec<usize> =
            live.iter().copied().filter(|n| same_file(n) && is_method(n)).collect();
        if STD_METHODS.contains(&call.name.as_str()) {
            // Only a `self.…` receiver may pin a std-colliding name to a
            // method defined in the same file; anything else is std.
            return if call.recv_self { in_file } else { Vec::new() };
        }
        if !in_file.is_empty() {
            return in_file;
        }
        let in_crate: Vec<usize> =
            live.iter().copied().filter(|n| same_crate(n) && is_method(n)).collect();
        if !in_crate.is_empty() {
            return in_crate;
        }
        return live.iter().copied().filter(|n| is_method(n)).collect();
    }

    // Free / path-qualified call.
    let mut qual: Vec<&str> = call.qualifier.iter().map(|s| s.as_str()).collect();
    let crate_local = qual.first() == Some(&"crate");
    qual.retain(|s| *s != "crate" && *s != "super");
    // `Self::helper` means the caller's own impl type.
    if qual.last() == Some(&"Self") {
        match &caller_fn.impl_type {
            Some(ty) => {
                let ty = ty.clone();
                return live
                    .iter()
                    .copied()
                    .filter(|&n| {
                        same_crate(&n)
                            && parsed[nodes[n].file].fns[nodes[n].item].impl_type.as_deref()
                                == Some(ty.as_str())
                    })
                    .collect();
            }
            None => return Vec::new(),
        }
    }

    if qual.is_empty() {
        let is_free =
            |n: &usize| parsed[nodes[*n].file].fns[nodes[*n].item].impl_type.is_none();
        let tier = |pred: &dyn Fn(&usize) -> bool| -> Vec<usize> {
            live.iter().copied().filter(|n| pred(n) && is_free(n)).collect()
        };
        let in_file = tier(&same_file);
        if !in_file.is_empty() {
            return in_file;
        }
        if crate_local {
            return tier(&same_crate);
        }
        let in_crate = tier(&same_crate);
        if !in_crate.is_empty() {
            return in_crate;
        }
        return tier(&|_| true);
    }

    // Last qualifier segment names a type (`Foo::new`), a module
    // (`engine::sample_with`), or a crate (`fault::point`).
    let seg = qual[qual.len() - 1];
    let matches = |n: &usize| {
        let pf = &parsed[nodes[*n].file];
        let f = &pf.fns[nodes[*n].item];
        f.impl_type.as_deref() == Some(seg)
            || f.module.last().map(|m| m.as_str()) == Some(seg)
            || pf.krate == normalize_crate(seg)
    };
    let scoped: Vec<usize> = live
        .iter()
        .copied()
        .filter(|n| matches(n) && (!crate_local || same_crate(n)))
        .collect();
    let in_crate: Vec<usize> = scoped.iter().copied().filter(same_crate).collect();
    if !in_crate.is_empty() {
        return in_crate;
    }
    scoped
}

/// Renders the graph plus per-rule evidence as a JSON document (the
/// `salient-lint graph` payload, validated by `salient_trace::json`).
pub fn render_json(graph: &CallGraph, parsed: &[ParsedFile]) -> String {
    let reach = graph.reachability();
    let mut out = String::from("{\n  \"nodes\": [");
    for (n, info) in graph.nodes.iter().enumerate() {
        let pf = &parsed[info.file];
        let f = &pf.fns[info.item];
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\":{},\"key\":\"{}\",\"file\":\"{}\",\"line\":{},\"entry\":{},\"test\":{}}}",
            n,
            json_escape(&info.key),
            json_escape(&pf.path),
            f.line,
            f.entry,
            f.is_test
        ));
    }
    out.push_str("\n  ],\n  \"edges\": [");
    let mut first = true;
    for (n, targets) in graph.edges.iter().enumerate() {
        for &t in targets {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{n},{t}]"));
        }
    }
    out.push_str("],\n  \"entries\": [");
    for (i, &e) in graph.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_string());
    }
    out.push_str("],\n  \"reachable\": [");
    let mut first = true;
    for n in 0..graph.nodes.len() {
        if reach.from[n].is_none() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let path = graph.path_to(&reach, n);
        let path_str: Vec<String> = path.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!(
            "\n    {{\"id\":{},\"path\":[{}]}}",
            n,
            path_str.join(",")
        ));
    }
    out.push_str("\n  ],\n  \"regions\": [");
    let mut first = true;
    for pf in parsed {
        for r in &pf.regions {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"file\":\"{}\",\"line\":{},\"kind\":\"{}\",\"attached\":{}}}",
                json_escape(&pf.path),
                r.line,
                json_escape(&r.kind),
                r.body.is_some()
            ));
        }
    }
    let reachable_count = reach.from.iter().filter(|r| r.is_some()).count();
    out.push_str(&format!(
        "\n  ],\n  \"rules\": {{\"panic-reachability\":{{\"entries\":{},\"reachable\":{}}}}}\n}}",
        graph.entries.len(),
        reachable_count
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::source::{FileClass, SourceFile};

    fn graph_of(files: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(path, src)| {
                let f = SourceFile::parse((*path).into(), src, FileClass::default());
                parse_file(&f)
            })
            .collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    fn node(g: &CallGraph, key: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.key == key)
            .unwrap_or_else(|| panic!("no node {key}: {:?}", g.nodes))
    }

    #[test]
    fn cross_crate_qualified_calls_resolve() {
        let (_, g) = graph_of(&[
            (
                "crates/serve/src/core.rs",
                "// lint: entry(panic-reachability)\npub fn step() { fault::point(1); }\n",
            ),
            ("crates/fault/src/lib.rs", "pub fn point(x: u32) { helper(x); }\nfn helper(_x: u32) {}\n"),
        ]);
        let step = node(&g, "serve::step");
        let point = node(&g, "fault::point");
        let helper = node(&g, "fault::helper");
        assert!(g.edges[step].contains(&point));
        assert!(g.edges[point].contains(&helper));
        let reach = g.reachability();
        assert!(reach.from[helper].is_some());
        let path = g.path_to(&reach, helper);
        assert_eq!(path, vec![step, point, helper]);
    }

    #[test]
    fn std_colliding_methods_need_a_self_receiver() {
        let (_, g) = graph_of(&[(
            "crates/serve/src/core.rs",
            "struct W;\nimpl W { fn push(&mut self, v: u64) { let _ = v; } }\n\
             struct S { w: W }\nimpl S {\n  fn f(&mut self) { self.w.push(1); }\n  fn g(&mut self, v: Vec<u32>) { let mut v = v; v.push(1); }\n}\n",
        )]);
        let push = node(&g, "serve::W::push");
        let f = node(&g, "serve::S::f");
        let gg = node(&g, "serve::S::g");
        assert!(g.edges[f].contains(&push), "self.w.push pins to the local impl");
        assert!(!g.edges[gg].contains(&push), "v.push stays std");
    }

    #[test]
    fn method_calls_prefer_locality_tiers() {
        let (_, g) = graph_of(&[
            (
                "crates/serve/src/core.rs",
                "impl Core { fn run(&mut self, s: Sampler) { s.sample(); } }\n",
            ),
            ("crates/sampler/src/lib.rs", "impl Sampler { pub fn sample(&self) {} }\n"),
        ]);
        let run = node(&g, "serve::Core::run");
        let sample = node(&g, "sampler::Sampler::sample");
        assert!(g.edges[run].contains(&sample));
    }

    #[test]
    fn self_qualified_calls_resolve_to_own_impl() {
        let (_, g) = graph_of(&[(
            "crates/serve/src/core.rs",
            "impl Core {\n  fn a(&self) { Self::b(); }\n  fn b() {}\n}\n",
        )]);
        let a = node(&g, "serve::Core::a");
        let b = node(&g, "serve::Core::b");
        assert!(g.edges[a].contains(&b));
    }

    #[test]
    fn test_fns_are_not_graph_targets() {
        let (_, g) = graph_of(&[(
            "crates/x/src/lib.rs",
            "// lint: entry(panic-reachability)\npub fn live() { probe(); }\n\
             #[cfg(test)]\nmod tests { pub fn probe() {} }\n",
        )]);
        let live = node(&g, "x::live");
        assert!(g.edges[live].is_empty(), "{:?}", g.edges[live]);
    }

    #[test]
    fn graph_json_is_valid() {
        let (parsed, g) = graph_of(&[(
            "crates/x/src/lib.rs",
            "// lint: entry(panic-reachability)\npub fn live() { helper(); }\nfn helper() {}\n",
        )]);
        let json = render_json(&g, &parsed);
        let v = salient_trace::json::parse(&json).expect("graph JSON parses");
        let nodes = v.get("nodes").and_then(|n| n.as_arr()).expect("nodes array");
        assert_eq!(nodes.len(), 2);
        assert_eq!(
            v.get("rules")
                .and_then(|r| r.get("panic-reachability"))
                .and_then(|r| r.get("reachable"))
                .and_then(|n| n.as_num()),
            Some(2.0)
        );
    }
}
