//! **deps**: the dependency-freedom guard, a real TOML-section parser over
//! `Cargo.toml` manifests replacing the awk loop `scripts/ci.sh` used to
//! carry. The workspace must build offline from std alone: every entry in a
//! dependency table (`[dependencies]`, `[dev-dependencies]`,
//! `[build-dependencies]`, `[workspace.dependencies]`, `[target.*.…]`, and
//! `[dependencies.<name>]` subsections) must be a `path` or
//! `workspace = true` dependency. Version-only, `git`, and `registry`
//! entries are rejected.

use crate::diag::Diagnostic;
use crate::rules::DEPS;

/// True when a TOML table header names a dependency table or a subsection
/// of one (`dependencies`, `foo.dev-dependencies`, `dependencies.serde`).
fn is_dep_section(section: &str) -> bool {
    section
        .split('.')
        .any(|seg| matches!(seg, "dependencies" | "dev-dependencies" | "build-dependencies"))
}

/// Strips a `#` comment, honoring basic (`"`) and literal (`'`) strings.
fn strip_comment(line: &str) -> &str {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
    }
    line
}

/// The verdict for one dependency entry's value.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    Ok,
    /// The entry pins a source other than a local path.
    Bad(&'static str),
}

/// Judges an inline value (`"1.0"`, `{ path = "..." }`,
/// `{ workspace = true }`, `{ git = "..." }`).
fn judge_inline_value(value: &str) -> Verdict {
    let v = value.trim();
    if v.starts_with('{') {
        let has = |key: &str| {
            // Key match at word granularity inside the inline table.
            v[1..].split([',', '{']).any(|part| {
                let part = part.trim();
                part.strip_prefix(key)
                    .map(|rest| rest.trim_start().starts_with('='))
                    .unwrap_or(false)
            })
        };
        if has("git") {
            return Verdict::Bad("git dependency");
        }
        if has("registry") {
            return Verdict::Bad("registry dependency");
        }
        if has("path") {
            return Verdict::Ok;
        }
        if v.contains("workspace") && v.contains("true") {
            return Verdict::Ok;
        }
        Verdict::Bad("no `path` or `workspace = true` in dependency table")
    } else {
        // `foo = "1.0"` — a bare version string from the registry.
        Verdict::Bad("version-only dependency (resolves from a registry)")
    }
}

/// Checks one manifest; `label` is the path used in diagnostics.
pub fn check_manifest(label: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut section = String::new();
    // State for `[dependencies.<name>]` subsections: (header line, keys seen).
    let mut sub: Option<(usize, Vec<String>)> = None;

    let flush_sub = |sub: &mut Option<(usize, Vec<String>)>,
                         section: &str,
                         out: &mut Vec<Diagnostic>| {
        if let Some((line, keys)) = sub.take() {
            let bad = if keys.iter().any(|k| k == "git") {
                Some("git dependency")
            } else if keys.iter().any(|k| k == "registry") {
                Some("registry dependency")
            } else if !keys.iter().any(|k| k == "path" || k == "workspace") {
                Some("no `path` or `workspace = true` in dependency table")
            } else {
                None
            };
            if let Some(why) = bad {
                out.push(Diagnostic {
                    rule: DEPS,
                    file: label.to_string(),
                    line,
                    col: 1,
                    message: format!("[{section}]: {why}"),
                    snippet: format!("[{section}]"),
                    suppressed: None,
                });
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let prev = section.clone();
            flush_sub(&mut sub, &prev, &mut out);
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim_matches(|c: char| c == '"' || c == '\'')
                .to_string();
            // `[dependencies.foo]`-style subsection: validate keys at end.
            if is_dep_section(&section) && section.split('.').count() > dep_table_depth(&section) {
                sub = Some((line_no, Vec::new()));
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        if let Some((_, keys)) = &mut sub {
            // Inside `[dependencies.foo]`: collect attribute keys.
            keys.push(key.split('.').next().unwrap_or(key).trim().to_string());
            continue;
        }
        // Dotted key: `foo.workspace = true` / `foo.path = "..."` /
        // `foo.version = "1"`.
        if let Some((_dep, attr)) = key.split_once('.') {
            match attr.trim() {
                "workspace" if value == "true" => {}
                "path" => {}
                "git" => out.push(bad_entry(label, line_no, raw, "git dependency")),
                "version" | "registry" => out.push(bad_entry(
                    label,
                    line_no,
                    raw,
                    "version/registry dependency (resolves from a registry)",
                )),
                _ => {}
            }
            continue;
        }
        if let Verdict::Bad(why) = judge_inline_value(value) {
            out.push(bad_entry(label, line_no, raw, why));
        }
    }
    let prev = section.clone();
    flush_sub(&mut sub, &prev, &mut out);
    out
}

/// Number of path segments up to and including the dependency-table segment
/// (`dependencies` → 1, `workspace.dependencies` → 2, `target.cfg.dev-dependencies` → 3).
fn dep_table_depth(section: &str) -> usize {
    let segs: Vec<&str> = section.split('.').collect();
    segs.iter()
        .position(|s| matches!(*s, "dependencies" | "dev-dependencies" | "build-dependencies"))
        .map(|p| p + 1)
        .unwrap_or(segs.len())
}

fn bad_entry(label: &str, line: usize, raw: &str, why: &str) -> Diagnostic {
    Diagnostic {
        rule: DEPS,
        file: label.to_string(),
        line,
        col: 1,
        message: format!("non-path dependency: {why}"),
        snippet: raw.trim().to_string(),
        suppressed: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let m = r#"
[package]
name = "x"

[dependencies]
salient-tensor = { path = "../tensor" }
salient-graph.workspace = true
salient-nn = { workspace = true }

[dev-dependencies]
helper = { path = "../helper", version = "0.1" }
"#;
        assert!(check_manifest("Cargo.toml", m).is_empty());
    }

    #[test]
    fn version_only_dep_is_rejected() {
        let m = "[dependencies]\nserde = \"1.0\"\n";
        let d = check_manifest("Cargo.toml", m);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("version-only"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn git_dep_is_rejected_even_with_path() {
        let m = "[dependencies]\nfoo = { git = \"https://x\", path = \"../f\" }\n";
        let d = check_manifest("Cargo.toml", m);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("git"));
    }

    #[test]
    fn inline_version_table_without_path_is_rejected() {
        let m = "[dependencies]\nfoo = { version = \"1\", features = [\"std\"] }\n";
        assert_eq!(check_manifest("Cargo.toml", m).len(), 1);
    }

    #[test]
    fn dotted_version_key_is_rejected() {
        let m = "[dependencies]\nfoo.version = \"1\"\n";
        assert_eq!(check_manifest("Cargo.toml", m).len(), 1);
    }

    #[test]
    fn dependency_subsection_without_path_is_rejected() {
        let m = "[dependencies.foo]\nversion = \"1\"\nfeatures = [\"a\"]\n";
        let d = check_manifest("Cargo.toml", m);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);

        let ok = "[dependencies.foo]\npath = \"../foo\"\n";
        assert!(check_manifest("Cargo.toml", ok).is_empty());
    }

    #[test]
    fn workspace_dependencies_table_is_covered() {
        let m = "[workspace.dependencies]\nbad = \"0.3\"\ngood = { path = \"crates/good\" }\n";
        let d = check_manifest("Cargo.toml", m);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn target_specific_tables_are_covered() {
        let m = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(check_manifest("Cargo.toml", m).len(), 1);
    }

    #[test]
    fn comments_and_strings_do_not_confuse_the_parser() {
        let m = "[dependencies] # the deps\nfoo = { path = \"a#b\" } # has hash in path\n";
        assert!(check_manifest("Cargo.toml", m).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let m = "[package]\nversion = \"0.1.0\"\nedition = \"2021\"\n[features]\ndefault = []\n";
        assert!(check_manifest("Cargo.toml", m).is_empty());
    }
}
