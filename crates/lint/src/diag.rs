//! Diagnostic type and the text / JSON renderers.

/// One finding. `suppressed` carries the reason when an inline
/// `// lint: allow(rule, reason)` matched.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    pub suppressed: Option<String>,
}

impl Diagnostic {
    /// `file:line:col: [rule] message` plus the snippet.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        );
        if let Some(reason) = &self.suppressed {
            s.push_str(&format!("\n    suppressed: {reason}"));
        }
        if !self.snippet.is_empty() {
            s.push_str(&format!("\n    {}", self.snippet));
        }
        s
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array (stable field order, one object per
/// finding) for `--format json`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"suppressed\":{}}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message),
            json_escape(&d.snippet),
            match &d.suppressed {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let d = Diagnostic {
            rule: "panic-freedom",
            file: "x.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
            snippet: "s".into(),
            suppressed: None,
        };
        let j = render_json(&[d]);
        assert!(j.starts_with('['));
        assert!(j.contains("\"rule\":\"panic-freedom\""));
        assert!(j.contains("\"suppressed\":null"));
    }
}
