//! A hand-rolled Rust lexer sufficient for rule matching.
//!
//! This is not a full Rust grammar: it tokenizes identifiers, literals, and
//! punctuation with exact line/column positions, while correctly *skipping*
//! the constructs that defeat naive text matching — line and (nested) block
//! comments, string/raw-string/byte-string literals, and character literals
//! (disambiguated from lifetimes). Comments are not discarded: they are
//! collected with positions so rules can check for `// SAFETY:` notes,
//! justification comments, and `// lint: allow(...)` suppressions.

/// What kind of token was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `unwrap`, ...).
    Ident,
    /// A lifetime (`'a`) — kept distinct so `'a` never reads as a char.
    Lifetime,
    /// String / raw string / byte string / char / numeric literal.
    Literal,
    /// A single punctuation character (`.`, `:`, `{`, ...). Multi-char
    /// operators are emitted as consecutive single-char tokens; rules match
    /// token *sequences*, so `::` is simply `:` `:`.
    Punct(char),
}

/// One token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    /// The token text (for `Punct` this is the single character).
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its position and raw text (markers stripped).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Line the comment starts on.
    pub line: usize,
    /// Line the comment ends on (== `line` for line comments).
    pub end_line: usize,
    pub col: usize,
    /// Comment body without the `//` / `/* */` markers.
    pub text: String,
    /// True for `///`, `//!`, `/** */`, `/*! */` doc comments.
    pub is_doc: bool,
    /// True if any token precedes the comment on its starting line
    /// (a trailing comment).
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();
    let mut last_token_line = 0usize;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let mut text = Vec::new();
                cur.bump();
                cur.bump();
                let is_doc = matches!(cur.peek(), Some(b'/') | Some(b'!'));
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    col,
                    text: String::from_utf8_lossy(&text).into_owned(),
                    is_doc,
                    trailing: last_token_line == line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let is_doc = matches!(cur.peek(), Some(b'*') | Some(b'!'));
                let mut depth = 1usize;
                let mut text = Vec::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    col,
                    text: String::from_utf8_lossy(&text).into_owned(),
                    is_doc,
                    trailing: last_token_line == line,
                });
            }
            b'"' => {
                let start = cur.pos;
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
                last_token_line = line;
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                let start = cur.pos;
                lex_raw_or_byte_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
                last_token_line = line;
            }
            // `r#ident`: a raw identifier is one Ident token that keeps
            // its `r#` prefix (so `r#match` is distinguishable from the
            // keyword `match`) and never splits into `r` `#` `match`.
            // The parser strips the prefix where names feed the call graph.
            b'r' if cur.peek_at(1) == Some(b'#')
                && cur.peek_at(2).map(is_ident_start).unwrap_or(false) =>
            {
                cur.bump();
                cur.bump();
                let mut text = String::from("r#");
                while let Some(ch) = cur.peek() {
                    if is_ident_continue(ch) {
                        text.push(ch as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokKind::Ident, text, line, col });
                last_token_line = line;
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'a'`, `'\n'`).
                // After the quote, an identifier run NOT followed by a
                // closing quote is a lifetime.
                let mut j = 1;
                let mut ident_len = 0;
                while let Some(c) = cur.peek_at(j) {
                    if is_ident_continue(c) {
                        ident_len += 1;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let is_lifetime = ident_len > 0
                    && cur.peek_at(1).map(is_ident_start).unwrap_or(false)
                    && cur.peek_at(1 + ident_len) != Some(b'\'');
                if is_lifetime {
                    let mut text = String::from("'");
                    cur.bump();
                    while let Some(c) = cur.peek() {
                        if is_ident_continue(c) {
                            text.push(c as char);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(Token { kind: TokKind::Lifetime, text, line, col });
                } else {
                    cur.bump();
                    // Consume the char body up to the closing quote,
                    // honoring escapes.
                    loop {
                        match cur.peek() {
                            Some(b'\\') => {
                                cur.bump();
                                cur.bump();
                            }
                            Some(b'\'') => {
                                cur.bump();
                                break;
                            }
                            Some(_) => {
                                cur.bump();
                            }
                            None => break,
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::from("''"),
                        line,
                        col,
                    });
                }
                last_token_line = line;
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if is_ident_continue(ch) {
                        text.push(ch as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokKind::Ident, text, line, col });
                last_token_line = line;
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                // Numbers never matter to the rules; consume a loose
                // [0-9a-zA-Z_.xX]* run, careful not to eat `..` or a method
                // call like `1.max(2)`.
                while let Some(ch) = cur.peek() {
                    if ch.is_ascii_alphanumeric() || ch == b'_' {
                        text.push(ch as char);
                        cur.bump();
                    } else if ch == b'.'
                        && cur.peek_at(1).map(|n| n.is_ascii_digit()).unwrap_or(false)
                    {
                        text.push('.');
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokKind::Literal, text, line, col });
                last_token_line = line;
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    text: (c as char).to_string(),
                    line,
                    col,
                });
                last_token_line = line;
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`
/// (raw/byte literal starts, as opposed to identifiers starting with r/b).
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#')) => {
            // `r#ident` is a raw identifier, not a raw string: require a
            // quote after the hashes.
            let mut j = 1;
            while cur.peek_at(j) == Some(b'#') {
                j += 1;
            }
            cur.peek_at(j) == Some(b'"')
        }
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => {
            let mut j = 2;
            while cur.peek_at(j) == Some(b'#') {
                j += 1;
            }
            cur.peek_at(j) == Some(b'"')
        }
        _ => false,
    }
}

/// Consumes a normal `"..."` string (cursor on the opening quote).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.peek() {
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                cur.bump();
                break;
            }
            Some(_) => {
                cur.bump();
            }
            None => break,
        }
    }
}

/// Consumes a raw string / byte string / byte char starting at the cursor.
fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) {
    let mut raw = false;
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        raw = true;
        cur.bump();
    }
    if !raw {
        match cur.peek() {
            Some(b'"') => lex_string(cur),
            Some(b'\'') => {
                // byte char b'x'
                cur.bump();
                loop {
                    match cur.peek() {
                        Some(b'\\') => {
                            cur.bump();
                            cur.bump();
                        }
                        Some(b'\'') => {
                            cur.bump();
                            break;
                        }
                        Some(_) => {
                            cur.bump();
                        }
                        None => break,
                    }
                }
            }
            _ => {}
        }
        return;
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return;
    }
    cur.bump();
    // Scan until `"` followed by `hashes` hash marks.
    'outer: loop {
        match cur.bump() {
            Some(b'"') => {
                for j in 0..hashes {
                    if cur.peek_at(j) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
            Some(_) => {}
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block comment */
            let s = "unsafe { Instant::now() }";
            let r = r#"thread::sleep "inner" here"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "real_ident"]);
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("unwrap"));
        assert!(lx.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_do_not_eat_code_as_char_literals() {
        let src = "fn f<'a>(x: &'a str) { g('x', '\\n', b'y'); }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "x", "str", "g"]);
        let lifetimes: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let src = "ab\n  cd";
        let toks = lex(src).tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn trailing_comment_flag() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;";
        let cs = lex(src).comments;
        assert!(cs[0].trailing);
        assert!(!cs[1].trailing);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let src = "let r#type = 1; r#match();";
        let ids = idents(src);
        // `r#type` lexes as the single identifier `r#type` (one token), and
        // the lexer does not swallow the rest of the file as a raw string.
        assert_eq!(ids, vec!["let", "r#type", "r#match"]);
    }

    #[test]
    fn string_literal_text_is_preserved() {
        let toks = lex("f(\"serve.queue_depth\"); g(r#\"raw \"x\"\"#);").tokens;
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["\"serve.queue_depth\"", "r#\"raw \"x\"\"#"]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let src = "/// # Safety\n/// caller checks\nunsafe fn f() {}";
        let lx = lex(src);
        assert!(lx.comments.iter().all(|c| c.is_doc));
        assert!(lx.tokens[0].is_ident("unsafe"));
    }
}
