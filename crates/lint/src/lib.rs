//! # salient-lint
//!
//! A std-only, in-repo static-analysis pass enforcing the workspace's
//! safety, determinism, and concurrency invariants. The SALIENT
//! reproduction's speedups come from hand-engineered shared-memory
//! parallelism — pinned-slot batch prep, lock-free queues, unsafe SIMD
//! kernels — exactly the code where a silent data race, a panicking
//! `unwrap` on a poisoned lock, or a stray wall-clock read breaks the
//! deterministic fault-replay guarantees. Since the workspace is
//! dependency-free by standing constraint, the tooling is built here, on
//! std alone: a hand-rolled Rust lexer plus a rule engine.
//!
//! ## Rule catalog
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-audit` | every `unsafe` block/fn/impl carries a `// SAFETY:` comment (or `# Safety` doc) |
//! | `panic-freedom` | no `.unwrap()` / `.expect()` / `panic!` / `todo!` / `unimplemented!` in hot-path modules |
//! | `panic-reachability` | no panicking construct (incl. `[i]` indexing) in any fn transitively reachable from a `// lint: entry(panic-reachability)` declaration, via the workspace call graph |
//! | `name-registry` | every trace/fault name at a call site is a `trace::names` / `fault::sites` constant; every constant is used and listed in its module's `ALL` slice |
//! | `alloc-freedom` | no allocation (`Vec::new`, `vec!`, `.push`, `.clone`, `format!`, …) inside a `// lint: region(no_alloc)` block |
//! | `determinism` | no `Instant::now` / `SystemTime::now` / `thread::sleep` / `process::exit` outside sim, bench, and CLI code |
//! | `lock-discipline` | no lock-order cycles; every `Ordering::Relaxed` is justified by a comment |
//! | `deps` | every manifest dependency is `path` or `workspace = true` (offline-buildable) |
//! | `suppression` | every `// lint: allow(rule, reason)` carries a non-empty reason, still silences something, and every `entry`/`region` annotation is well-formed |
//!
//! ## Semantic substrate
//!
//! [`parser`] lifts the token stream to items (modules, `impl` blocks,
//! `fn`s with their call expressions) and [`callgraph`] links them into a
//! cross-crate call graph with declared hot-path entry points — the
//! substrate for `panic-reachability` and the `salient-lint graph` report.
//!
//! ## Suppressions
//!
//! `// lint: allow(rule-name, reason)` on the offending line or the line
//! above silences one rule there; the reason string is mandatory and is
//! itself linted. Suppressed findings still appear in the report (marked),
//! so the suppression inventory stays auditable — and a suppression that
//! stops matching any finding becomes a finding itself.

pub mod callgraph;
pub mod deps;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::Diagnostic;
pub use source::{FileClass, SourceFile};
pub use workspace::{run, run_deps, LintReport};
