//! `salient-lint` — the CLI for the in-repo static-analysis pass.
//!
//! ```text
//! salient-lint check [--format json] [--root DIR]    # all rules (default)
//! salient-lint deps  [--format json] [--root DIR]    # manifest guard only
//! salient-lint unsafe-inventory [--format json] [--root DIR]
//! salient-lint graph [--root DIR]                    # call-graph JSON
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

use salient_lint::callgraph::CallGraph;
use salient_lint::diag::{json_escape, render_json};
use salient_lint::workspace;
use std::path::PathBuf;
use std::time::Instant;

// CLI entry point: process::exit is the whitelisted way out.
struct Opts {
    cmd: String,
    json: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts { cmd: "check".to_string(), json: false, root: None };
    let mut saw_cmd = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects json|text, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root expects a directory".to_string()),
            },
            "-h" | "--help" => {
                println!(
                    "usage: salient-lint [check|deps|unsafe-inventory|graph] [--format json|text] [--root DIR]"
                );
                std::process::exit(0);
            }
            cmd if !saw_cmd && !cmd.starts_with('-') => {
                opts.cmd = cmd.to_string();
                saw_cmd = true;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("salient-lint: {e}");
            std::process::exit(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = opts
        .root
        .clone()
        .or_else(|| workspace::find_root(&cwd))
        .unwrap_or_else(|| {
            eprintln!("salient-lint: no workspace root found above {}", cwd.display());
            std::process::exit(2);
        });

    match opts.cmd.as_str() {
        "check" => {
            let start = Instant::now();
            let report = match workspace::run(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("salient-lint: {e}");
                    std::process::exit(2);
                }
            };
            let elapsed_ms = start.elapsed().as_millis();
            let unsuppressed = report.unsuppressed_count();
            if opts.json {
                println!("{}", render_json(&report.diagnostics));
            } else {
                for d in &report.diagnostics {
                    println!("{}", d.render_text());
                }
                for (rule, total, open) in report.counts_by_rule() {
                    println!(
                        "  {rule:<20} {total:>3} finding(s), {open} unsuppressed"
                    );
                }
                let suppressed = report.diagnostics.len() - unsuppressed;
                println!(
                    "salient-lint: {} file(s), {} finding(s) ({} suppressed), {} unsafe site(s) in {} ms",
                    report.files_scanned,
                    report.diagnostics.len(),
                    suppressed,
                    report.unsafe_inventory.len(),
                    elapsed_ms
                );
            }
            std::process::exit(if unsuppressed > 0 { 1 } else { 0 });
        }
        "graph" => {
            let (_files, parsed) = match workspace::analyze(&root) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("salient-lint: {e}");
                    std::process::exit(2);
                }
            };
            let graph = CallGraph::build(&parsed);
            let json = salient_lint::callgraph::render_json(&graph, &parsed);
            // The dump is a CI artifact: self-validate it through the
            // in-repo JSON parser before anything downstream consumes it.
            if let Err(e) = salient_trace::json::parse(&json) {
                eprintln!("salient-lint graph: internal error — invalid JSON: {e}");
                std::process::exit(2);
            }
            println!("{json}");
            std::process::exit(0);
        }
        "deps" => {
            let diags = match workspace::run_deps(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("salient-lint: {e}");
                    std::process::exit(2);
                }
            };
            if opts.json {
                println!("{}", render_json(&diags));
            } else {
                for d in &diags {
                    println!("{}", d.render_text());
                }
                println!("salient-lint deps: {} finding(s)", diags.len());
            }
            std::process::exit(if diags.is_empty() { 0 } else { 1 });
        }
        "unsafe-inventory" => {
            let report = match workspace::run(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("salient-lint: {e}");
                    std::process::exit(2);
                }
            };
            if opts.json {
                let mut out = String::from("[");
                for (i, s) in report.unsafe_inventory.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n  {{\"file\":\"{}\",\"line\":{},\"kind\":\"{}\",\"safety\":\"{}\",\"snippet\":\"{}\"}}",
                        json_escape(&s.file),
                        s.line,
                        s.kind,
                        json_escape(&s.safety),
                        json_escape(&s.snippet)
                    ));
                }
                out.push_str("\n]");
                println!("{out}");
            } else {
                println!("workspace unsafe inventory ({} sites):", report.unsafe_inventory.len());
                for s in &report.unsafe_inventory {
                    println!("  {}:{} [{}] {}", s.file, s.line, s.kind, s.snippet);
                    let why = if s.safety.is_empty() { "(UNDOCUMENTED)" } else { &s.safety };
                    println!("      {why}");
                }
            }
            std::process::exit(0);
        }
        other => {
            eprintln!(
                "salient-lint: unknown command `{other}` (try check|deps|unsafe-inventory|graph)"
            );
            std::process::exit(2);
        }
    }
}
