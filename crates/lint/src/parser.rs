//! Item-level parsing on top of the lexer: modules, `impl` blocks, `fn`
//! items with their call expressions, string constants, and the lint
//! annotations (`// lint: entry(rule)`, `// lint: region(kind)`).
//!
//! This is not a Rust grammar — it is a structural scan good enough for
//! the `salient_*` crates: brace-matched scopes give every `fn` its
//! enclosing module path and `impl` type, call expressions are extracted
//! (free, path-qualified, turbofish, and method calls with `self`-chain
//! receiver detection), and the result feeds [`crate::callgraph`].

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use std::collections::HashMap;

/// One call expression inside a fn body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (last path segment, turbofish stripped).
    pub name: String,
    /// Path segments before the name (`fault::point` → `["fault"]`,
    /// `Self::helper` → `["Self"]`). Empty for plain and method calls.
    pub qualifier: Vec<String>,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
    /// True when the receiver chain is rooted at `self`
    /// (`self.f(...)`, `self.field.f(...)`).
    pub recv_self: bool,
    pub line: usize,
    pub col: usize,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// Enclosing inline-module path within the file.
    pub module: Vec<String>,
    /// Line of the `fn` name.
    pub line: usize,
    /// Token-index range of the body `{` … `}` (inclusive); `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    pub calls: Vec<Call>,
    /// Inside `#[cfg(test)]` / `#[test]` code or a test file.
    pub is_test: bool,
    /// Declared `// lint: entry(panic-reachability)`.
    pub entry: bool,
}

/// A `// lint: region(kind)` annotated block.
#[derive(Clone, Debug)]
pub struct Region {
    pub kind: String,
    /// Line of the annotation comment.
    pub line: usize,
    /// Token-index range of the governed `{` … `}`; `None` when the
    /// annotation attaches to no block (a hygiene finding).
    pub body: Option<(usize, usize)>,
}

/// A `const NAME: &str = "value";` item (the name-registry substrate).
#[derive(Clone, Debug)]
pub struct StrConst {
    pub name: String,
    /// Literal value with the quotes stripped.
    pub value: String,
    pub module: Vec<String>,
    pub line: usize,
}

/// An entry annotation as written (kept for hygiene: unknown rule names
/// in `// lint: entry(...)` are themselves findings).
#[derive(Clone, Debug)]
pub struct EntryMark {
    pub line: usize,
    pub rule: String,
}

/// The parsed view of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub path: String,
    /// Crate identity for path resolution: `crates/X/…` → `X`; root
    /// `tests/`, `examples/`, `src/bin/` get their directory name.
    pub krate: String,
    pub fns: Vec<FnItem>,
    pub regions: Vec<Region>,
    pub consts: Vec<StrConst>,
    pub entries: Vec<EntryMark>,
}

/// Derives the crate identity from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        return rest.split('/').next().unwrap_or("").to_string();
    }
    for top in ["tests", "examples", "benches", "src"] {
        if path.starts_with(&format!("{top}/")) {
            return top.to_string();
        }
    }
    String::new()
}

/// Strips the raw-identifier prefix: `r#match` → `match`. Applied wherever
/// a name enters an item or call record, so call-graph keys are uniform.
fn bare(name: &str) -> &str {
    name.strip_prefix("r#").unwrap_or(name)
}

/// Identifiers that look like calls when followed by `(` but never are.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "let",
    "else", "break", "continue", "move", "ref", "mut", "fn", "unsafe",
    "await", "yield", "where", "use", "pub", "crate", "super", "self",
    "Self", "struct", "enum", "union", "trait", "impl", "type", "const",
    "static", "dyn", "box",
];

/// Scope labels for open braces.
#[derive(Clone, Debug)]
enum Scope {
    Mod(String),
    Impl(Option<String>),
    Fn(usize),
    Block,
}

/// Parses one lexed file into items. Never fails: unparseable stretches
/// simply contribute no items.
pub fn parse_file(f: &SourceFile) -> ParsedFile {
    let toks = &f.lexed.tokens;
    let mut out = ParsedFile {
        path: f.path.clone(),
        krate: crate_of(&f.path),
        ..ParsedFile::default()
    };

    let close = match_braces(toks);
    // Labels for braces opened by mod/impl/trait/fn headers, keyed by the
    // `{` token index. Assigned by look-ahead when the header is seen.
    let mut labels: HashMap<usize, Scope> = HashMap::new();
    let mut stack: Vec<Scope> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => {
                stack.push(labels.remove(&i).unwrap_or(Scope::Block));
            }
            TokKind::Punct('}') => {
                stack.pop();
            }
            TokKind::Ident => {
                match t.text.as_str() {
                    "mod" => {
                        if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                            if name.kind == TokKind::Ident && open.is_punct('{') {
                                labels.insert(i + 2, Scope::Mod(name.text.clone()));
                            }
                        }
                    }
                    "impl" | "trait" => {
                        // `impl Trait` in a signature (`-> impl Iterator`)
                        // scans to the fn's body brace, which already
                        // carries a `Scope::Fn` label — never overwrite.
                        if let Some((brace, ty)) = parse_impl_header(toks, i) {
                            labels.entry(brace).or_insert(Scope::Impl(ty));
                        }
                    }
                    "fn" => {
                        if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                            let body = find_fn_body(toks, i + 2, &close);
                            let module: Vec<String> = stack
                                .iter()
                                .filter_map(|s| match s {
                                    Scope::Mod(m) => Some(m.clone()),
                                    _ => None,
                                })
                                .collect();
                            let impl_type = stack.iter().rev().find_map(|s| match s {
                                Scope::Impl(ty) => Some(ty.clone()),
                                _ => None,
                            });
                            let idx = out.fns.len();
                            if let Some((open, _)) = body {
                                labels.insert(open, Scope::Fn(idx));
                            }
                            out.fns.push(FnItem {
                                name: bare(&name.text).to_string(),
                                impl_type: impl_type.flatten(),
                                module,
                                line: name.line,
                                body,
                                calls: Vec::new(),
                                is_test: f.class.test_file || f.in_test_code(name.line),
                                entry: false,
                            });
                        }
                    }
                    "const" => {
                        if let Some(c) = parse_str_const(toks, i) {
                            let module: Vec<String> = stack
                                .iter()
                                .filter_map(|s| match s {
                                    Scope::Mod(m) => Some(m.clone()),
                                    _ => None,
                                })
                                .collect();
                            out.consts.push(StrConst { module, ..c });
                        }
                    }
                    _ => {
                        // Call expression? Only inside a fn body.
                        if let Some(fn_idx) = stack.iter().rev().find_map(|s| match s {
                            Scope::Fn(k) => Some(*k),
                            _ => None,
                        }) {
                            if let Some(call) = parse_call(toks, i) {
                                out.fns[fn_idx].calls.push(call);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    attach_annotations(f, &mut out, &close);
    out
}

/// Brace matching: `open token index → close token index`.
fn match_braces(toks: &[Token]) -> HashMap<usize, usize> {
    let mut close = HashMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                close.insert(open, i);
            }
        }
    }
    close
}

/// From an `impl`/`trait` keyword, finds the opening `{` of the block and
/// the implemented type name (`impl Foo`, `impl<T> Foo<T>`,
/// `impl Trait for Foo` → `Foo`; `trait Bar` → `Bar`).
fn parse_impl_header(toks: &[Token], kw: usize) -> Option<(usize, Option<String>)> {
    let mut j = kw + 1;
    // Skip the generic parameter list, counting single-char angle tokens
    // (so `>>` — two tokens — closes two levels).
    if toks.get(j)?.is_punct('<') {
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct('{') || t.is_punct(';') {
                return None;
            }
            j += 1;
        }
    }
    // Collect header tokens up to the `{` (or give up on `;`).
    let start = j;
    let mut brace = None;
    let mut angle = 0i32;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('{') && angle <= 0 {
            brace = Some(j);
            break;
        } else if t.is_punct(';') && angle <= 0 {
            return None;
        }
        j += 1;
    }
    let brace = brace?;
    // The type region: after a depth-0 `for`, if present; else the whole
    // header. The name is the last segment of the first path in it.
    let mut region_start = start;
    let mut angle = 0i32;
    for k in start..brace {
        let t = &toks[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && t.is_ident("for") {
            region_start = k + 1;
        }
    }
    let mut ty = None;
    let mut k = region_start;
    while k < brace {
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "dyn" | "mut" | "const") {
                k += 1;
                continue;
            }
            ty = Some(t.text.clone());
            // Follow `::` segments to the last one before generics.
            while toks.get(k + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(k + 2).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(k + 3).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
            {
                ty = Some(toks[k + 3].text.clone());
                k += 3;
            }
            break;
        }
        k += 1;
    }
    Some((brace, ty))
}

/// After a fn name (and generics/args/return type), finds the body braces:
/// the first `{` at paren/bracket depth 0, or `None` at a `;` (bodyless).
/// `impl Trait` in signatures is fine — types contain no braces.
fn find_fn_body(
    toks: &[Token],
    from: usize,
    close: &HashMap<usize, usize>,
) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = from;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth <= 0 => {
                return close.get(&j).map(|&c| (j, c));
            }
            TokKind::Punct(';') if depth <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses `const NAME: … str … = "value";` starting at the `const` token.
fn parse_str_const(toks: &[Token], kw: usize) -> Option<StrConst> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident || name.text == "fn" {
        return None;
    }
    if !toks.get(kw + 2)?.is_punct(':') {
        return None;
    }
    // Scan the type up to `=`; require a bare `str` (so `&[&str]` slices
    // like the ALL lists are not treated as named constants).
    let mut j = kw + 3;
    let mut saw_str = false;
    let mut saw_slice = false;
    while let Some(t) = toks.get(j) {
        if t.is_punct('=') {
            j += 1;
            break;
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_ident("str") {
            saw_str = true;
        }
        if t.is_punct('[') {
            saw_slice = true;
        }
        j += 1;
    }
    if !saw_str || saw_slice {
        return None;
    }
    let val = toks.get(j)?;
    if val.kind != TokKind::Literal || !val.text.starts_with('"') {
        return None;
    }
    Some(StrConst {
        name: name.text.clone(),
        value: val.text.trim_matches('"').to_string(),
        module: Vec::new(),
        line: name.line,
    })
}

/// Tries to read a call expression whose callee name is the ident at `i`:
/// `name(`, `name::<T>(`, `path::name(`, `.name(`, `.name::<T>(`.
fn parse_call(toks: &[Token], i: usize) -> Option<Call> {
    let name = &toks[i];
    if NON_CALL_IDENTS.contains(&name.text.as_str()) {
        return None;
    }
    // A fn declaration's own name is not a call.
    if i > 0 && toks[i - 1].is_ident("fn") {
        return None;
    }
    // Skip a turbofish: `::` `<` … `>` immediately after the name.
    let mut j = i + 1;
    if toks.get(j).map(|t| t.is_punct(':')).unwrap_or(false)
        && toks.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false)
        && toks.get(j + 2).map(|t| t.is_punct('<')).unwrap_or(false)
    {
        let mut depth = 0i32;
        let mut k = j + 2;
        let mut closed = None;
        while let Some(t) = toks.get(k) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    closed = Some(k);
                    break;
                }
            } else if t.is_punct('(') || t.is_punct('{') || t.is_punct(';') {
                break;
            }
            k += 1;
        }
        j = closed? + 1;
    }
    if !toks.get(j).map(|t| t.is_punct('(')).unwrap_or(false) {
        return None;
    }

    let method = i > 0 && toks[i - 1].is_punct('.');
    let mut qualifier = Vec::new();
    let mut recv_self = false;
    if method {
        // Walk the receiver chain backwards: `.field` pairs until the
        // root; a literal `self` root marks a same-object call.
        let mut k = i - 1; // the `.`
        loop {
            if k >= 2
                && toks[k - 1].kind == TokKind::Ident
                && toks[k - 2].is_punct('.')
            {
                k -= 2;
            } else {
                break;
            }
        }
        recv_self = k >= 1 && toks[k - 1].is_ident("self");
    } else {
        // Collect `seg::seg::` qualifiers backwards.
        let mut k = i;
        while k >= 3
            && toks[k - 1].is_punct(':')
            && toks[k - 2].is_punct(':')
            && toks[k - 3].kind == TokKind::Ident
        {
            qualifier.insert(0, bare(&toks[k - 3].text).to_string());
            k -= 3;
        }
    }
    Some(Call {
        name: bare(&name.text).to_string(),
        qualifier,
        method,
        recv_self,
        line: name.line,
        col: name.col,
    })
}

/// Attaches `// lint: entry(rule)` comments to the next `fn` and
/// `// lint: region(kind)` comments to their governed block.
fn attach_annotations(f: &SourceFile, out: &mut ParsedFile, close: &HashMap<usize, usize>) {
    let toks = &f.lexed.tokens;
    for c in &f.lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        if let Some(arg) = annotation_arg(rest, "entry") {
            out.entries.push(EntryMark { line: c.line, rule: arg.clone() });
            if arg == "panic-reachability" {
                // The nearest fn at or below the comment.
                if let Some(fi) = out
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.line >= c.end_line)
                    .min_by_key(|(_, g)| g.line)
                    .map(|(k, _)| k)
                {
                    out.fns[fi].entry = true;
                }
            }
        } else if let Some(kind) = annotation_arg(rest, "region") {
            // Trailing form: the last `{` on the comment's line before it.
            // Own-line form: the first `{` on a later line.
            let open = if c.trailing {
                toks.iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_punct('{') && t.line == c.line && t.col < c.col)
                    .map(|(k, _)| k)
                    .next_back()
            } else {
                toks.iter()
                    .enumerate()
                    .find(|(_, t)| t.is_punct('{') && t.line > c.end_line)
                    .map(|(k, _)| k)
            };
            let body = open.and_then(|o| close.get(&o).map(|&e| (o, e)));
            out.regions.push(Region { kind, line: c.line, body });
        }
    }
}

/// `allow`-style argument extraction: `keyword(arg)` → `arg`.
fn annotation_arg(rest: &str, keyword: &str) -> Option<String> {
    let rest = rest.strip_prefix(keyword)?.trim_start();
    let body = rest.strip_prefix('(')?;
    let end = body.find(')')?;
    Some(body[..end].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};

    fn parse(src: &str) -> ParsedFile {
        let f = SourceFile::parse("crates/demo/src/lib.rs".into(), src, FileClass::default());
        parse_file(&f)
    }

    #[test]
    fn fn_items_carry_module_and_impl_context() {
        let p = parse(
            "mod inner {\n    pub struct S;\n    impl S {\n        pub fn m(&self) {}\n    }\n    pub fn free() {}\n}\n",
        );
        assert_eq!(p.krate, "demo");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "m");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("S"));
        assert_eq!(p.fns[0].module, vec!["inner"]);
        assert_eq!(p.fns[1].name, "free");
        assert!(p.fns[1].impl_type.is_none());
    }

    #[test]
    fn trait_impls_resolve_to_the_implementing_type() {
        let p = parse("impl fmt::Display for F16 {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("F16"));
    }

    #[test]
    fn nested_generics_do_not_derail_the_body_scan() {
        // `Vec<Vec<u32>>` ends in `>>` — two single-char tokens that must
        // close two generic levels, not shift anything.
        let p = parse(
            "impl<T: Into<Vec<Vec<u32>>>> Wrap<T> {\n    fn take(x: Vec<Vec<u32>>) -> impl Iterator<Item = u32> {\n        inner(x)\n    }\n}\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Wrap"));
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].name, "inner");
    }

    #[test]
    fn turbofish_calls_are_extracted() {
        let p = parse(
            "fn f() {\n    let v = parse::<Vec<Vec<u8>>>(x);\n    let w = y.collect::<Vec<_>>();\n}\n",
        );
        let names: Vec<_> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["parse", "collect"]);
        assert!(p.fns[0].calls[1].method);
    }

    #[test]
    fn raw_identifier_fn_and_call() {
        let p = parse("fn r#match() {}\nfn g() { r#match(); }\n");
        assert_eq!(p.fns[0].name, "match");
        assert_eq!(p.fns[1].calls[0].name, "match");
    }

    #[test]
    fn method_receiver_chains_detect_self() {
        let p = parse(
            "impl S {\n    fn f(&mut self) {\n        self.helper();\n        self.field.push(1);\n        other.push(2);\n    }\n}\n",
        );
        let calls = &p.fns[0].calls;
        assert!(calls[0].recv_self && calls[0].method);
        assert!(calls[1].recv_self, "self.field.push is rooted at self");
        assert!(!calls[2].recv_self);
    }

    #[test]
    fn qualified_calls_keep_their_path() {
        let p = parse("fn f() {\n    fault::point(SITE, 1);\n    Self::helper(2);\n}\n");
        assert_eq!(p.fns[0].calls[0].qualifier, vec!["fault"]);
        assert_eq!(p.fns[0].calls[1].qualifier, vec!["Self"]);
    }

    #[test]
    fn string_consts_are_collected_with_modules() {
        let p = parse(
            "pub mod spans {\n    pub const EPOCH: &str = \"epoch\";\n    pub const ALL: &[&str] = &[EPOCH];\n}\n",
        );
        assert_eq!(p.consts.len(), 1, "slice consts are not named constants");
        assert_eq!(p.consts[0].name, "EPOCH");
        assert_eq!(p.consts[0].value, "epoch");
        assert_eq!(p.consts[0].module, vec!["spans"]);
    }

    #[test]
    fn entry_and_region_annotations_attach() {
        let p = parse(
            "// lint: entry(panic-reachability)\npub fn hot() {\n    // lint: region(no_alloc)\n    {\n        work();\n    }\n}\n",
        );
        assert!(p.fns[0].entry);
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].kind, "no_alloc");
        assert!(p.regions[0].body.is_some());
    }

    #[test]
    fn trailing_region_annotation_grabs_its_own_line_block() {
        let p = parse("fn f() {\n    let body = |x: usize| { // lint: region(no_alloc)\n        y[x]\n    };\n}\n");
        assert_eq!(p.regions.len(), 1);
        let (open, close) = p.regions[0].body.expect("attached");
        assert!(open < close);
    }

    #[test]
    fn bodyless_trait_methods_have_no_body() {
        let p = parse("trait T {\n    fn decl(&self);\n    fn with_default(&self) { x(); }\n}\n");
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("T"));
    }
}
