//! **alloc-freedom**: `// lint: region(no_alloc)` marks a block that must
//! not allocate — the trace-disabled fast path, the GEMM micro-kernels,
//! and the scatter inner loops, where the PR-5 counting-allocator test's
//! guarantee becomes a static, always-on check. Inside a region the rule
//! rejects collection construction (`Vec::new`, `vec![…]`, `Box::new`,
//! `String::…`), growth (`.push(…)`, `.extend(…)`, `.collect(…)`), and
//! copying conversions (`.clone()`, `.to_vec()`, `.to_string()`,
//! `.to_owned()`, `format!`).

use super::{emit, ALLOC_FREEDOM};
use crate::diag::Diagnostic;
use crate::parser::ParsedFile;
use crate::source::SourceFile;

/// `Type::ctor` pairs that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Arc", "new"),
    ("Rc", "new"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that allocate or grow an allocation.
const ALLOC_METHODS: &[&str] = &[
    "push", "push_str", "push_back", "push_front", "insert", "extend",
    "collect", "to_vec", "to_string", "to_owned", "clone", "reserve",
    "resize", "with_capacity", "append", "repeat", "concat", "join",
];

/// Runs the rule over one file's annotated regions.
pub fn run(f: &SourceFile, pf: &ParsedFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.lexed.tokens;
    for region in &pf.regions {
        if region.kind != "no_alloc" {
            continue;
        }
        let Some((open, close)) = region.body else { continue };
        for i in open..=close.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            // `Type::ctor(` paths.
            if ALLOC_PATHS.iter().any(|(ty, _)| t.is_ident(ty)) {
                if let (Some(c1), Some(c2), Some(name)) =
                    (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
                {
                    if c1.is_punct(':')
                        && c2.is_punct(':')
                        && ALLOC_PATHS
                            .iter()
                            .any(|(ty, m)| t.is_ident(ty) && name.is_ident(m))
                    {
                        emit(
                            f,
                            ALLOC_FREEDOM,
                            t.line,
                            t.col,
                            format!(
                                "`{}::{}` allocates inside a `no_alloc` region (declared at line {})",
                                t.text, name.text, region.line
                            ),
                            out,
                        );
                    }
                }
            }
            // `vec![…]` / `format!(…)`.
            if toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
                && ALLOC_MACROS.iter().any(|m| t.is_ident(m))
            {
                emit(
                    f,
                    ALLOC_FREEDOM,
                    t.line,
                    t.col,
                    format!(
                        "`{}!` allocates inside a `no_alloc` region (declared at line {})",
                        t.text, region.line
                    ),
                    out,
                );
            }
            // `.method(` growth/copy calls.
            if t.is_punct('.') {
                if let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if paren.is_punct('(') && ALLOC_METHODS.iter().any(|m| name.is_ident(m)) {
                        emit(
                            f,
                            ALLOC_FREEDOM,
                            name.line,
                            name.col,
                            format!(
                                "`.{}()` allocates inside a `no_alloc` region (declared at line {})",
                                name.text, region.line
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::source::{FileClass, SourceFile};

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src, FileClass::default());
        let pf = parse_file(&f);
        let mut out = Vec::new();
        run(&f, &pf, &mut out);
        out
    }

    #[test]
    fn allocations_inside_a_region_fire() {
        let out = check(
            "fn f() {\n    // lint: region(no_alloc)\n    {\n        let v = Vec::new();\n        let s = format!(\"x\");\n        buf.push(1);\n        let c = buf.clone();\n    }\n}\n",
        );
        assert_eq!(out.len(), 4, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "alloc-freedom"));
    }

    #[test]
    fn allocations_outside_the_region_are_fine() {
        let out = check(
            "fn f() {\n    let v = Vec::new();\n    // lint: region(no_alloc)\n    {\n        let x = a + b;\n    }\n    v.push(1);\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn index_math_and_unsafe_reads_are_allowed() {
        let out = check(
            "fn f() {\n    // lint: region(no_alloc)\n    {\n        let x = unsafe { *p.add(1) };\n        acc[0] = acc[0] + x;\n    }\n}\n",
        );
        // `.add(` is pointer arithmetic, not Trace::add — but the rule is
        // lexical, so `.add(` would fire only as a NAME_API in the
        // registry rule, not here; nothing in this region allocates.
        assert!(out.is_empty(), "{out:?}");
    }
}
