//! **determinism**: `Instant::now`, `SystemTime::now`, `thread::sleep`, and
//! `process::exit` are forbidden outside the whitelist (`crates/trace` —
//! home of the sanctioned `trace::Clock` — plus `crates/sim`,
//! `crates/bench`, and CLI entry points under `src/bin` and `examples/`).
//! The seeded fault-replay plane (PR 2) guarantees bit-for-bit reproduction
//! of failure schedules; a stray wall-clock read or sleep on the hot path
//! makes behavior depend on machine load instead of the seed. Pipeline code
//! that needs timestamps reads them through `salient_trace::Clock` (real
//! monotonic in production, a `VirtualClock` in tests), so instrumentation
//! no longer needs per-site suppressions; only genuinely time-dependent
//! code (deadline loops, injected delays) carries a
//! `// lint: allow(determinism, reason)` suppression.

use super::{emit, matches_path, DETERMINISM};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// The forbidden call paths (matched as `::`-separated token sequences, so
/// `std::time::Instant::now` matches via its `Instant::now` suffix).
const FORBIDDEN: &[(&[&str], &str)] = &[
    (&["Instant", "now"], "wall-clock read"),
    (&["SystemTime", "now"], "wall-clock read"),
    (&["thread", "sleep"], "scheduling-dependent delay"),
    (&["process", "exit"], "process exit bypasses Drop and supervision"),
];

/// Runs the rule over one file (no-op for whitelisted and test files).
pub fn run(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.class.time_whitelisted || f.class.test_file {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        if f.in_test_code(toks[i].line) {
            continue;
        }
        for (path, why) in FORBIDDEN {
            if matches_path(f, i, path) {
                let t = &toks[i];
                emit(
                    f,
                    DETERMINISM,
                    t.line,
                    t.col,
                    format!(
                        "`{}` outside the determinism whitelist ({why}); route time \
                         through `salient_trace::Clock`, move it to sim/bench/CLI \
                         code, or suppress with a reason",
                        path.join("::")
                    ),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};

    fn check(src: &str, class: FileClass) -> Vec<Diagnostic> {
        let f = SourceFile::parse("t.rs".into(), src, class);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn all_four_patterns_fire() {
        let src = "fn f() {\n    let t = Instant::now();\n    let w = std::time::SystemTime::now();\n    std::thread::sleep(d);\n    std::process::exit(1);\n}\n";
        let diags = check(src, FileClass::default());
        assert_eq!(diags.len(), 4);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn whitelisted_files_are_exempt() {
        let class = FileClass { time_whitelisted: true, ..Default::default() };
        assert!(check("fn f() { Instant::now(); }", class).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[test]\nfn t() { std::thread::sleep(d); }\n";
        assert!(check(src, FileClass::default()).is_empty());
    }

    #[test]
    fn message_names_the_sanctioned_clock() {
        let diags = check("fn f() { Instant::now(); }", FileClass::default());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("salient_trace::Clock"));
    }

    #[test]
    fn an_instant_variable_is_not_a_call() {
        // Only the `Instant::now` path matters; mentioning the type is fine.
        let src = "fn f(deadline: Instant) -> Instant { deadline }\n";
        assert!(check(src, FileClass::default()).is_empty());
    }
}
