//! **half-conversion**: scalar `F16::from_f32(..)` / `.to_f32()` calls are
//! forbidden in designated hot-path modules. One conversion per element in a
//! per-row or per-edge loop is exactly the pattern the mixed-precision work
//! removed: the bulk kernels (`widen_into` / `narrow_into` and the F16C
//! vectorized paths behind them) convert whole rows at a time, so any scalar
//! conversion that survives in the sampler, batch prep, the tensor kernels,
//! or the DDP communicator is either a performance bug or needs a reasoned
//! `// lint: allow(half-conversion, ...)` suppression explaining why the
//! access pattern makes bulk conversion impossible (e.g. a strided read that
//! touches one element per cache line). Test code is exempt.

use super::{emit, HALF_CONVERSION};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Runs the rule over one file (no-op unless the file is hot-path).
pub fn run(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.class.hot_path || f.class.test_file {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if f.in_test_code(t.line) {
            continue;
        }
        // `.to_f32()` — the scalar widening method. `to_f32_vec` and other
        // bulk helpers are distinct identifiers and never match.
        if t.is_punct('.') {
            if let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) {
                if paren.is_punct('(') && name.is_ident("to_f32") {
                    emit(
                        f,
                        HALF_CONVERSION,
                        name.line,
                        name.col,
                        "scalar `.to_f32()` in a hot-path module: convert whole rows with \
                         `widen_into` (F16C-vectorized) or suppress with a reason"
                            .to_string(),
                        out,
                    );
                }
            }
        }
        // `F16::from_f32(` — the scalar narrowing constructor. The qualifier
        // is required so bulk constructors on other types (e.g.
        // `FeatureSlab::from_f32`) never match.
        if t.is_ident("from_f32")
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("F16")
        {
            emit(
                f,
                HALF_CONVERSION,
                t.line,
                t.col,
                "scalar `F16::from_f32(..)` in a hot-path module: convert whole rows with \
                 `narrow_into` (F16C-vectorized) or suppress with a reason"
                    .to_string(),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};

    fn hot(src: &str) -> Vec<Diagnostic> {
        let class = FileClass { hot_path: true, ..Default::default() };
        let f = SourceFile::parse("hot.rs".into(), src, class);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn scalar_conversions_fire() {
        let diags = hot(
            "fn f(h: &[F16]) -> f32 {\n    let x = h[0].to_f32();\n    let y = F16::from_f32(x);\n    y.to_f32()\n}\n",
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == HALF_CONVERSION));
    }

    #[test]
    fn bulk_helpers_do_not_fire() {
        assert!(hot(
            "fn f(h: &[F16], out: &mut [f32]) {\n    widen_into(h, out);\n    let v = rows.to_f32_vec();\n    let s = FeatureSlab::from_f32(dtype, out);\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn non_hot_files_are_skipped() {
        let f = SourceFile::parse(
            "cold.rs".into(),
            "fn f(h: F16) -> f32 { h.to_f32() }",
            FileClass::default(),
        );
        let mut out = Vec::new();
        run(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = hot("#[cfg(test)]\nmod tests {\n    fn t() { let x = h.to_f32(); }\n}\n");
        assert!(diags.is_empty());
    }

    #[test]
    fn suppression_with_reason_marks_not_counts() {
        let diags = hot(
            "fn at(d: &[F16], i: usize) -> f32 {\n    // lint: allow(half-conversion, strided read touches one element per cache line)\n    d[i].to_f32()\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed.is_some());
    }
}
