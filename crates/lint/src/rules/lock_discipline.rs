//! **lock-discipline**: two checks over the workspace's `Mutex` / `RwLock` /
//! atomics usage.
//!
//! 1. **Lock-order cycles.** Per function, the rule tracks guard liveness:
//!    a `let`-bound guard from `x.lock()` lives until its enclosing block
//!    closes; a temporary guard (no `let`) lives until the end of the
//!    statement. Acquiring lock B while guard A is live records the edge
//!    `A → B`. Calls made while a guard is held propagate through a static
//!    call approximation (free calls resolve same-file first, then to a
//!    unique workspace match; method calls resolve same-file only, and only
//!    on a literal `self.` receiver — `anything.len()` must never alias a
//!    same-named locking method on another type), adding
//!    edges from the held lock to every lock the callee transitively
//!    acquires. A cycle in the resulting graph — including a self-loop,
//!    which with `std::sync::Mutex` is an immediate deadlock — fails the
//!    lint. Lock identity is approximated by `crate::field_name` (the
//!    receiver field the guard method is called on), which is exact for
//!    this workspace's named lock fields and documented as the supported
//!    idiom.
//! 2. **Relaxed justification.** Every `Ordering::Relaxed` use must carry a
//!    comment (same line or the two lines above) that mentions "relaxed",
//!    explaining why no stronger ordering is needed.
//!
//! `.read()` / `.write()` count as acquisitions only in files that mention
//! `RwLock`, so `io::Read`/`Write` calls never produce false locks.

use super::{emit, LOCK_DISCIPLINE};
use crate::diag::Diagnostic;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// A lock acquisition site inside one function.
#[derive(Clone, Debug)]
struct Acquire {
    /// Qualified lock name (`crate::field`).
    lock: String,
    line: usize,
    col: usize,
    /// Locks held (live guards) at this acquisition, in order taken.
    held: Vec<String>,
}

/// A call made while at least one guard was live.
#[derive(Clone, Debug)]
struct HeldCall {
    callee: String,
    /// True for `.name(...)` method calls (resolved same-file only).
    method: bool,
    line: usize,
    col: usize,
    held: Vec<String>,
}

/// Per-function summary used by the global pass.
#[derive(Clone, Debug)]
pub struct FnSummary {
    file: String,
    name: String,
    acquires: Vec<Acquire>,
    held_calls: Vec<HeldCall>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "in", "as", "unsafe",
    "else", "break", "continue", "where", "impl", "dyn", "ref", "mut", "pub", "use", "box",
    "await", "Some", "Ok", "Err", "None",
];

/// Derives the qualifying crate prefix from a workspace-relative path
/// (`crates/tensor/src/pool.rs` → `tensor`, `src/bin/x.rs` → `root`).
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(krate)) => krate.to_string(),
        _ => "root".to_string(),
    }
}

/// Extracts function summaries from one file.
pub fn extract(f: &SourceFile) -> Vec<FnSummary> {
    let toks = &f.lexed.tokens;
    let krate = crate_of(&f.path);
    let file_has_rwlock = toks.iter().any(|t| t.is_ident("RwLock"));
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !f.in_test_code(toks[i].line) {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == crate::lexer::TokKind::Ident {
                    // Find the body's opening brace; a `;` first means a
                    // bodyless declaration (trait method, extern).
                    let mut j = i + 2;
                    let mut paren_depth = 0usize;
                    let body_open = loop {
                        match toks.get(j) {
                            Some(t) if t.is_punct('(') || t.is_punct('[') => paren_depth += 1,
                            Some(t) if t.is_punct(')') || t.is_punct(']') => {
                                paren_depth = paren_depth.saturating_sub(1)
                            }
                            Some(t) if t.is_punct('{') && paren_depth == 0 => break Some(j),
                            Some(t) if t.is_punct(';') && paren_depth == 0 => break None,
                            None => break None,
                            _ => {}
                        }
                        j += 1;
                    };
                    if let Some(open) = body_open {
                        let (summary, end) = scan_body(
                            f,
                            &krate,
                            name_tok.text.clone(),
                            open,
                            file_has_rwlock,
                        );
                        out.push(summary);
                        i = end;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// A live guard during the body walk.
#[derive(Debug)]
struct Guard {
    lock: String,
    /// `Some(depth)` for a `let`-bound guard (dies when the block at
    /// `depth` closes); `None` for a temporary (dies at the next `;`).
    block_depth: Option<usize>,
}

/// Walks one function body tracking guard liveness; returns the summary and
/// the token index of the closing brace.
fn scan_body(
    f: &SourceFile,
    krate: &str,
    fn_name: String,
    open: usize,
    file_has_rwlock: bool,
) -> (FnSummary, usize) {
    let toks = &f.lexed.tokens;
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut acquires = Vec::new();
    let mut held_calls = Vec::new();
    // Index of the token opening the current statement (after `;`/`{`/`}`).
    let mut stmt_start = open + 1;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = j + 1;
        } else if t.is_punct('}') {
            depth -= 1;
            // Close of a block ends the statement it terminates and every
            // guard bound inside it.
            guards.retain(|g| match g.block_depth {
                Some(d) => d <= depth,
                None => false,
            });
            stmt_start = j + 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(';') {
            guards.retain(|g| g.block_depth.is_some());
            stmt_start = j + 1;
        } else if t.kind == crate::lexer::TokKind::Ident
            && toks.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && !f.in_test_code(t.line)
        {
            let is_method = j > 0 && toks[j - 1].is_punct('.');
            let name = t.text.as_str();
            let is_acquire = is_method
                && (name == "lock" || (file_has_rwlock && (name == "read" || name == "write")));
            if is_acquire {
                // Receiver field: the ident before the `.`.
                let recv = toks
                    .get(j.wrapping_sub(2))
                    .filter(|r| r.kind == crate::lexer::TokKind::Ident)
                    .map(|r| r.text.clone());
                if let Some(field) = recv {
                    let lock = format!("{krate}::{field}");
                    let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                    acquires.push(Acquire { lock: lock.clone(), line: t.line, col: t.col, held });
                    // `let`-bound iff the statement starts with `let`.
                    let is_let = toks
                        .get(stmt_start)
                        .map(|s| s.is_ident("let"))
                        .unwrap_or(false);
                    guards.push(Guard {
                        lock,
                        block_depth: if is_let { Some(depth) } else { None },
                    });
                }
            } else if !guards.is_empty()
                && !NON_CALL_IDENTS.contains(&name)
                && !(toks.get(j + 1).map(|n| n.is_punct('!')).unwrap_or(false))
            {
                // Method calls count only on a literal `self.` receiver;
                // resolving `anything.len()` by bare name would alias
                // unrelated types' methods.
                let self_recv = toks
                    .get(j.wrapping_sub(2))
                    .map(|r| r.is_ident("self"))
                    .unwrap_or(false);
                if !is_method || self_recv {
                    held_calls.push(HeldCall {
                        callee: name.to_string(),
                        method: is_method,
                        line: t.line,
                        col: t.col,
                        held: guards.iter().map(|g| g.lock.clone()).collect(),
                    });
                }
            }
        }
        j += 1;
    }
    (
        FnSummary { file: f.path.clone(), name: fn_name, acquires, held_calls },
        j,
    )
}

/// One lock-order edge with its provenance.
#[derive(Clone, Debug)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
    col: usize,
    via: String,
}

/// Global pass: builds the lock-order graph from all function summaries and
/// reports cycles. `files` maps path → parsed file (for suppressions).
pub fn check_order(
    summaries: &[FnSummary],
    files: &BTreeMap<String, &SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    // Name index for call resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, s) in summaries.iter().enumerate() {
        by_name.entry(s.name.as_str()).or_default().push(idx);
    }
    let resolve = |call: &HeldCall, from_file: &str| -> Option<usize> {
        let cands = by_name.get(call.callee.as_str())?;
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| summaries[i].file == from_file)
            .collect();
        match (same_file.len(), call.method) {
            (1, _) => Some(same_file[0]),
            (0, false) if cands.len() == 1 => Some(cands[0]),
            _ => None,
        }
    };

    // Transitive acquire sets, cycle-safe memoized DFS over the call graph.
    fn acquired_set<'a>(
        idx: usize,
        summaries: &'a [FnSummary],
        resolve: &dyn Fn(&HeldCall, &str) -> Option<usize>,
        memo: &mut Vec<Option<BTreeSet<String>>>,
        visiting: &mut Vec<bool>,
    ) -> BTreeSet<String> {
        if let Some(m) = &memo[idx] {
            return m.clone();
        }
        if visiting[idx] {
            return BTreeSet::new();
        }
        visiting[idx] = true;
        let mut set: BTreeSet<String> =
            summaries[idx].acquires.iter().map(|a| a.lock.clone()).collect();
        let calls: Vec<HeldCall> = summaries[idx].held_calls.clone();
        for c in &calls {
            if let Some(ci) = resolve(c, &summaries[idx].file) {
                set.extend(acquired_set(ci, summaries, resolve, memo, visiting));
            }
        }
        visiting[idx] = false;
        memo[idx] = Some(set.clone());
        set
    }

    let mut memo: Vec<Option<BTreeSet<String>>> = vec![None; summaries.len()];
    let mut visiting = vec![false; summaries.len()];

    // Collect edges.
    let mut edges: Vec<Edge> = Vec::new();
    for s in summaries {
        for a in &s.acquires {
            for h in &a.held {
                edges.push(Edge {
                    from: h.clone(),
                    to: a.lock.clone(),
                    file: s.file.clone(),
                    line: a.line,
                    col: a.col,
                    via: format!("in `{}`", s.name),
                });
            }
        }
        for c in &s.held_calls {
            if let Some(ci) = resolve(c, &s.file) {
                let acq = acquired_set(ci, summaries, &resolve, &mut memo, &mut visiting);
                for h in &c.held {
                    for l in &acq {
                        edges.push(Edge {
                            from: h.clone(),
                            to: l.clone(),
                            file: s.file.clone(),
                            line: c.line,
                            col: c.col,
                            via: format!("in `{}` via call to `{}`", s.name, c.callee),
                        });
                    }
                }
            }
        }
    }

    // Cycle detection: DFS with a path stack; dedupe cycles by node set.
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: BTreeSet<&str> = edges.iter().flat_map(|e| [e.from.as_str(), e.to.as_str()]).collect();
    for &start in &nodes {
        // Bounded DFS from each node looking for a path back to it.
        let mut stack: Vec<(&str, Vec<&Edge>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() > nodes.len() {
                continue;
            }
            for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                if e.to == start {
                    let mut cyc = path.clone();
                    cyc.push(e);
                    let mut key: Vec<String> = cyc.iter().map(|e| e.from.clone()).collect();
                    key.sort();
                    if reported.insert(key) {
                        let desc: Vec<String> = cyc
                            .iter()
                            .map(|e| format!("{} → {} ({}, {}:{})", e.from, e.to, e.via, e.file, e.line))
                            .collect();
                        let site = cyc[0];
                        let diag_file = files.get(site.file.as_str());
                        let message = format!(
                            "lock-order cycle (potential deadlock): {}",
                            desc.join("; ")
                        );
                        match diag_file {
                            Some(f) => emit(f, LOCK_DISCIPLINE, site.line, site.col, message, out),
                            None => out.push(Diagnostic {
                                rule: LOCK_DISCIPLINE,
                                file: site.file.clone(),
                                line: site.line,
                                col: site.col,
                                message,
                                snippet: String::new(),
                                suppressed: None,
                            }),
                        }
                    }
                } else if !path.iter().any(|p| p.from == e.to) && e.to != node {
                    let mut p = path.clone();
                    p.push(e);
                    stack.push((e.to.as_str(), p));
                }
            }
        }
    }
}

/// The Relaxed-justification half of the rule, per file.
pub fn check_relaxed(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        if super::matches_path(f, i, &["Ordering", "Relaxed"]) && !f.in_test_code(toks[i].line) {
            let line = toks[i].line;
            let justified = f.comment_in_range(line.saturating_sub(2), line, |text| {
                text.to_ascii_lowercase().contains("relaxed")
            });
            if !justified {
                emit(
                    f,
                    LOCK_DISCIPLINE,
                    line,
                    toks[i].col,
                    "`Ordering::Relaxed` without a justification comment (same line or the two \
                     lines above, mentioning why relaxed ordering is sufficient)"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};

    fn summaries(src: &str) -> (Vec<FnSummary>, SourceFile) {
        let f = SourceFile::parse("crates/x/src/a.rs".into(), src, FileClass::default());
        (extract(&f), f)
    }

    #[test]
    fn nested_acquire_records_an_edge() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(e);\n    let b = self.beta.lock().unwrap_or_else(e);\n}\n";
        let (s, _) = summaries(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].acquires.len(), 2);
        assert_eq!(s[0].acquires[1].held, vec!["x::alpha".to_string()]);
    }

    #[test]
    fn inner_block_guard_dies_at_block_close() {
        let src = "fn f(&self) {\n    { let a = self.alpha.lock().x(); }\n    let b = self.beta.lock().x();\n}\n";
        let (s, _) = summaries(src);
        assert!(s[0].acquires[1].held.is_empty(), "{:?}", s[0].acquires);
    }

    #[test]
    fn temporary_guard_dies_at_semicolon() {
        let src = "fn f(&self) {\n    self.alpha.lock().x();\n    let b = self.beta.lock().x();\n}\n";
        let (s, _) = summaries(src);
        assert!(s[0].acquires[1].held.is_empty());
    }

    #[test]
    fn cycle_across_two_functions_is_detected() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().e();\n    let b = self.beta.lock().e();\n}\nfn g(&self) {\n    let b = self.beta.lock().e();\n    let a = self.alpha.lock().e();\n}\n";
        let (s, f) = summaries(src);
        let mut files = BTreeMap::new();
        files.insert(f.path.clone(), &f);
        let mut out = Vec::new();
        check_order(&s, &files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn ordered_acquisition_has_no_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().e();\n    let b = self.beta.lock().e();\n}\nfn g(&self) {\n    let a = self.alpha.lock().e();\n    let b = self.beta.lock().e();\n}\n";
        let (s, f) = summaries(src);
        let mut files = BTreeMap::new();
        files.insert(f.path.clone(), &f);
        let mut out = Vec::new();
        check_order(&s, &files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reentrant_self_lock_via_call_is_a_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().e();\n    self.helper();\n}\nfn helper(&self) {\n    let a = self.alpha.lock().e();\n}\n";
        let (s, f) = summaries(src);
        let mut files = BTreeMap::new();
        files.insert(f.path.clone(), &f);
        let mut out = Vec::new();
        check_order(&s, &files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("helper"), "{out:?}");
    }

    #[test]
    fn read_write_only_count_with_rwlock_in_file() {
        let io_src = "fn f(&self) { let n = file.read(buf).e(); socket.write(buf).e(); }\n";
        let (s, _) = summaries(io_src);
        assert!(s[0].acquires.is_empty());
        let rw_src = "struct S { m: RwLock<u32> }\nfn f(&self) { let g = self.m.read().e(); let h = self.q.write().e(); }\n";
        let (s, _) = summaries(rw_src);
        assert_eq!(s[0].acquires.len(), 2);
    }

    #[test]
    fn relaxed_without_comment_is_flagged() {
        let f = SourceFile::parse(
            "t.rs".into(),
            "fn f() {\n    x.load(Ordering::Relaxed);\n}\n",
            FileClass::default(),
        );
        let mut out = Vec::new();
        check_relaxed(&f, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn relaxed_with_nearby_comment_passes() {
        let f = SourceFile::parse(
            "t.rs".into(),
            "fn f() {\n    // relaxed: monotone counter, no ordering needed.\n    x.load(Ordering::Relaxed);\n}\n",
            FileClass::default(),
        );
        let mut out = Vec::new();
        check_relaxed(&f, &mut out);
        assert!(out.is_empty());
    }
}
