//! The rule catalog.
//!
//! Every rule walks a [`SourceFile`]'s token stream and emits
//! [`Diagnostic`]s through [`emit`], which applies inline
//! `// lint: allow(rule, reason)` suppressions uniformly.

pub mod determinism;
pub mod half_conversion;
pub mod lock_discipline;
pub mod panic_freedom;
pub mod unsafe_audit;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule id: `unsafe` without a `// SAFETY:` justification.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Rule id: panicking constructs in designated hot-path modules.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule id: wall-clock / sleep / exit outside the whitelist.
pub const DETERMINISM: &str = "determinism";
/// Rule id: lock-order cycles and unjustified `Ordering::Relaxed`.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule id: scalar f16↔f32 conversions in designated hot-path modules.
pub const HALF_CONVERSION: &str = "half-conversion";
/// Rule id: non-path dependencies in a manifest.
pub const DEPS: &str = "deps";
/// Rule id: malformed suppressions (missing reason). Not suppressible.
pub const SUPPRESSION: &str = "suppression";

/// Builds a diagnostic at `line:col`, resolving suppressions.
pub fn emit(
    f: &SourceFile,
    rule: &'static str,
    line: usize,
    col: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    out.push(Diagnostic {
        rule,
        file: f.path.clone(),
        line,
        col,
        message,
        snippet: f.line(line).trim().to_string(),
        suppressed: f.suppression_for(rule, line),
    });
}

/// Reports suppressions whose reason string is empty — the suppression
/// syntax itself is an invariant: `// lint: allow(rule, reason)`.
pub fn check_suppression_hygiene(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for s in &f.suppressions {
        if s.reason.is_empty() {
            out.push(Diagnostic {
                rule: SUPPRESSION,
                file: f.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression for `{}` is missing a reason: use `// lint: allow({}, <why this is sound>)`",
                    s.rule, s.rule
                ),
                snippet: f.line(s.line).trim().to_string(),
                suppressed: None,
            });
        }
    }
}

/// True when tokens starting at `i` spell the `::`-separated path segments
/// in `path` (e.g. `&["Instant", "now"]` matches `Instant :: now`).
pub fn matches_path(f: &SourceFile, i: usize, path: &[&str]) -> bool {
    let toks = &f.lexed.tokens;
    let mut j = i;
    for (seg_idx, seg) in path.iter().enumerate() {
        if !toks.get(j).map(|t| t.is_ident(seg)).unwrap_or(false) {
            return false;
        }
        j += 1;
        if seg_idx + 1 < path.len() {
            if !(toks.get(j).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false))
            {
                return false;
            }
            j += 2;
        }
    }
    true
}
