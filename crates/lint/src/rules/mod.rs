//! The rule catalog.
//!
//! Every rule walks a [`SourceFile`]'s token stream and emits
//! [`Diagnostic`]s through [`emit`], which applies inline
//! `// lint: allow(rule, reason)` suppressions uniformly.

pub mod alloc_freedom;
pub mod determinism;
pub mod half_conversion;
pub mod lock_discipline;
pub mod name_registry;
pub mod panic_freedom;
pub mod panic_reachability;
pub mod unsafe_audit;

use crate::diag::Diagnostic;
use crate::parser::ParsedFile;
use crate::source::SourceFile;

/// Rule id: `unsafe` without a `// SAFETY:` justification.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Rule id: panicking constructs in designated hot-path modules.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule id: panicking constructs transitively reachable from a declared
/// `// lint: entry(panic-reachability)` hot-path entry point.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Rule id: stringly-typed trace/fault names, dead registry constants,
/// incomplete exporter `ALL` lists.
pub const NAME_REGISTRY: &str = "name-registry";
/// Rule id: allocation inside a `// lint: region(no_alloc)` block.
pub const ALLOC_FREEDOM: &str = "alloc-freedom";
/// Rule id: wall-clock / sleep / exit outside the whitelist.
pub const DETERMINISM: &str = "determinism";
/// Rule id: lock-order cycles and unjustified `Ordering::Relaxed`.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule id: scalar f16↔f32 conversions in designated hot-path modules.
pub const HALF_CONVERSION: &str = "half-conversion";
/// Rule id: non-path dependencies in a manifest.
pub const DEPS: &str = "deps";
/// Rule id: malformed, unused, or unattached lint annotations. Not
/// suppressible.
pub const SUPPRESSION: &str = "suppression";

/// Every rule id, in report order (the per-rule count table).
pub const ALL_RULES: &[&str] = &[
    UNSAFE_AUDIT,
    PANIC_FREEDOM,
    PANIC_REACHABILITY,
    NAME_REGISTRY,
    ALLOC_FREEDOM,
    DETERMINISM,
    LOCK_DISCIPLINE,
    HALF_CONVERSION,
    DEPS,
    SUPPRESSION,
];

/// Builds a diagnostic at `line:col`, resolving suppressions.
pub fn emit(
    f: &SourceFile,
    rule: &'static str,
    line: usize,
    col: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    out.push(Diagnostic {
        rule,
        file: f.path.clone(),
        line,
        col,
        message,
        snippet: f.line(line).trim().to_string(),
        suppressed: f.suppression_for(rule, line),
    });
}

/// Reports suppressions whose reason string is empty — the suppression
/// syntax itself is an invariant: `// lint: allow(rule, reason)`.
pub fn check_suppression_hygiene(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for s in &f.suppressions {
        if s.reason.is_empty() {
            out.push(Diagnostic {
                rule: SUPPRESSION,
                file: f.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression for `{}` is missing a reason: use `// lint: allow({}, <why this is sound>)`",
                    s.rule, s.rule
                ),
                snippet: f.line(s.line).trim().to_string(),
                suppressed: None,
            });
        }
    }
}

/// Reports suppressions that no longer silence anything. Must run after
/// **every** other rule (including the cross-file passes), because rules
/// mark a suppression used when they resolve a diagnostic against it.
pub fn check_unused_suppressions(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for s in &f.suppressions {
        if !s.used.get() {
            out.push(Diagnostic {
                rule: SUPPRESSION,
                file: f.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression for `{}` no longer silences any finding — delete it",
                    s.rule
                ),
                snippet: f.line(s.line).trim().to_string(),
                suppressed: None,
            });
        }
    }
}

/// Reports malformed lint annotations: an `// lint: entry(...)` naming an
/// unknown rule, or a `// lint: region(...)` that attaches to no block or
/// names an unknown region kind.
pub fn check_annotations(f: &SourceFile, pf: &ParsedFile, out: &mut Vec<Diagnostic>) {
    for e in &pf.entries {
        if e.rule != PANIC_REACHABILITY {
            out.push(Diagnostic {
                rule: SUPPRESSION,
                file: f.path.clone(),
                line: e.line,
                col: 1,
                message: format!(
                    "`lint: entry({})` names an unknown rule — only `panic-reachability` \
                     takes entry declarations",
                    e.rule
                ),
                snippet: f.line(e.line).trim().to_string(),
                suppressed: None,
            });
        }
    }
    for r in &pf.regions {
        if r.kind != "no_alloc" {
            out.push(Diagnostic {
                rule: SUPPRESSION,
                file: f.path.clone(),
                line: r.line,
                col: 1,
                message: format!(
                    "`lint: region({})` names an unknown region kind — only `no_alloc` exists",
                    r.kind
                ),
                snippet: f.line(r.line).trim().to_string(),
                suppressed: None,
            });
        } else if r.body.is_none() {
            out.push(Diagnostic {
                rule: SUPPRESSION,
                file: f.path.clone(),
                line: r.line,
                col: 1,
                message: "`lint: region(no_alloc)` attaches to no block — put it on or \
                          directly above the `{` it governs"
                    .to_string(),
                snippet: f.line(r.line).trim().to_string(),
                suppressed: None,
            });
        }
    }
}

/// True when tokens starting at `i` spell the `::`-separated path segments
/// in `path` (e.g. `&["Instant", "now"]` matches `Instant :: now`).
pub fn matches_path(f: &SourceFile, i: usize, path: &[&str]) -> bool {
    let toks = &f.lexed.tokens;
    let mut j = i;
    for (seg_idx, seg) in path.iter().enumerate() {
        if !toks.get(j).map(|t| t.is_ident(seg)).unwrap_or(false) {
            return false;
        }
        j += 1;
        if seg_idx + 1 < path.len() {
            if !(toks.get(j).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false))
            {
                return false;
            }
            j += 2;
        }
    }
    true
}
