//! **name-registry**: trace and fault names are a closed, declared
//! vocabulary. Three checks keep `trace::names`, `fault::sites`, the
//! exporter, and every call site from drifting apart:
//!
//! 1. **No stringly-typed names** — a string literal passed directly to a
//!    span/counter/gauge/histogram/event or fault API must instead be a
//!    constant from `crates/trace/src/names.rs` or `fault::sites`. When
//!    the literal's value is already registered, the finding names the
//!    constant to use.
//! 2. **No dead constants** — every registered constant must be
//!    referenced outside its declaring file (otherwise it is registry
//!    rot and gets deleted).
//! 3. **Complete `ALL` lists** — every constant in a registry module
//!    must also appear in that module's `ALL` slice (the exporter's
//!    known-name list), i.e. at least twice in the declaring file.
//!
//! The `trace`, `fault`, and `lint` crates themselves are exempt from
//! check 1: their unit tests and rule tables exercise the machinery with
//! deliberately synthetic names.

use super::{emit, NAME_REGISTRY};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::ParsedFile;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// File that declares the trace-name registry.
const NAMES_FILE: &str = "crates/trace/src/names.rs";
/// File whose `sites` module declares the fault-site registry.
const FAULT_FILE: &str = "crates/fault/src/lib.rs";

/// APIs whose first argument is a registered name.
const NAME_APIS: &[&str] = &[
    // trace::Trace / Registry
    "span", "span_batch", "record_span", "instant", "counter", "gauge",
    "histogram", "add", "observe",
    // fault injection + plan builders
    "point", "decide", "fire", "panic_at", "delay_at", "drop_at", "prob",
];

/// Crates whose internals may use raw name strings (they implement or
/// test the machinery itself).
const EXEMPT_PREFIXES: &[&str] = &["crates/trace/", "crates/fault/", "crates/lint/"];

struct RegConst {
    name: String,
    value: String,
    /// `names::spans::EPOCH`-style display path for fix suggestions.
    display: String,
    file: usize,
    line: usize,
}

/// Runs all three checks workspace-wide.
pub fn run(files: &[SourceFile], parsed: &[ParsedFile], out: &mut Vec<Diagnostic>) {
    // -- Collect the registry -------------------------------------------
    let mut registry: Vec<RegConst> = Vec::new();
    for (fi, pf) in parsed.iter().enumerate() {
        if pf.path == NAMES_FILE {
            for c in &pf.consts {
                let module = c.module.join("::");
                registry.push(RegConst {
                    name: c.name.clone(),
                    value: c.value.clone(),
                    display: if module.is_empty() {
                        format!("names::{}", c.name)
                    } else {
                        format!("names::{}::{}", module, c.name)
                    },
                    file: fi,
                    line: c.line,
                });
            }
        } else if pf.path == FAULT_FILE {
            for c in &pf.consts {
                if c.module.last().map(|m| m.as_str()) == Some("sites") {
                    registry.push(RegConst {
                        name: c.name.clone(),
                        value: c.value.clone(),
                        display: format!("fault::sites::{}", c.name),
                        file: fi,
                        line: c.line,
                    });
                }
            }
        }
    }
    let by_value: BTreeMap<&str, &RegConst> =
        registry.iter().map(|r| (r.value.as_str(), r)).collect();

    // -- Check 1: stringly-typed names at API call sites ----------------
    for f in files {
        if EXEMPT_PREFIXES.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !NAME_APIS.contains(&t.text.as_str()) {
                continue;
            }
            let (Some(paren), Some(arg)) = (toks.get(i + 1), toks.get(i + 2)) else {
                continue;
            };
            if !paren.is_punct('(') || arg.kind != TokKind::Literal || !arg.text.starts_with('"') {
                continue;
            }
            let value = arg.text.trim_matches('"');
            let hint = match by_value.get(value) {
                Some(r) => format!("use `{}`", r.display),
                None => "declare it in trace::names / fault::sites and use the constant"
                    .to_string(),
            };
            emit(
                f,
                NAME_REGISTRY,
                arg.line,
                arg.col,
                format!(
                    "stringly-typed name \"{}\" passed to `{}`: {}",
                    value, t.text, hint
                ),
                out,
            );
        }
    }

    // -- Checks 2 + 3: dead constants, incomplete ALL lists -------------
    // Which files mention each registry identifier, and how often the
    // declaring file itself repeats it (decl + ALL-slice membership).
    for r in &registry {
        let mut used_elsewhere = false;
        let mut own_file_count = 0usize;
        for (fi, f) in files.iter().enumerate() {
            let hits = f
                .lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Ident && t.text == r.name)
                .count();
            if fi == r.file {
                own_file_count = hits;
            } else if hits > 0 {
                used_elsewhere = true;
            }
        }
        let f = &files[r.file];
        if !used_elsewhere {
            emit(
                f,
                NAME_REGISTRY,
                r.line,
                1,
                format!(
                    "`{}` (\"{}\") is declared but never used outside the registry — \
                     delete it or instrument the site it was meant for",
                    r.display, r.value
                ),
                out,
            );
        }
        if own_file_count < 2 {
            emit(
                f,
                NAME_REGISTRY,
                r.line,
                1,
                format!(
                    "`{}` is missing from its module's `ALL` slice — the exporter's \
                     known-name list must stay complete",
                    r.display
                ),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::source::{FileClass, SourceFile};

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let sfs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse((*p).into(), s, FileClass::default()))
            .collect();
        let parsed: Vec<ParsedFile> = sfs.iter().map(parse_file).collect();
        let mut out = Vec::new();
        run(&sfs, &parsed, &mut out);
        out
    }

    const NAMES: &str = "pub mod spans {\n    pub const EPOCH: &str = \"epoch\";\n    pub const ALL: &[&str] = &[EPOCH];\n}\n";

    #[test]
    fn string_literal_at_api_site_suggests_the_constant() {
        let out = check(&[
            (NAMES_FILE, NAMES),
            ("crates/core/src/train.rs", "fn f(t: &Trace) { t.span(names::spans::EPOCH); }\n"),
            ("examples/demo.rs", "fn g(t: &Trace) { t.span(\"epoch\"); }\n"),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].file.contains("demo"));
        assert!(out[0].message.contains("names::spans::EPOCH"), "{}", out[0].message);
    }

    #[test]
    fn unregistered_literal_is_flagged_too() {
        let out = check(&[
            (NAMES_FILE, NAMES),
            ("crates/core/src/train.rs", "fn f(t: &Trace) { t.span(names::spans::EPOCH); t.counter(\"mystery\"); }\n"),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("declare it"), "{}", out[0].message);
    }

    #[test]
    fn dead_constant_is_flagged() {
        let out = check(&[(
            NAMES_FILE,
            "pub mod spans {\n    pub const UNUSED: &str = \"nobody\";\n    pub const ALL: &[&str] = &[UNUSED];\n}\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("never used"), "{}", out[0].message);
    }

    #[test]
    fn constant_missing_from_all_slice_is_flagged() {
        let out = check(&[
            (
                NAMES_FILE,
                "pub mod spans {\n    pub const EPOCH: &str = \"epoch\";\n    pub const ALL: &[&str] = &[];\n}\n",
            ),
            ("crates/core/src/train.rs", "fn f(t: &Trace) { t.span(names::spans::EPOCH); }\n"),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("ALL"), "{}", out[0].message);
    }

    #[test]
    fn trace_and_fault_internals_are_exempt_from_literals() {
        let out = check(&[
            (NAMES_FILE, NAMES),
            ("crates/core/src/x.rs", "fn f(t: &Trace) { t.span(names::spans::EPOCH); }\n"),
            ("crates/trace/src/span.rs", "fn t(tr: &Trace) { tr.span(\"synthetic\"); }\n"),
            ("crates/fault/src/tests.rs", "fn t() { point(\"synthetic\", 0); }\n"),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn fault_sites_register_from_the_sites_module() {
        let out = check(&[
            (NAMES_FILE, NAMES),
            (
                FAULT_FILE,
                "pub mod sites {\n    pub const PREP: &str = \"prep\";\n    pub const ALL: &[&str] = &[PREP];\n}\n",
            ),
            ("crates/core/src/x.rs", "fn f(t: &Trace) { t.span(names::spans::EPOCH); fault::point(fault::sites::PREP, 0); }\n"),
        ]);
        assert!(out.is_empty(), "{out:?}");
        let bad = check(&[
            (NAMES_FILE, NAMES),
            (
                FAULT_FILE,
                "pub mod sites {\n    pub const PREP: &str = \"prep\";\n    pub const ALL: &[&str] = &[PREP];\n}\n",
            ),
            // The constant stays referenced at a second site, so the only
            // finding is the stringly-typed literal — not a dead constant.
            ("crates/core/src/x.rs", "fn f(t: &Trace) { t.span(names::spans::EPOCH); fault::point(\"prep\", 0); fault::decide(fault::sites::PREP); }\n"),
        ]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("fault::sites::PREP"), "{}", bad[0].message);
    }
}
