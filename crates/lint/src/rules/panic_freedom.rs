//! **panic-freedom**: `.unwrap()`, `.expect(...)`, `panic!`, `todo!`, and
//! `unimplemented!` are forbidden in designated hot-path modules (the
//! sampler, batch prep, the tensor kernels, and the DDP communicator) —
//! a panic there either kills a worker mid-epoch or poisons a lock that the
//! supervised-recovery layer then trips over. Test code (`#[cfg(test)]`
//! items, `#[test]` functions, `tests/` files) is exempt; deliberate
//! panics carry a `// lint: allow(panic-freedom, reason)` suppression.

use super::{emit, PANIC_FREEDOM};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Runs the rule over one file (no-op unless the file is hot-path).
pub fn run(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.class.hot_path || f.class.test_file {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if f.in_test_code(t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(` — method calls only, so types and
        // functions like `unwrap_or_default` never match.
        if t.is_punct('.') {
            if let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) {
                if paren.is_punct('(') && (name.is_ident("unwrap") || name.is_ident("expect")) {
                    emit(
                        f,
                        PANIC_FREEDOM,
                        name.line,
                        name.col,
                        format!(
                            "`.{}()` in a hot-path module: return a typed error, recover from \
                             poisoning, or suppress with a reason",
                            name.text
                        ),
                        out,
                    );
                }
            }
        }
        // `panic!` / `unimplemented!` / `todo!` macro invocations.
        if toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
            && (t.is_ident("panic") || t.is_ident("unimplemented") || t.is_ident("todo"))
        {
            emit(
                f,
                PANIC_FREEDOM,
                t.line,
                t.col,
                format!("`{}!` in a hot-path module", t.text),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};

    fn hot(src: &str) -> Vec<Diagnostic> {
        let class = FileClass { hot_path: true, ..Default::default() };
        let f = SourceFile::parse("hot.rs".into(), src, class);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_and_panic_fire() {
        let diags = hot("fn f() {\n    x.lock().unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n}\n");
        let rules: Vec<_> = diags.iter().map(|d| (d.line, d.message.clone())).collect();
        assert_eq!(diags.len(), 3, "{rules:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic() {
        assert!(hot("fn f() { x.lock().unwrap_or_else(p::into_inner); }\n").is_empty());
    }

    #[test]
    fn non_hot_files_are_skipped() {
        let f = SourceFile::parse("cold.rs".into(), "fn f() { x.unwrap(); }", FileClass::default());
        let mut out = Vec::new();
        run(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = hot("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(diags.is_empty());
    }

    #[test]
    fn suppression_with_reason_marks_not_counts() {
        let diags = hot(
            "fn f() {\n    // lint: allow(panic-freedom, spawn failure at setup is unrecoverable)\n    x.expect(\"spawn\");\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed.is_some());
    }
}
