//! **panic-reachability**: from the declared hot-path entry points
//! (`// lint: entry(panic-reachability)` on the sampler step, the tensor
//! GEMM/gather/scatter kernels, `slice_batch`, and the serve core stage
//! fns), no transitively reachable function may contain a panicking
//! construct. This replaces the old whitelist-of-files approximation:
//! `panic-freedom` still polices the hot *files* lexically, while this
//! rule follows the call graph into `core`, `trace`, `graph`, and
//! `fault`, catching panics hidden one call away.
//!
//! Two site classes:
//! - `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` —
//!   reported per site with the entry→fn call path as evidence. Sites in
//!   files already under `panic-freedom` are skipped (one rule per site).
//! - `[i]` slice/array indexing — reported as **one aggregated finding
//!   per file** (count + first site) so the audit burden is one reasoned
//!   suppression per file, not per bracket; the reason documents the
//!   bounds invariant covering the file's reachable kernels.

use super::{emit, PANIC_REACHABILITY};
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::ParsedFile;
use crate::source::SourceFile;

/// Runs the rule workspace-wide.
pub fn run(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    graph: &CallGraph,
    out: &mut Vec<Diagnostic>,
) {
    let reach = graph.reachability();
    // Group reachable fns by file, preserving node ids for evidence.
    let mut per_file: Vec<Vec<usize>> = vec![Vec::new(); parsed.len()];
    for (n, info) in graph.nodes.iter().enumerate() {
        if reach.from[n].is_some() && !parsed[info.file].fns[info.item].is_test {
            per_file[info.file].push(n);
        }
    }

    for (fi, nodes) in per_file.iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        let f = &files[fi];
        let pf = &parsed[fi];
        // (line, col, count, fn node) of indexing sites, aggregated later.
        let mut index_sites: Vec<(usize, usize, usize)> = Vec::new();
        for &n in nodes {
            let item = &pf.fns[graph.nodes[n].item];
            let Some((open, close)) = item.body else { continue };
            let toks = &f.lexed.tokens;
            for i in open..=close.min(toks.len().saturating_sub(1)) {
                let t = &toks[i];
                // `.unwrap()` / `.expect(`
                if t.is_punct('.') {
                    if let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) {
                        if paren.is_punct('(')
                            && (name.is_ident("unwrap") || name.is_ident("expect"))
                            && !f.class.hot_path
                        {
                            emit(
                                f,
                                PANIC_REACHABILITY,
                                name.line,
                                name.col,
                                format!(
                                    "`.{}()` reachable from a hot-path entry: {}",
                                    name.text,
                                    graph.path_display(&reach, n)
                                ),
                                out,
                            );
                        }
                    }
                }
                // `panic!` / `todo!` / `unimplemented!`
                if !f.class.hot_path
                    && toks.get(i + 1).map(|x| x.is_punct('!')).unwrap_or(false)
                    && (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
                {
                    emit(
                        f,
                        PANIC_REACHABILITY,
                        t.line,
                        t.col,
                        format!(
                            "`{}!` reachable from a hot-path entry: {}",
                            t.text,
                            graph.path_display(&reach, n)
                        ),
                        out,
                    );
                }
                // Postfix `[` indexing: the token before the bracket is an
                // expression tail (`ident[`, `)[`, `][`). Attribute `#[`,
                // macro `ident![`, and type/array positions (`: [u8;4]`,
                // `= [0; n]`, `&[…]`) never match this shape.
                if t.is_punct('[') && i > open {
                    let prev = &toks[i - 1];
                    let is_expr_tail = match prev.kind {
                        TokKind::Ident => !is_keyword(&prev.text),
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        _ => false,
                    };
                    if is_expr_tail {
                        index_sites.push((t.line, t.col, n));
                    }
                }
            }
        }
        index_sites.sort_unstable();
        if let Some(&(line, col, n)) = index_sites.first() {
            emit(
                f,
                PANIC_REACHABILITY,
                line,
                col,
                format!(
                    "{} slice-indexing site(s) inside entry-reachable fns of this file \
                     (first here; {}): every index must be covered by a checked invariant \
                     — use `.get()`/iterators or suppress with the bounds argument",
                    index_sites.len(),
                    graph.path_display(&reach, n)
                ),
                out,
            );
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "match" | "while" | "for" | "loop" | "return" | "in"
            | "as" | "let" | "mut" | "ref" | "move" | "break" | "continue"
            | "unsafe" | "where" | "impl" | "dyn" | "fn" | "use" | "pub"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parser::parse_file;
    use crate::source::{FileClass, SourceFile};

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let sfs: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse((*p).into(), s, FileClass::default()))
            .collect();
        let parsed: Vec<ParsedFile> = sfs.iter().map(parse_file).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        run(&sfs, &parsed, &graph, &mut out);
        out
    }

    #[test]
    fn panic_one_call_deep_is_found_with_a_path() {
        let out = check(&[
            (
                "crates/a/src/lib.rs",
                "// lint: entry(panic-reachability)\npub fn entry() { b::helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() { x.unwrap(); }\n"),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("a::entry -> b::helper"), "{}", out[0].message);
    }

    #[test]
    fn unreachable_panics_are_ignored() {
        let out = check(&[(
            "crates/a/src/lib.rs",
            "// lint: entry(panic-reachability)\npub fn entry() {}\npub fn cold() { x.unwrap(); panic!(); }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn indexing_is_aggregated_per_file() {
        let out = check(&[(
            "crates/a/src/lib.rs",
            "// lint: entry(panic-reachability)\npub fn entry(v: &[u32], i: usize) -> u32 {\n    let a = v[i];\n    let b = v[i + 1];\n    a + b\n}\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("2 slice-indexing site(s)"), "{}", out[0].message);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn attributes_and_array_types_are_not_indexing() {
        let out = check(&[(
            "crates/a/src/lib.rs",
            "// lint: entry(panic-reachability)\n#[inline]\npub fn entry() {\n    let _a: [u8; 4] = [0; 4];\n    let _v = vec![1, 2];\n    let _s = &[1u8][..0];\n}\n",
        )]);
        // `&[1u8][..0]` is real postfix indexing on a literal; everything
        // else stays quiet. (`][` — prev token `]` — is the one site.)
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("1 slice-indexing"), "{}", out[0].message);
    }
}
