//! **unsafe-audit**: every `unsafe` block, function, or impl must carry a
//! justification — a `// SAFETY: ...` comment (or a `# Safety` doc section)
//! within the [`SAFETY_WINDOW`] lines above the `unsafe` keyword. The rule
//! also feeds the workspace unsafe-inventory report.

use super::{emit, UNSAFE_AUDIT};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// How many lines above an `unsafe` keyword a SAFETY comment may sit
/// (attributes and the item signature commonly intervene).
pub const SAFETY_WINDOW: usize = 6;

/// What form the `unsafe` takes, for the inventory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
    Other,
}

impl std::fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Other => "other",
        })
    }
}

/// One `unsafe` site for the workspace inventory report.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub kind: UnsafeKind,
    /// The justification text found (empty when the site is unjustified).
    pub safety: String,
    /// The source line, trimmed.
    pub snippet: String,
}

/// Runs the audit over one file, appending diagnostics and inventory rows.
pub fn run(f: &SourceFile, out: &mut Vec<Diagnostic>, inventory: &mut Vec<UnsafeSite>) {
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if n.is_punct('{') => UnsafeKind::Block,
            Some(n) if n.is_ident("fn") => UnsafeKind::Fn,
            Some(n) if n.is_ident("impl") => UnsafeKind::Impl,
            Some(n) if n.is_ident("trait") => UnsafeKind::Trait,
            // `unsafe extern "C" fn`, `pub unsafe fn` handled by the token
            // *before* `unsafe` already being consumed; anything else:
            _ => UnsafeKind::Other,
        };
        let from = t.line.saturating_sub(SAFETY_WINDOW);
        let mut safety = String::new();
        for c in &f.lexed.comments {
            let overlaps = c.end_line >= from && c.line <= t.line;
            if overlaps && (c.text.contains("SAFETY:") || c.text.contains("# Safety")) {
                // Collect the justification: this comment plus contiguous
                // following comment lines (a SAFETY note often wraps).
                safety = c.text.trim().to_string();
                let mut prev_end = c.end_line;
                for c2 in &f.lexed.comments {
                    if c2.line == prev_end + 1 && c2.line <= t.line {
                        safety.push(' ');
                        safety.push_str(c2.text.trim());
                        prev_end = c2.end_line;
                    }
                }
                break;
            }
        }
        inventory.push(UnsafeSite {
            file: f.path.clone(),
            line: t.line,
            col: t.col,
            kind,
            safety: safety.clone(),
            snippet: f.line(t.line).trim().to_string(),
        });
        if safety.is_empty() {
            emit(
                f,
                UNSAFE_AUDIT,
                t.line,
                t.col,
                format!(
                    "`unsafe` {kind} has no `// SAFETY:` comment within {SAFETY_WINDOW} lines \
                     documenting the invariants the caller upholds"
                ),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};

    fn check(src: &str) -> (Vec<Diagnostic>, Vec<UnsafeSite>) {
        let f = SourceFile::parse("t.rs".into(), src, FileClass::default());
        let mut out = Vec::new();
        let mut inv = Vec::new();
        run(&f, &mut out, &mut inv);
        (out, inv)
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        let (diags, inv) = check("fn f() {\n    unsafe { do_it(); }\n}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].kind, UnsafeKind::Block);
    }

    #[test]
    fn safety_comment_satisfies_the_rule() {
        let (diags, inv) =
            check("fn f() {\n    // SAFETY: the region is uniquely owned.\n    unsafe { do_it(); }\n}\n");
        assert!(diags.is_empty());
        assert!(inv[0].safety.contains("uniquely owned"));
    }

    #[test]
    fn doc_safety_section_satisfies_unsafe_fn() {
        let (diags, inv) = check(
            "/// # Safety\n/// Caller must check `available()`.\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n",
        );
        assert!(diags.is_empty());
        assert_eq!(inv[0].kind, UnsafeKind::Fn);
    }

    #[test]
    fn unsafe_impl_needs_justification_too() {
        let (diags, _) = check("unsafe impl Send for X {}\n");
        assert_eq!(diags.len(), 1);
        let (diags, _) = check("// SAFETY: X owns no thread-affine state.\nunsafe impl Send for X {}\n");
        assert!(diags.is_empty());
    }

    #[test]
    fn the_word_unsafe_in_strings_and_comments_is_ignored() {
        let (diags, inv) = check("// unsafe unsafe unsafe\nlet s = \"unsafe { }\";\n");
        assert!(diags.is_empty());
        assert!(inv.is_empty());
    }

    #[test]
    fn stale_safety_comment_too_far_above_does_not_count() {
        let mut src = String::from("// SAFETY: way up here.\n");
        for _ in 0..SAFETY_WINDOW + 2 {
            src.push_str("fn pad() {}\n");
        }
        src.push_str("fn f() { unsafe { x() } }\n");
        let (diags, _) = check(&src);
        assert_eq!(diags.len(), 1);
    }
}
