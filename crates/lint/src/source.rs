//! Per-file analysis context: lexed tokens, line text, `#[cfg(test)]` /
//! `#[test]` region tracking, and `// lint: allow(rule, reason)` suppressions.

use crate::lexer::{lex, Lexed};

/// How a file participates in each rule, derived from its workspace path.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// Designated hot-path module: panic-freedom applies.
    pub hot_path: bool,
    /// Whitelisted for wall-clock / sleep / exit (sim, bench, CLI mains).
    pub time_whitelisted: bool,
    /// A test source file (`tests/` directories): panic-freedom and
    /// determinism do not apply anywhere in the file.
    pub test_file: bool,
}

/// An inline suppression parsed from `// lint: allow(rule, reason)`.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    /// Line the suppression comment sits on.
    pub line: usize,
    /// Lines the suppression covers: its own line, and (for an own-line
    /// comment) the next line carrying a token.
    pub covers: (usize, usize),
    /// Set by the engine when a diagnostic consumed this suppression.
    pub used: std::cell::Cell<bool>,
}

/// One workspace source file ready for rule passes.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub class: FileClass,
    pub lexed: Lexed,
    lines: Vec<String>,
    /// Inclusive (start, end) line ranges of `#[cfg(test)]` / `#[test]`
    /// items.
    test_regions: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes `text` and precomputes test regions and suppressions.
    pub fn parse(path: String, text: &str, class: FileClass) -> SourceFile {
        let lexed = lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let test_regions = find_test_regions(&lexed);
        let mut f = SourceFile {
            path,
            class,
            lexed,
            lines,
            test_regions,
            suppressions: Vec::new(),
        };
        f.suppressions = parse_suppressions(&f);
        f
    }

    /// The 1-based source line, or `""` past EOF.
    pub fn line(&self, n: usize) -> &str {
        self.lines
            .get(n.wrapping_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// True when `line` falls inside a `#[cfg(test)]` module or `#[test]`
    /// function, or the whole file is a test file.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.class.test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| line >= s && line <= e)
    }

    /// Finds a suppression for `rule` covering `line`, marks it used, and
    /// returns its reason.
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<String> {
        for s in &self.suppressions {
            if s.rule == rule && line >= s.covers.0 && line <= s.covers.1 {
                s.used.set(true);
                return Some(s.reason.clone());
            }
        }
        None
    }

    /// True if any comment overlapping `lines` (inclusive range) satisfies
    /// `pred` on its text.
    pub fn comment_in_range(
        &self,
        from_line: usize,
        to_line: usize,
        pred: impl Fn(&str) -> bool,
    ) -> bool {
        self.lexed
            .comments
            .iter()
            .any(|c| c.end_line >= from_line && c.line <= to_line && pred(&c.text))
    }
}

/// Scans for `#[cfg(test)]` and `#[test]` attributes and brace-matches the
/// following item to get its line extent.
fn find_test_regions(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` ...
        if toks[i].is_punct('#') && toks.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false) {
            let is_test_attr = match toks.get(i + 2) {
                Some(t) if t.is_ident("test") => true,
                Some(t) if t.is_ident("cfg") => {
                    // `cfg(test)` — accept `test` anywhere inside the
                    // attribute parens (covers `cfg(all(test, ...))`).
                    let mut j = i + 3;
                    let mut depth = 0usize;
                    let mut found = false;
                    while let Some(tk) = toks.get(j) {
                        if tk.is_punct('[') || tk.is_punct('(') {
                            depth += 1;
                        } else if tk.is_punct(']') {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        } else if tk.is_punct(')') {
                            depth = depth.saturating_sub(1);
                        } else if tk.is_ident("test") {
                            found = true;
                        }
                        j += 1;
                    }
                    found
                }
                _ => false,
            };
            if is_test_attr {
                // Find the item's opening brace, then its matching close.
                let mut j = i + 2;
                while let Some(tk) = toks.get(j) {
                    if tk.is_punct('{') {
                        break;
                    }
                    // A `;` before any `{` means the item has no body
                    // (e.g. `#[cfg(test)] mod tests;`) — skip.
                    if tk.is_punct(';') {
                        j = usize::MAX;
                        break;
                    }
                    j += 1;
                }
                if j != usize::MAX {
                    if let Some(open) = toks.get(j) {
                        let start = toks[i].line.min(open.line);
                        let mut depth = 0usize;
                        let mut end = open.line;
                        while let Some(tk) = toks.get(j) {
                            if tk.is_punct('{') {
                                depth += 1;
                            } else if tk.is_punct('}') {
                                depth -= 1;
                                if depth == 0 {
                                    end = tk.line;
                                    break;
                                }
                            }
                            j += 1;
                        }
                        regions.push((start, end));
                        i = j;
                    }
                }
            }
        }
        i += 1;
    }
    regions
}

/// Parses `lint: allow(rule, reason...)` out of every comment. A malformed
/// suppression (missing rule or empty reason) is reported by the engine as
/// its own diagnostic, so it is returned with an empty reason here.
fn parse_suppressions(f: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &f.lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let body = rest
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|end| &r[..end]))
            .unwrap_or("");
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
            None => (body.trim().to_string(), String::new()),
        };
        // Coverage: the comment's own line(s); an own-line comment also
        // covers the next line that carries a token.
        let mut end = c.end_line;
        if !c.trailing {
            if let Some(next) = f
                .lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.end_line)
            {
                end = next;
            }
        }
        out.push(Suppression {
            rule,
            reason,
            line: c.line,
            covers: (c.line, end),
            used: std::cell::Cell::new(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".into(), src, FileClass::default())
    }

    #[test]
    fn cfg_test_module_extent() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live2() {}\n";
        let f = sf(src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn test_fn_extent() {
        let src = "#[test]\nfn t() {\n    x();\n}\nfn live() {}\n";
        let f = sf(src);
        assert!(f.in_test_code(3));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn suppression_parsing_and_coverage() {
        let src = "// lint: allow(panic-freedom, contract violation is unrecoverable)\nfoo.unwrap();\nbar.unwrap(); // lint: allow(determinism, trailing case)\n";
        let f = sf(src);
        assert_eq!(f.suppressions.len(), 2);
        let s0 = &f.suppressions[0];
        assert_eq!(s0.rule, "panic-freedom");
        assert_eq!(s0.covers, (1, 2));
        assert!(s0.reason.contains("unrecoverable"));
        let s1 = &f.suppressions[1];
        assert_eq!(s1.covers, (3, 3));
        assert!(f.suppression_for("panic-freedom", 2).is_some());
        assert!(f.suppression_for("panic-freedom", 3).is_none());
        assert!(f.suppression_for("determinism", 3).is_some());
    }

    #[test]
    fn missing_reason_yields_empty_reason() {
        let f = sf("// lint: allow(unsafe-audit)\nunsafe {}\n");
        assert_eq!(f.suppressions[0].rule, "unsafe-audit");
        assert!(f.suppressions[0].reason.is_empty());
    }
}
