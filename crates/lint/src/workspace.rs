//! Workspace discovery, file classification, and the full lint pass.

use crate::callgraph::CallGraph;
use crate::deps;
use crate::diag::Diagnostic;
use crate::parser::{self, ParsedFile};
use crate::rules::{self, lock_discipline, unsafe_audit::UnsafeSite};
use crate::source::{FileClass, SourceFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Modules where panic-freedom applies: SALIENT's per-batch hot path.
/// A prefix ending in `/` covers a directory; otherwise it names a file.
pub const HOT_PATHS: &[&str] = &[
    "crates/sampler/src/",
    "crates/batchprep/src/",
    "crates/tensor/src/kernels.rs",
    "crates/ddp/src/comm.rs",
];

/// Files allowed to read wall clocks, sleep, and exit: the trace crate
/// (whose `Clock` *is* the sanctioned time source everything else must go
/// through), the DES simulator, the bench harness, and CLI entry points.
///
/// `crates/serve/` is deliberately *not* here: the serving state machine's
/// deadline math must stay replayable under a `VirtualClock`, so every
/// time read it makes goes through `trace::Clock` and any real-clock
/// escape hatch (an injected straggler sleep) carries an inline
/// suppression naming its justification.
pub const TIME_WHITELIST: &[&str] = &[
    "crates/trace/",
    "crates/sim/",
    "crates/bench/",
    "src/bin/",
    "examples/",
];

/// Classifies a workspace-relative path for the rules.
pub fn classify(rel: &str) -> FileClass {
    let matches_prefix = |prefixes: &[&str]| {
        prefixes.iter().any(|p| {
            if p.ends_with('/') {
                rel.starts_with(p)
            } else {
                rel == *p
            }
        })
    };
    // Any crate's binary entry point (`src/main.rs`) counts as CLI code.
    let is_cli_main = rel == "src/main.rs" || rel.ends_with("/src/main.rs");
    FileClass {
        hot_path: matches_prefix(HOT_PATHS),
        time_whitelisted: matches_prefix(TIME_WHITELIST) || is_cli_main,
        test_file: rel.split('/').any(|seg| seg == "tests" || seg == "benches"),
    }
}

/// The outcome of a full pass.
#[derive(Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Files analyzed (diagnostics aside, lets callers sanity-check scope).
    pub files_scanned: usize,
}

impl LintReport {
    /// Diagnostics not silenced by an inline suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_none())
    }

    /// Number of unsuppressed findings (the CI gate).
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// `(rule, total, unsuppressed)` for every rule in catalog order —
    /// the per-rule table CI prints so lint-cost regressions are visible.
    pub fn counts_by_rule(&self) -> Vec<(&'static str, usize, usize)> {
        rules::ALL_RULES
            .iter()
            .map(|&rule| {
                let total = self.diagnostics.iter().filter(|d| d.rule == rule).count();
                let open = self
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule == rule && d.suppressed.is_none())
                    .count();
                (rule, total, open)
            })
            .collect()
    }
}

/// Walks up from `start` to the workspace root (the directory whose
/// `Cargo.toml` contains a `[workspace]` table).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

/// Collects every workspace `.rs` file, skipping `target/`, VCS metadata,
/// and lint test fixtures (which are deliberately rule-breaking).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace manifests covered by the deps guard.
pub fn collect_manifests(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let m = entry?.path().join("Cargo.toml");
            if m.is_file() {
                out.push(m);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the dependency-freedom guard over every workspace manifest.
pub fn run_deps(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for m in collect_manifests(root)? {
        let text = std::fs::read_to_string(&m)?;
        out.extend(deps::check_manifest(&rel_path(root, &m), &text));
    }
    Ok(out)
}

/// Lexes and item-parses every workspace source file — the shared
/// substrate for `run` and the `graph` subcommand.
pub fn analyze(root: &Path) -> std::io::Result<(Vec<SourceFile>, Vec<ParsedFile>)> {
    let mut files: Vec<SourceFile> = Vec::new();
    for path in collect_rs_files(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        files.push(SourceFile::parse(rel.clone(), &text, classify(&rel)));
    }
    let parsed: Vec<ParsedFile> = files.iter().map(parser::parse_file).collect();
    Ok((files, parsed))
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let (files, parsed) = analyze(root)?;
    report.files_scanned = files.len();

    let mut summaries = Vec::new();
    for (f, pf) in files.iter().zip(&parsed) {
        rules::unsafe_audit::run(f, &mut report.diagnostics, &mut report.unsafe_inventory);
        rules::panic_freedom::run(f, &mut report.diagnostics);
        rules::half_conversion::run(f, &mut report.diagnostics);
        rules::determinism::run(f, &mut report.diagnostics);
        rules::alloc_freedom::run(f, pf, &mut report.diagnostics);
        lock_discipline::check_relaxed(f, &mut report.diagnostics);
        rules::check_suppression_hygiene(f, &mut report.diagnostics);
        rules::check_annotations(f, pf, &mut report.diagnostics);
        summaries.extend(lock_discipline::extract(f));
    }
    let by_path: BTreeMap<String, &SourceFile> =
        files.iter().map(|f| (f.path.clone(), f)).collect();
    lock_discipline::check_order(&summaries, &by_path, &mut report.diagnostics);

    let graph = CallGraph::build(&parsed);
    rules::panic_reachability::run(&files, &parsed, &graph, &mut report.diagnostics);
    rules::name_registry::run(&files, &parsed, &mut report.diagnostics);

    report.diagnostics.extend(run_deps(root)?);

    // Last, after every rule has had its chance to consume a suppression:
    // anything still unused is stale and must be deleted.
    for f in &files {
        rules::check_unused_suppressions(f, &mut report.diagnostics);
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_known_paths() {
        assert!(classify("crates/batchprep/src/queue.rs").hot_path);
        assert!(classify("crates/tensor/src/kernels.rs").hot_path);
        assert!(!classify("crates/tensor/src/ops.rs").hot_path);
        assert!(classify("crates/ddp/src/comm.rs").hot_path);
        assert!(!classify("crates/ddp/src/lib.rs").hot_path);
        assert!(classify("crates/sim/src/des.rs").time_whitelisted);
        assert!(classify("crates/trace/src/clock.rs").time_whitelisted);
        assert!(classify("src/bin/salient.rs").time_whitelisted);
        assert!(classify("examples/quickstart.rs").time_whitelisted);
        assert!(!classify("crates/core/src/train.rs").time_whitelisted);
        assert!(!classify("crates/batchprep/src/prep.rs").time_whitelisted);
        // The serving crate must route all time through trace::Clock.
        assert!(!classify("crates/serve/src/core.rs").time_whitelisted);
        assert!(!classify("crates/serve/src/server.rs").time_whitelisted);
        assert!(!classify("crates/serve/src/core.rs").hot_path);
        assert!(classify("tests/end_to_end.rs").test_file);
        assert!(classify("crates/tensor/tests/gradcheck.rs").test_file);
        assert!(!classify("crates/tensor/src/tensor.rs").test_file);
    }
}
