//! Fixture-based rule tests.
//!
//! Each file under `tests/fixtures/` breaks (or deliberately honors) one
//! rule; the assertions here pin the exact diagnostics the engine must
//! produce. The fixture directory is excluded from the workspace walk, so
//! these deliberately rule-breaking files never pollute the live report.

use salient_lint::callgraph::CallGraph;
use salient_lint::parser::{parse_file, ParsedFile};
use salient_lint::rules::{self, lock_discipline};
use salient_lint::{Diagnostic, FileClass, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

fn load(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Parses a fixture under a synthetic workspace path so lock identities
/// resolve to the `fixture` crate.
fn parse(name: &str, class: FileClass) -> SourceFile {
    SourceFile::parse(format!("crates/fixture/src/{name}"), &load(name), class)
}

fn hot() -> FileClass {
    FileClass {
        hot_path: true,
        time_whitelisted: false,
        test_file: false,
    }
}

#[test]
fn undocumented_unsafe_is_flagged() {
    let f = parse("bad_unsafe.rs", FileClass::default());
    let (mut out, mut inv) = (Vec::new(), Vec::new());
    rules::unsafe_audit::run(&f, &mut out, &mut inv);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "unsafe-audit");
    assert_eq!(out[0].line, 5);
    assert!(out[0].suppressed.is_none());
    assert_eq!(inv.len(), 1);
    assert!(inv[0].safety.is_empty());
}

#[test]
fn documented_unsafe_passes() {
    let f = parse("good_unsafe.rs", FileClass::default());
    let (mut out, mut inv) = (Vec::new(), Vec::new());
    rules::unsafe_audit::run(&f, &mut out, &mut inv);
    assert!(out.is_empty(), "{out:?}");
    assert_eq!(inv.len(), 2);
    assert!(inv.iter().all(|s| !s.safety.is_empty()));
}

#[test]
fn hot_path_panics_are_flagged() {
    let f = parse("bad_panic.rs", hot());
    let mut out = Vec::new();
    rules::panic_freedom::run(&f, &mut out);
    let lines: Vec<usize> = out.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![4, 5, 7, 9], "{out:?}");
    assert!(out.iter().all(|d| d.rule == "panic-freedom"));
    assert!(out.iter().all(|d| d.suppressed.is_none()));
}

#[test]
fn cold_modules_may_panic() {
    let f = parse("bad_panic.rs", FileClass::default());
    let mut out = Vec::new();
    rules::panic_freedom::run(&f, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn suppressed_unwrap_is_reported_but_silenced() {
    let f = parse("suppressed_panic.rs", hot());
    let mut out = Vec::new();
    rules::panic_freedom::run(&f, &mut out);
    assert_eq!(out.len(), 1);
    let reason = out[0].suppressed.as_deref().expect("finding is suppressed");
    assert!(reason.contains("unreachable"));
    // The suppression is well-formed, so hygiene stays quiet.
    let mut hygiene = Vec::new();
    rules::check_suppression_hygiene(&f, &mut hygiene);
    assert!(hygiene.is_empty(), "{hygiene:?}");
}

#[test]
fn nondeterminism_sources_are_flagged() {
    let f = parse("bad_determinism.rs", FileClass::default());
    let mut out = Vec::new();
    rules::determinism::run(&f, &mut out);
    assert_eq!(out.len(), 4, "{out:?}");
    for needle in ["Instant::now", "SystemTime::now", "thread::sleep", "process::exit"] {
        assert!(
            out.iter().any(|d| d.message.contains(needle)),
            "missing {needle}: {out:?}"
        );
    }
}

#[test]
fn trace_clock_reads_are_deterministic() {
    // `salient_trace::Clock` is the sanctioned time source: code stamping
    // through it triggers no determinism findings even off the whitelist.
    let f = parse("good_trace_clock.rs", FileClass::default());
    let mut out = Vec::new();
    rules::determinism::run(&f, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn whitelisted_files_may_read_clocks() {
    let class = FileClass {
        time_whitelisted: true,
        ..FileClass::default()
    };
    let f = parse("bad_determinism.rs", class);
    let mut out = Vec::new();
    rules::determinism::run(&f, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn opposite_lock_orders_form_a_cycle() {
    let f = parse("bad_lock_cycle.rs", FileClass::default());
    let summaries = lock_discipline::extract(&f);
    let files: BTreeMap<String, &SourceFile> =
        [(f.path.clone(), &f)].into_iter().collect();
    let mut out = Vec::new();
    lock_discipline::check_order(&summaries, &files, &mut out);
    assert!(
        out.iter()
            .any(|d| d.rule == "lock-discipline" && d.message.contains("cycle")),
        "{out:?}"
    );
    let msg = &out[0].message;
    assert!(msg.contains("fixture::a") && msg.contains("fixture::b"), "{msg}");
}

#[test]
fn consistent_lock_order_is_clean() {
    let f = parse("good_lock_order.rs", FileClass::default());
    let summaries = lock_discipline::extract(&f);
    let files: BTreeMap<String, &SourceFile> =
        [(f.path.clone(), &f)].into_iter().collect();
    let mut out = Vec::new();
    lock_discipline::check_order(&summaries, &files, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unjustified_relaxed_is_flagged_once() {
    let f = parse("bad_relaxed.rs", FileClass::default());
    let mut out = Vec::new();
    lock_discipline::check_relaxed(&f, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 6);
}

/// Parses fixture `name` under an explicit workspace-relative `path` (for
/// rules that key on file identity, like the name registry).
fn parse_at(name: &str, path: &str, class: FileClass) -> SourceFile {
    SourceFile::parse(path.to_string(), &load(name), class)
}

/// Runs the call-graph rule over a set of already-parsed files.
fn run_reachability(files: &[SourceFile]) -> Vec<Diagnostic> {
    let parsed: Vec<ParsedFile> = files.iter().map(parse_file).collect();
    let graph = CallGraph::build(&parsed);
    let mut out = Vec::new();
    rules::panic_reachability::run(files, &parsed, &graph, &mut out);
    out
}

fn run_registry(files: &[SourceFile]) -> Vec<Diagnostic> {
    let parsed: Vec<ParsedFile> = files.iter().map(parse_file).collect();
    let mut out = Vec::new();
    rules::name_registry::run(files, &parsed, &mut out);
    out
}

#[test]
fn reachable_panics_fire_with_call_path_evidence() {
    let f = parse("bad_panic_reachability.rs", FileClass::default());
    let out = run_reachability(std::slice::from_ref(&f));
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out.iter().all(|d| d.rule == "panic-reachability"));
    let unwrap = out
        .iter()
        .find(|d| d.message.contains("`.unwrap()`"))
        .expect("unwrap finding");
    assert!(
        unwrap.message.contains("fixture::hot_entry -> fixture::helper -> fixture::deep"),
        "evidence path missing: {}",
        unwrap.message
    );
    let index = out
        .iter()
        .find(|d| d.message.contains("slice-indexing"))
        .expect("indexing finding");
    assert!(index.message.contains("1 slice-indexing site(s)"), "{}", index.message);
    // `cold` panics too, but no entry reaches it — evidence the rule is
    // reachability-driven, not lexical.
    assert!(out.iter().all(|d| d.suppressed.is_none()));
}

#[test]
fn unreachable_panic_free_chain_is_accepted() {
    let f = parse("good_panic_reachability.rs", FileClass::default());
    let out = run_reachability(std::slice::from_ref(&f));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn stringly_typed_names_fire_at_call_sites() {
    let files = vec![
        parse_at("names_registry.rs", "crates/trace/src/names.rs", FileClass::default()),
        parse_at("bad_name_registry.rs", "crates/core/src/instrument.rs", FileClass::default()),
        // The fixed file also rides along so every constant stays referenced.
        parse_at("good_name_registry.rs", "crates/core/src/instrument_ok.rs", FileClass::default()),
    ];
    let out = run_registry(&files);
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out.iter().all(|d| d.rule == "name-registry"));
    assert!(out.iter().all(|d| d.file.contains("instrument.rs")));
    let registered = out
        .iter()
        .find(|d| d.message.contains("\"serve.batch\""))
        .expect("registered-literal finding");
    assert!(
        registered.message.contains("names::spans::SERVE_BATCH"),
        "fix hint names the constant: {}",
        registered.message
    );
    let unknown = out
        .iter()
        .find(|d| d.message.contains("\"mystery.counter\""))
        .expect("unregistered-literal finding");
    assert!(unknown.message.contains("declare it"), "{}", unknown.message);
}

#[test]
fn constants_at_call_sites_are_accepted() {
    let files = vec![
        parse_at("names_registry.rs", "crates/trace/src/names.rs", FileClass::default()),
        parse_at("good_name_registry.rs", "crates/core/src/instrument_ok.rs", FileClass::default()),
    ];
    let out = run_registry(&files);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn dead_constants_and_incomplete_all_lists_fire() {
    let files = vec![
        parse_at("bad_names_registry_decl.rs", "crates/trace/src/names.rs", FileClass::default()),
        SourceFile::parse(
            "crates/core/src/site.rs".to_string(),
            "pub fn f(t: &Trace) { t.add(names::counters::LIVE, 1); t.add(names::counters::DROPPED, 1); }\n",
            FileClass::default(),
        ),
    ];
    let out = run_registry(&files);
    assert_eq!(out.len(), 2, "{out:?}");
    let dead = out
        .iter()
        .find(|d| d.message.contains("never used"))
        .expect("dead-constant finding");
    assert!(dead.message.contains("ORPHANED"), "{}", dead.message);
    let drift = out
        .iter()
        .find(|d| d.message.contains("ALL"))
        .expect("exporter-drift finding");
    assert!(drift.message.contains("DROPPED"), "{}", drift.message);
}

#[test]
fn allocations_inside_no_alloc_region_fire() {
    let f = parse("bad_alloc_region.rs", FileClass::default());
    let pf = parse_file(&f);
    let mut out = Vec::new();
    rules::alloc_freedom::run(&f, &pf, &mut out);
    assert_eq!(out.len(), 4, "{out:?}");
    assert!(out.iter().all(|d| d.rule == "alloc-freedom"));
    for needle in ["Vec::new", "format!", ".push()", ".clone()"] {
        assert!(
            out.iter().any(|d| d.message.contains(needle)),
            "missing {needle}: {out:?}"
        );
    }
    // The identical constructs outside the region produced no findings:
    // exactly the four seeded sites fired.
}

#[test]
fn alloc_free_region_is_accepted() {
    let f = parse("good_alloc_region.rs", FileClass::default());
    let pf = parse_file(&f);
    let mut out = Vec::new();
    rules::alloc_freedom::run(&f, &pf, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn stale_suppression_is_flagged_and_live_one_is_not() {
    let f = parse("unused_suppression.rs", hot());
    let mut panics = Vec::new();
    rules::panic_freedom::run(&f, &mut panics);
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert!(panics[0].suppressed.is_some(), "the live suppression still works");
    let mut unused = Vec::new();
    rules::check_unused_suppressions(&f, &mut unused);
    assert_eq!(unused.len(), 1, "{unused:?}");
    assert_eq!(unused[0].rule, "suppression");
    assert!(unused[0].message.contains("no longer silences"), "{}", unused[0].message);
    assert!(unused[0].suppressed.is_none(), "stale-suppression findings are not suppressible");
    assert!(unused[0].snippet.contains("stale"), "flags the second, stale annotation");
}

#[test]
fn reasonless_suppression_is_itself_flagged() {
    let f = parse("bad_suppression.rs", hot());
    let mut panics = Vec::new();
    rules::panic_freedom::run(&f, &mut panics);
    // The empty-reason suppression still silences the unwrap…
    assert_eq!(panics.len(), 1);
    assert!(panics[0].suppressed.is_some());
    // …but the suppression itself becomes an unsuppressable finding.
    let mut hygiene = Vec::new();
    rules::check_suppression_hygiene(&f, &mut hygiene);
    assert_eq!(hygiene.len(), 1, "{hygiene:?}");
    assert_eq!(hygiene[0].rule, "suppression");
    assert!(hygiene[0].suppressed.is_none());
    assert!(hygiene[0].message.contains("panic-freedom"));
}
