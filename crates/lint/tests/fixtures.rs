//! Fixture-based rule tests.
//!
//! Each file under `tests/fixtures/` breaks (or deliberately honors) one
//! rule; the assertions here pin the exact diagnostics the engine must
//! produce. The fixture directory is excluded from the workspace walk, so
//! these deliberately rule-breaking files never pollute the live report.

use salient_lint::rules::{self, lock_discipline};
use salient_lint::{FileClass, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

fn load(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Parses a fixture under a synthetic workspace path so lock identities
/// resolve to the `fixture` crate.
fn parse(name: &str, class: FileClass) -> SourceFile {
    SourceFile::parse(format!("crates/fixture/src/{name}"), &load(name), class)
}

fn hot() -> FileClass {
    FileClass {
        hot_path: true,
        time_whitelisted: false,
        test_file: false,
    }
}

#[test]
fn undocumented_unsafe_is_flagged() {
    let f = parse("bad_unsafe.rs", FileClass::default());
    let (mut out, mut inv) = (Vec::new(), Vec::new());
    rules::unsafe_audit::run(&f, &mut out, &mut inv);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "unsafe-audit");
    assert_eq!(out[0].line, 5);
    assert!(out[0].suppressed.is_none());
    assert_eq!(inv.len(), 1);
    assert!(inv[0].safety.is_empty());
}

#[test]
fn documented_unsafe_passes() {
    let f = parse("good_unsafe.rs", FileClass::default());
    let (mut out, mut inv) = (Vec::new(), Vec::new());
    rules::unsafe_audit::run(&f, &mut out, &mut inv);
    assert!(out.is_empty(), "{out:?}");
    assert_eq!(inv.len(), 2);
    assert!(inv.iter().all(|s| !s.safety.is_empty()));
}

#[test]
fn hot_path_panics_are_flagged() {
    let f = parse("bad_panic.rs", hot());
    let mut out = Vec::new();
    rules::panic_freedom::run(&f, &mut out);
    let lines: Vec<usize> = out.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![4, 5, 7, 9], "{out:?}");
    assert!(out.iter().all(|d| d.rule == "panic-freedom"));
    assert!(out.iter().all(|d| d.suppressed.is_none()));
}

#[test]
fn cold_modules_may_panic() {
    let f = parse("bad_panic.rs", FileClass::default());
    let mut out = Vec::new();
    rules::panic_freedom::run(&f, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn suppressed_unwrap_is_reported_but_silenced() {
    let f = parse("suppressed_panic.rs", hot());
    let mut out = Vec::new();
    rules::panic_freedom::run(&f, &mut out);
    assert_eq!(out.len(), 1);
    let reason = out[0].suppressed.as_deref().expect("finding is suppressed");
    assert!(reason.contains("unreachable"));
    // The suppression is well-formed, so hygiene stays quiet.
    let mut hygiene = Vec::new();
    rules::check_suppression_hygiene(&f, &mut hygiene);
    assert!(hygiene.is_empty(), "{hygiene:?}");
}

#[test]
fn nondeterminism_sources_are_flagged() {
    let f = parse("bad_determinism.rs", FileClass::default());
    let mut out = Vec::new();
    rules::determinism::run(&f, &mut out);
    assert_eq!(out.len(), 4, "{out:?}");
    for needle in ["Instant::now", "SystemTime::now", "thread::sleep", "process::exit"] {
        assert!(
            out.iter().any(|d| d.message.contains(needle)),
            "missing {needle}: {out:?}"
        );
    }
}

#[test]
fn trace_clock_reads_are_deterministic() {
    // `salient_trace::Clock` is the sanctioned time source: code stamping
    // through it triggers no determinism findings even off the whitelist.
    let f = parse("good_trace_clock.rs", FileClass::default());
    let mut out = Vec::new();
    rules::determinism::run(&f, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn whitelisted_files_may_read_clocks() {
    let class = FileClass {
        time_whitelisted: true,
        ..FileClass::default()
    };
    let f = parse("bad_determinism.rs", class);
    let mut out = Vec::new();
    rules::determinism::run(&f, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn opposite_lock_orders_form_a_cycle() {
    let f = parse("bad_lock_cycle.rs", FileClass::default());
    let summaries = lock_discipline::extract(&f);
    let files: BTreeMap<String, &SourceFile> =
        [(f.path.clone(), &f)].into_iter().collect();
    let mut out = Vec::new();
    lock_discipline::check_order(&summaries, &files, &mut out);
    assert!(
        out.iter()
            .any(|d| d.rule == "lock-discipline" && d.message.contains("cycle")),
        "{out:?}"
    );
    let msg = &out[0].message;
    assert!(msg.contains("fixture::a") && msg.contains("fixture::b"), "{msg}");
}

#[test]
fn consistent_lock_order_is_clean() {
    let f = parse("good_lock_order.rs", FileClass::default());
    let summaries = lock_discipline::extract(&f);
    let files: BTreeMap<String, &SourceFile> =
        [(f.path.clone(), &f)].into_iter().collect();
    let mut out = Vec::new();
    lock_discipline::check_order(&summaries, &files, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unjustified_relaxed_is_flagged_once() {
    let f = parse("bad_relaxed.rs", FileClass::default());
    let mut out = Vec::new();
    lock_discipline::check_relaxed(&f, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 6);
}

#[test]
fn reasonless_suppression_is_itself_flagged() {
    let f = parse("bad_suppression.rs", hot());
    let mut panics = Vec::new();
    rules::panic_freedom::run(&f, &mut panics);
    // The empty-reason suppression still silences the unwrap…
    assert_eq!(panics.len(), 1);
    assert!(panics[0].suppressed.is_some());
    // …but the suppression itself becomes an unsuppressable finding.
    let mut hygiene = Vec::new();
    rules::check_suppression_hygiene(&f, &mut hygiene);
    assert_eq!(hygiene.len(), 1, "{hygiene:?}");
    assert_eq!(hygiene[0].rule, "suppression");
    assert!(hygiene[0].suppressed.is_none());
    assert!(hygiene[0].message.contains("panic-freedom"));
}
