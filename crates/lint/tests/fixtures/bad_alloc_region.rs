//! Seeded violation: four allocation sites inside a `no_alloc` region,
//! while identical constructs outside the region stay legal.

pub fn kernel(buf: &mut Vec<u32>, acc: &mut [f32]) {
    let staged = Vec::with_capacity(8); // legal: outside the region
    // lint: region(no_alloc)
    {
        let v: Vec<u32> = Vec::new();
        let s = format!("x{}", acc.len());
        buf.push(1);
        let c = buf.clone();
        drop((v, s, c));
    }
    buf.extend(staged); // legal again: the region ended
}
