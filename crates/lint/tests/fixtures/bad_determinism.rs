//! Fixture: every forbidden nondeterminism source outside the whitelist.

use std::time::{Duration, Instant, SystemTime};

pub fn stamp() -> bool {
    let t = Instant::now();
    let w = SystemTime::now();
    std::thread::sleep(Duration::from_millis(1));
    if w.elapsed().is_err() {
        std::process::exit(1);
    }
    t.elapsed() > Duration::ZERO
}
