//! Seeded violation: a registered name spelled as a string literal at a
//! trace API call site, and a second literal that is not registered at
//! all. Parsed under `crates/core/...` by the fixture test (the `trace`,
//! `fault`, and `lint` crates themselves are exempt).

pub fn instrument(t: &Trace) {
    let _g = t.span("serve.batch"); // registered: must use the constant
    t.add("mystery.counter", 1); // unregistered: must be declared first
}
