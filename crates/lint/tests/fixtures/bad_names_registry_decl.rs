//! Seeded registry-side violations: one constant nobody references (dead)
//! and one referenced constant missing from its module's `ALL` slice
//! (exporter drift). Parsed under `crates/trace/src/names.rs` by the
//! fixture test, alongside a call-site file that keeps `LIVE` and
//! `DROPPED` referenced.

pub mod counters {
    pub const LIVE: &str = "live.counter";
    /// Never referenced outside this file: a dead-constant finding.
    pub const ORPHANED: &str = "orphaned.counter";
    /// Referenced at a call site but absent from `ALL`: drift finding.
    pub const DROPPED: &str = "dropped.counter";
    pub const ALL: &[&str] = &[LIVE, ORPHANED];
}
