//! Fixture: panicking constructs forbidden in a hot-path module.

pub fn prepare(slot: Option<usize>, res: Result<usize, ()>) -> usize {
    let a = slot.unwrap();
    let b = res.expect("prep failed");
    if a + b == 0 {
        panic!("empty batch");
    }
    unimplemented!()
}
