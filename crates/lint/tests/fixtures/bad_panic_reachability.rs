//! Seeded violation: the declared entry point reaches a panic two calls
//! deep, plus unchecked slice indexing inside a reachable fn.

// lint: entry(panic-reachability)
pub fn hot_entry(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    deep(v) + v[0]
}

fn deep(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

/// Not reachable from the entry: stays unreported.
pub fn cold(v: &[u32]) -> u32 {
    v[1] + v.first().copied().unwrap()
}
