//! Fixture: one unjustified `Ordering::Relaxed` next to a justified one.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn bump_justified(c: &AtomicUsize) -> usize {
    // Relaxed ordering suffices: the counter is purely diagnostic.
    c.fetch_add(1, Ordering::Relaxed)
}
