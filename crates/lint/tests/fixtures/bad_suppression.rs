//! Fixture: a suppression with no reason — the suppression itself is
//! flagged, and that meta-diagnostic cannot be suppressed.

pub fn f(v: Option<u32>) -> u32 {
    // lint: allow(panic-freedom)
    v.unwrap()
}
