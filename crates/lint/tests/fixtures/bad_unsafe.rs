//! Fixture: an unsafe block with no justification comment.

pub fn read_first(data: &[u8]) -> u8 {
    let p = data.as_ptr();
    unsafe { *p }
}
