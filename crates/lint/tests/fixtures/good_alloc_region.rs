//! The fixed form of `bad_alloc_region.rs`: the region body works in
//! place over preallocated buffers — index math, iterators, and unsafe
//! pointer reads only.

pub fn kernel(buf: &mut [u32], acc: &mut [f32], p: *const f32) {
    // lint: region(no_alloc)
    {
        let x = unsafe { *p.add(1) };
        acc[0] += x;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = i as u32;
        }
    }
}
