//! The fixed form of `bad_name_registry.rs`: every name reaches the API
//! as a constant from the registry.

pub fn instrument(t: &Trace) {
    let _g = t.span(names::spans::SERVE_BATCH);
    t.add(names::counters::SERVE_QUERIES, 1);
}
