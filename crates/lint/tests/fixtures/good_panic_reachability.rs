//! The fixed form of `bad_panic_reachability.rs`: the reachable chain
//! uses `.get()` and iterators, so nothing the entry can reach panics.

// lint: entry(panic-reachability)
pub fn hot_entry(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    deep(v) + v.first().copied().unwrap_or(0)
}

fn deep(v: &[u32]) -> u32 {
    v.iter().sum()
}

/// Unreachable code may still panic without findings.
pub fn cold(v: &[u32]) -> u32 {
    v[1] + v.first().copied().unwrap()
}
