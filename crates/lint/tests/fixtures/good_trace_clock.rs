//! Fixture: pipeline code that needs timestamps routes them through the
//! sanctioned `salient_trace::Clock` instead of reading wall clocks
//! directly. The determinism rule must stay silent here even though the
//! file is *not* time-whitelisted.

use salient_trace::{Clock, Trace};

pub fn stamp_batch(trace: &Trace) -> u64 {
    let clock = trace.clock();
    let t0 = clock.now_ns();
    let t1 = clock.now_ns();
    t1.saturating_sub(t0)
}

pub fn elapsed_ns(clock: &Clock, start_ns: u64) -> u64 {
    clock.now_ns().saturating_sub(start_ns)
}
