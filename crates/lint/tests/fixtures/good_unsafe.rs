//! Fixture: documented `unsafe` passes the audit.

/// Reads the pointee.
///
/// # Safety
///
/// `p` must point to a readable, initialized byte.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}

pub fn read_first(data: &[u8]) -> Option<u8> {
    if data.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees `as_ptr` points at a
    // live first element of the slice.
    Some(unsafe { *data.as_ptr() })
}
