//! A miniature, fully-consistent `trace::names` for the name-registry
//! fixtures: every constant is referenced at a call site and listed in
//! its module's `ALL` slice. Parsed under `crates/trace/src/names.rs` by
//! the fixture test.

pub mod spans {
    pub const SERVE_BATCH: &str = "serve.batch";
    pub const ALL: &[&str] = &[SERVE_BATCH];
}

pub mod counters {
    pub const SERVE_QUERIES: &str = "serve.queries";
    pub const ALL: &[&str] = &[SERVE_QUERIES];
}
