//! Fixture: a hot-path unwrap silenced by a well-formed suppression.

pub fn checked(slot: Option<usize>) -> usize {
    // lint: allow(panic-freedom, the slot is filled at construction; None is unreachable through the public API)
    slot.unwrap()
}
