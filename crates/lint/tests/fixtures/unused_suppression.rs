//! Seeded violation: the first suppression still silences a finding; the
//! second attaches to a line that violates nothing, so the suppression
//! itself becomes the finding.

pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(panic-freedom, checked is_some on the line above in the real caller)
    let v = x.unwrap();
    // lint: allow(panic-freedom, stale: the unwrap this covered was refactored away)
    let w = v + 1;
    w
}
