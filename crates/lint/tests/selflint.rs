//! Self-lint: the live workspace must stay at zero unsuppressed findings.
//!
//! This is the same pass `scripts/ci.sh` runs; keeping it as a cargo test
//! means `cargo test` alone catches a regression (a SAFETY-free unsafe
//! block, a hot-path unwrap, a lock-order inversion) without the CI
//! wrapper.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = salient_lint::run(&workspace_root()).expect("lint pass");
    let bad: Vec<String> = report
        .unsuppressed()
        .map(|d| d.render_text())
        .collect();
    assert!(
        bad.is_empty(),
        "unsuppressed lint findings:\n{}",
        bad.join("\n")
    );
    // Sanity: the walk actually covered the workspace.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
}

#[test]
fn every_unsafe_site_is_documented() {
    let report = salient_lint::run(&workspace_root()).expect("lint pass");
    let undocumented: Vec<String> = report
        .unsafe_inventory
        .iter()
        .filter(|s| s.safety.is_empty())
        .map(|s| format!("{}:{} {}", s.file, s.line, s.snippet))
        .collect();
    assert!(undocumented.is_empty(), "{}", undocumented.join("\n"));
    assert!(
        !report.unsafe_inventory.is_empty(),
        "inventory is empty — the tensor kernels contain unsafe code"
    );
}

#[test]
fn call_graph_json_is_valid_and_has_declared_entries() {
    let (_files, parsed) =
        salient_lint::workspace::analyze(&workspace_root()).expect("analyze");
    let graph = salient_lint::callgraph::CallGraph::build(&parsed);
    let json = salient_lint::callgraph::render_json(&graph, &parsed);
    // The dump must round-trip through the in-repo JSON parser (the same
    // self-validation `salient-lint graph` performs before printing).
    let value = salient_trace::json::parse(&json).expect("graph JSON parses");
    let nodes = value
        .get("nodes")
        .and_then(|v| v.as_arr())
        .expect("nodes array");
    assert!(nodes.len() > 100, "only {} call-graph nodes — wrong root?", nodes.len());
    let entries = nodes
        .iter()
        .filter(|n| n.get("entry") == Some(&salient_trace::json::Value::Bool(true)))
        .count();
    // The declared hot-path entry points: sampler step, tensor kernels,
    // slice_batch, and the serve core stage fns.
    assert!(entries >= 10, "only {entries} declared entry points");
    assert!(value.get("edges").and_then(|v| v.as_arr()).is_some(), "edges array");
}

#[test]
fn workspace_manifests_are_dependency_free() {
    let diags = salient_lint::run_deps(&workspace_root()).expect("deps pass");
    assert!(
        diags.is_empty(),
        "non-path dependencies:\n{}",
        diags
            .iter()
            .map(|d| d.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
