//! `BatchNorm1d` with running statistics (used by GIN and GraphSAGE-RI).

use salient_tensor::{Param, Tape, Tensor, Var};

/// Batch normalization over rows with learnable affine parameters and
/// exponential-moving-average running statistics.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    num_features: usize,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `num_features` columns.
    pub fn new(name: &str, num_features: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([num_features])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([num_features])),
            running_mean: vec![0.0; num_features],
            running_var: vec![1.0; num_features],
            momentum: 0.1,
            eps: 1e-5,
            num_features,
        }
    }

    /// Number of normalized columns.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Current running mean (for checkpointing/tests).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Applies the layer. In training mode batch statistics are used and the
    /// running statistics updated; in eval mode the running statistics are
    /// used.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `num_features` columns.
    pub fn forward(&mut self, tape: &Tape, x: &Var, training: bool) -> Var {
        let g = tape.param(&self.gamma);
        let b = tape.param(&self.beta);
        if training {
            let (y, mean, var) = x.batch_norm_train(&g, &b, self.eps);
            let m = self.momentum;
            for ((rm, rv), (bm, bv)) in self
                .running_mean
                .iter_mut()
                .zip(self.running_var.iter_mut())
                .zip(mean.iter().zip(var.iter()))
            {
                *rm = (1.0 - m) * *rm + m * bm;
                *rv = (1.0 - m) * *rv + m * bv;
            }
            y
        } else {
            x.batch_norm_eval(&g, &b, &self.running_mean, &self.running_var, self.eps)
        }
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    /// Mutable trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_tensor::column_stats;

    #[test]
    fn training_normalizes_and_updates_running_stats() {
        let mut bn = BatchNorm1d::new("bn", 2);
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![0.0, 10.0, 2.0, 30.0], [2, 2]));
        let y = bn.forward(&tape, &x, true);
        let (m, _) = column_stats(&y.value());
        assert!(m.iter().all(|v| v.abs() < 1e-4), "normalized mean ≈ 0");
        // Running mean moved toward the batch mean (1, 20).
        assert!(bn.running_mean()[0] > 0.0);
        assert!(bn.running_mean()[1] > 1.0);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new("bn", 1);
        // Prime running stats with several training batches.
        for i in 0..100 {
            let tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(vec![5.0 + (i % 2) as f32, 5.0 - (i % 2) as f32], [2, 1]));
            bn.forward(&tape, &x, true);
        }
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![5.0], [1, 1]));
        let y = bn.forward(&tape, &x, false);
        // x equals (roughly) the running mean, so output ≈ beta = 0.
        assert!(y.value().item().abs() < 0.7, "got {}", y.value().item());
    }
}
