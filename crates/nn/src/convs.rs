//! Message-passing convolution layers operating on one MFG hop.
//!
//! All layers take the bipartite form `(x, x_target)` of the PyG listings in
//! the paper's appendix: `x` holds the `n_src` source rows, `x_target =
//! x[:n_dst]` the destination rows, and the edge list is in local ids.

use crate::batch_norm::BatchNorm1d;
use crate::linear::Linear;
use salient_tensor::rng::Rng;
use salient_sampler::MfgLayer;
use salient_tensor::{init, Param, Tape, Var};

/// GraphSAGE convolution with mean aggregation:
/// `h_v = W_self · x_v + W_neigh · mean_{u ∈ N(v)} x_u`.
///
/// Matches PyG's `SAGEConv(bias=False)` as used in the paper's GraphSAGE
/// and GraphSAGE-RI models.
#[derive(Debug, Clone)]
pub struct SageConv {
    w_self: Param,
    w_neigh: Param,
}

impl SageConv {
    /// Creates a Glorot-initialized SAGE layer.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        SageConv {
            w_self: Param::new(
                format!("{name}.w_self"),
                init::glorot_uniform(in_dim, out_dim, rng),
            ),
            w_neigh: Param::new(
                format!("{name}.w_neigh"),
                init::glorot_uniform(in_dim, out_dim, rng),
            ),
        }
    }

    /// Applies the layer to one hop.
    pub fn forward(&self, tape: &Tape, x: &Var, x_target: &Var, layer: &MfgLayer) -> Var {
        let agg = x.scatter_mean(&layer.edge_src, &layer.edge_dst, layer.n_dst);
        let neigh = agg.matmul(&tape.param(&self.w_neigh));
        let own = x_target.matmul(&tape.param(&self.w_self));
        own.add(&neigh)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w_self, &self.w_neigh]
    }

    /// Mutable trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_neigh]
    }
}


/// GraphSAGE convolution with the *pooling* aggregator of the original
/// GraphSAGE paper: each neighbor is passed through a one-layer MLP, the
/// results are max-pooled per destination, and combined with the self
/// transform: `h_v = W_self · x_v + W_neigh · max_{u∈N(v)} σ(W_pool x_u + b)`.
#[derive(Debug)]
pub struct SagePoolConv {
    pool: Linear,
    w_self: Param,
    w_neigh: Param,
}

impl SagePoolConv {
    /// Creates a Glorot-initialized pooling-SAGE layer with the given
    /// pooling width.
    pub fn new(name: &str, in_dim: usize, pool_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        SagePoolConv {
            pool: Linear::new(&format!("{name}.pool"), in_dim, pool_dim, true, rng),
            w_self: Param::new(
                format!("{name}.w_self"),
                init::glorot_uniform(in_dim, out_dim, rng),
            ),
            w_neigh: Param::new(
                format!("{name}.w_neigh"),
                init::glorot_uniform(pool_dim, out_dim, rng),
            ),
        }
    }

    /// Applies the layer to one hop.
    pub fn forward(&self, tape: &Tape, x: &Var, x_target: &Var, layer: &MfgLayer) -> Var {
        let pooled = self
            .pool
            .forward(tape, x)
            .relu()
            .scatter_max(&layer.edge_src, &layer.edge_dst, layer.n_dst);
        let neigh = pooled.matmul(&tape.param(&self.w_neigh));
        let own = x_target.matmul(&tape.param(&self.w_self));
        own.add(&neigh)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.pool.params();
        p.push(&self.w_self);
        p.push(&self.w_neigh);
        p
    }

    /// Mutable trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.pool.params_mut();
        p.push(&mut self.w_self);
        p.push(&mut self.w_neigh);
        p
    }
}

/// Single-head graph attention convolution (GAT):
/// `h_v = Σ_{u ∈ {v} ∪ N(v)} α_uv · W x_u` with
/// `α ∝ exp(LeakyReLU(a_src·Wx_u + a_dst·Wx_v))`.
#[derive(Debug, Clone)]
pub struct GatConv {
    w: Param,
    a_src: Param,
    a_dst: Param,
    negative_slope: f32,
}

impl GatConv {
    /// Creates a Glorot-initialized single-head GAT layer.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        GatConv {
            w: Param::new(format!("{name}.w"), init::glorot_uniform(in_dim, out_dim, rng)),
            a_src: Param::new(
                format!("{name}.a_src"),
                init::glorot_uniform(out_dim, 1, rng),
            ),
            a_dst: Param::new(
                format!("{name}.a_dst"),
                init::glorot_uniform(out_dim, 1, rng),
            ),
            negative_slope: 0.2,
        }
    }

    /// Applies the layer to one hop. Self-loop edges `v → v` are added for
    /// each destination, per the GAT formulation `{v} ∪ N(v)`.
    pub fn forward(&self, tape: &Tape, x: &Var, _x_target: &Var, layer: &MfgLayer) -> Var {
        // Extend edges with self-loops (destination locals are also source
        // locals because destinations are a prefix of sources).
        let mut src: Vec<u32> = layer.edge_src.clone();
        let mut dst: Vec<u32> = layer.edge_dst.clone();
        for v in 0..layer.n_dst as u32 {
            src.push(v);
            dst.push(v);
        }
        let h = x.matmul(&tape.param(&self.w)); // n_src × out
        let s_src = h.matmul(&tape.param(&self.a_src)); // n_src × 1
        let s_dst = h.narrow_rows(layer.n_dst).matmul(&tape.param(&self.a_dst)); // n_dst × 1
        let logits = s_src
            .gather_rows(&src)
            .add(&s_dst.gather_rows(&dst))
            .leaky_relu(self.negative_slope);
        let logits = logits.reshape_vector();
        let alpha = logits.edge_softmax(&dst, layer.n_dst);
        h.weighted_scatter_add(&alpha, &src, &dst, layer.n_dst)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.a_src, &self.a_dst]
    }

    /// Mutable trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.a_src, &mut self.a_dst]
    }
}

/// Graph isomorphism network convolution:
/// `h_v = MLP((1 + ε) · x_v + Σ_{u ∈ N(v)} x_u)` with
/// `MLP = Linear → BatchNorm → ReLU → Linear → ReLU` (the paper's listing).
#[derive(Debug)]
pub struct GinConv {
    lin1: Linear,
    bn: BatchNorm1d,
    lin2: Linear,
    eps: f32,
}

impl GinConv {
    /// Creates the GIN layer of the paper's appendix.
    pub fn new(name: &str, in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GinConv {
            lin1: Linear::new(&format!("{name}.mlp.0"), in_dim, hidden, true, rng),
            bn: BatchNorm1d::new(&format!("{name}.mlp.1"), hidden),
            lin2: Linear::new(&format!("{name}.mlp.3"), hidden, hidden, true, rng),
            eps: 0.0,
        }
    }

    /// Applies the layer to one hop.
    pub fn forward(
        &mut self,
        tape: &Tape,
        x: &Var,
        x_target: &Var,
        layer: &MfgLayer,
        training: bool,
    ) -> Var {
        let agg = x.scatter_add(&layer.edge_src, &layer.edge_dst, layer.n_dst);
        let z = x_target.scale(1.0 + self.eps).add(&agg);
        let z = self.lin1.forward(tape, &z);
        let z = self.bn.forward(tape, &z, training).relu();
        self.lin2.forward(tape, &z).relu()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.lin1.params();
        p.extend(self.bn.params());
        p.extend(self.lin2.params());
        p
    }

    /// Mutable trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.lin1.params_mut();
        p.extend(self.bn.params_mut());
        p.extend(self.lin2.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_tensor::Tensor;

    fn hop() -> MfgLayer {
        // 3 sources, 2 destinations; edges 2→0, 1→0, 2→1.
        MfgLayer {
            edge_src: vec![2, 1, 2],
            edge_dst: vec![0, 0, 1],
            n_src: 3,
            n_dst: 2,
        }
    }

    fn inputs(tape: &Tape) -> (Var, Var) {
        let x = tape.constant(Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            [3, 2],
        ));
        let xt = x.narrow_rows(2);
        (x, xt)
    }

    #[test]
    fn sage_conv_shapes_and_grads() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let mut conv = SageConv::new("s", 2, 4, &mut rng);
        let tape = Tape::new();
        let (x, xt) = inputs(&tape);
        let y = conv.forward(&tape, &x, &xt, &hop());
        assert_eq!(y.shape().dims(), &[2, 4]);
        let grads = tape.backward(&y.sum_all());
        grads.apply_to(conv.params_mut());
        assert!(conv.params().iter().all(|p| p.grad().norm() > 0.0));
    }

    #[test]
    fn sage_mean_aggregation_is_correct() {
        // Identity weights make the output self + mean(neigh) directly.
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let mut conv = SageConv::new("s", 2, 2, &mut rng);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        for p in conv.params_mut() {
            p.set_value(eye.clone());
        }
        let tape = Tape::new();
        let (x, xt) = inputs(&tape);
        let y = conv.forward(&tape, &x, &xt, &hop()).value();
        // dst0: self (1,0) + mean of rows {2,1} = ((1+0)/2, (1+1)/2) = (0.5, 1).
        assert_eq!(y.row(0), &[1.5, 1.0]);
        // dst1: self (0,1) + row2 (1,1).
        assert_eq!(y.row(1), &[1.0, 2.0]);
    }


    #[test]
    fn sage_pool_conv_shapes_and_grads() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(9);
        let mut conv = SagePoolConv::new("sp", 2, 8, 4, &mut rng);
        let tape = Tape::new();
        let (x, xt) = inputs(&tape);
        let y = conv.forward(&tape, &x, &xt, &hop());
        assert_eq!(y.shape().dims(), &[2, 4]);
        let grads = tape.backward(&y.mul(&y).sum_all());
        grads.apply_to(conv.params_mut());
        let live = conv.params().iter().filter(|p| p.grad().norm() > 0.0).count();
        assert!(live >= 3, "pooling path must carry gradients, got {live} live params");
    }

    #[test]
    fn gat_attention_weights_sum_to_one_per_dst() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(3);
        let conv = GatConv::new("g", 2, 3, &mut rng);
        let tape = Tape::new();
        let (x, xt) = inputs(&tape);
        let y = conv.forward(&tape, &x, &xt, &hop());
        assert_eq!(y.shape().dims(), &[2, 3]);
        // Output of each dst is a convex combination of W-transformed
        // sources, so its norm is bounded by the max row norm of h.
        let h = x.value();
        assert!(h.all_finite());
        assert!(y.value().all_finite());
    }

    #[test]
    fn gat_gradients_reach_attention_params() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(4);
        let mut conv = GatConv::new("g", 2, 3, &mut rng);
        let tape = Tape::new();
        let (x, xt) = inputs(&tape);
        let y = conv.forward(&tape, &x, &xt, &hop());
        let grads = tape.backward(&y.mul(&y).sum_all());
        grads.apply_to(conv.params_mut());
        for p in conv.params() {
            assert!(p.grad().norm() > 0.0, "no grad for {}", p.name());
        }
    }

    #[test]
    fn gin_conv_runs_and_trains() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(5);
        let mut conv = GinConv::new("gin", 2, 4, &mut rng);
        let tape = Tape::new();
        let (x, xt) = inputs(&tape);
        let y = conv.forward(&tape, &x, &xt, &hop(), true);
        assert_eq!(y.shape().dims(), &[2, 4]);
        let grads = tape.backward(&y.sum_all());
        grads.apply_to(conv.params_mut());
        let with_grad = conv.params().iter().filter(|p| p.grad().norm() > 0.0).count();
        assert!(with_grad >= 4, "most GIN params should receive gradient");
    }
}
