//! # salient-nn
//!
//! GNN layers and the four architectures evaluated by the paper (GraphSAGE,
//! GAT, GIN, GraphSAGE-RI), implemented on the `salient-tensor` autograd
//! engine and consuming sampled message-flow graphs from `salient-sampler`.
//!
//! # Example
//!
//! ```
//! use salient_graph::DatasetConfig;
//! use salient_nn::{build_model, Mode, ModelKind};
//! use salient_sampler::FastSampler;
//! use salient_tensor::Tape;
//!
//! let ds = DatasetConfig::tiny(0).build();
//! let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..8], &[5, 5]);
//! let mut model = build_model(ModelKind::Sage, ds.features.dim(), 16, ds.num_classes, 2, 0);
//! let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
//! let tape = Tape::new();
//! let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
//! let out = model.forward(&tape, x, &mfg, Mode::Train, &mut rng);
//! assert_eq!(out.shape().rows(), 8);
//! ```

#![warn(missing_docs)]

mod batch_norm;
mod convs;
mod linear;
mod models;

pub mod metrics;

pub use batch_norm::BatchNorm1d;
pub use convs::{GatConv, GinConv, SageConv, SagePoolConv};
pub use linear::Linear;
pub use models::{build_model, Gat, Gin, GnnModel, GraphSage, GraphSageRi, Mode, ModelKind};
