//! Dense (fully connected) layer.

use salient_tensor::rng::Rng;
use salient_tensor::{init, Param, Tape, Tensor, Var};

/// A linear transform `y = x W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a Glorot-initialized linear layer.
    pub fn new(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::glorot_uniform(in_features, out_features, rng),
            ),
            bias: bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros([out_features]))),
            in_features,
            out_features,
        }
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.weight);
        let y = x.matmul(&w);
        match &self.bias {
            Some(b) => y.add(&tape.param(b)),
            None => y,
        }
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        match &self.bias {
            Some(b) => vec![&self.weight, b],
            None => vec![&self.weight],
        }
    }

    /// Mutable trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match &mut self.bias {
            Some(b) => vec![&mut self.weight, b],
            None => vec![&mut self.weight],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let layer = Linear::new("l", 4, 3, true, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([2, 4]));
        let y = layer.forward(&tape, &x);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(layer.params().len(), 2);
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(1);
        let mut layer = Linear::new("l", 2, 2, true, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([1, 2]));
        let loss = layer.forward(&tape, &x).sum_all();
        let grads = tape.backward(&loss);
        grads.apply_to(layer.params_mut());
        for p in layer.params() {
            assert!(p.grad().norm() > 0.0, "param {} got no gradient", p.name());
        }
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(2);
        let layer = Linear::new("l", 3, 3, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
        assert_eq!(layer.in_features(), 3);
        assert_eq!(layer.out_features(), 3);
    }
}
