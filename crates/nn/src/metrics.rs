//! Evaluation metrics: accuracy and the per-degree breakdown of Figure 3.

use salient_graph::CsrGraph;
use salient_tensor::Tensor;

/// Row-wise argmax of a logits / log-probability matrix.
pub fn argmax_rows(logits: &Tensor) -> Vec<u32> {
    let (rows, cols) = (logits.rows(), logits.cols());
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = logits.row(r);
        let mut best = 0usize;
        for c in 1..cols {
            if row[c] > row[best] {
                best = c;
            }
        }
        out.push(best as u32);
    }
    out
}

/// Fraction of predictions equal to the target.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accuracy(predictions: &[u32], targets: &[u32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Accuracy and node count per log-spaced degree bucket (Figure 3: "test
/// accuracy and node count versus node degree").
#[derive(Clone, Debug)]
pub struct DegreeBucket {
    /// Inclusive lower degree bound of this bucket.
    pub degree_lo: usize,
    /// Exclusive upper degree bound.
    pub degree_hi: usize,
    /// Number of evaluated nodes falling in the bucket.
    pub count: usize,
    /// Accuracy over those nodes (0 if empty).
    pub accuracy: f64,
}

/// Buckets test predictions by node degree with power-of-two boundaries.
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn accuracy_by_degree(
    graph: &CsrGraph,
    nodes: &[u32],
    predictions: &[u32],
    targets: &[u32],
) -> Vec<DegreeBucket> {
    assert_eq!(nodes.len(), predictions.len(), "length mismatch");
    assert_eq!(nodes.len(), targets.len(), "length mismatch");
    let max_degree = nodes
        .iter()
        .map(|&v| graph.degree(v))
        .max()
        .unwrap_or(0);
    let buckets = (usize::BITS - max_degree.leading_zeros()) as usize + 1;
    let mut count = vec![0usize; buckets];
    let mut correct = vec![0usize; buckets];
    for ((&v, &p), &t) in nodes.iter().zip(predictions).zip(targets) {
        let d = graph.degree(v);
        let b = (usize::BITS - d.leading_zeros()) as usize; // degree 0 -> 0, 1 -> 1, 2..3 -> 2, ...
        count[b] += 1;
        if p == t {
            correct[b] += 1;
        }
    }
    (0..buckets)
        .map(|b| DegreeBucket {
            degree_lo: if b == 0 { 0 } else { 1 << (b - 1) },
            degree_hi: 1 << b,
            count: count[b],
            accuracy: if count[b] == 0 {
                0.0
            } else {
                correct[b] as f64 / count[b] as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2], [2, 2]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn degree_buckets_partition_nodes() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 0), (2, 0)]);
        // Degrees: 3, 1, 1, 0.
        let nodes = [0u32, 1, 2, 3];
        let preds = [0u32, 1, 0, 0];
        let targets = [0u32, 1, 1, 1];
        let buckets = accuracy_by_degree(&g, &nodes, &preds, &targets);
        let total: usize = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        // Bucket for degree 1 holds nodes 1 and 2: one correct.
        let b1 = buckets.iter().find(|b| b.degree_lo == 1 && b.degree_hi == 2).unwrap();
        assert_eq!(b1.count, 2);
        assert!((b1.accuracy - 0.5).abs() < 1e-9);
        // Degree-0 node 3: wrong.
        assert_eq!(buckets[0].count, 1);
        assert_eq!(buckets[0].accuracy, 0.0);
    }
}
