//! The four GNN architectures evaluated in the paper (appendix listings
//! 1–4): GraphSAGE, GAT, GIN, and GraphSAGE-RI.
//!
//! Each model's `forward` follows the PyG bipartite pattern of the paper's
//! Listing 1 exactly: iterate the MFG layers in forward order, take
//! `x_target = x[:n_dst]`, apply the convolution, then ReLU + dropout on all
//! but the last layer, and finish with `log_softmax`.
//!
//! One deliberate deviation: the paper's GraphSAGE listing wires its final
//! convolution `hidden → hidden` and never uses `out_channels` (an artifact
//! of the listing); we wire it `hidden → out_channels` so the model is a
//! working classifier.

use crate::batch_norm::BatchNorm1d;
use crate::convs::{GatConv, GinConv, SageConv};
use crate::linear::Linear;
use salient_tensor::rng::StdRng;
use salient_sampler::MessageFlowGraph;
use salient_tensor::{Param, Tape, Var};

/// Forward-pass mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout active, batch statistics used and updated.
    Train,
    /// Evaluation: dropout off, running statistics used.
    Eval,
}

impl Mode {
    /// Whether this is training mode.
    pub fn training(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// Which architecture to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// GraphSAGE (mean aggregation).
    Sage,
    /// Graph attention network (1 head).
    Gat,
    /// Graph isomorphism network.
    Gin,
    /// GraphSAGE with residual connections and Inception-style readout.
    SageRi,
}

impl ModelKind {
    /// All architectures, Figure-6 order.
    pub fn all() -> [ModelKind; 4] {
        [ModelKind::Sage, ModelKind::Gat, ModelKind::Gin, ModelKind::SageRi]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Sage => "SAGE",
            ModelKind::Gat => "GAT",
            ModelKind::Gin => "GIN",
            ModelKind::SageRi => "SAGE-RI",
        }
    }
}

/// A trainable GNN operating on sampled message-flow graphs.
///
/// Models are `Send` so DDP can move one replica onto each rank thread.
pub trait GnnModel: Send {
    /// Runs the model on one batch. `x` must hold the feature rows of
    /// `mfg.node_ids`; the result has `mfg.batch_size()` rows of
    /// log-probabilities.
    fn forward(
        &mut self,
        tape: &Tape,
        x: Var,
        mfg: &MessageFlowGraph,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var;

    /// Trainable parameters.
    fn params(&self) -> Vec<&Param>;

    /// Mutable trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Architecture name.
    fn kind(&self) -> ModelKind;

    /// Number of GNN layers (hops consumed per forward).
    fn num_layers(&self) -> usize;

    /// Total scalar parameter count.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.value().len()).sum()
    }
}

/// Builds a model of the given architecture.
///
/// # Panics
///
/// Panics if `num_layers < 2`.
pub fn build_model(
    kind: ModelKind,
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    num_layers: usize,
    seed: u64,
) -> Box<dyn GnnModel> {
    assert!(num_layers >= 2, "models need at least two layers");
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        ModelKind::Sage => Box::new(GraphSage::new(in_dim, hidden, out_dim, num_layers, &mut rng)),
        ModelKind::Gat => Box::new(Gat::new(in_dim, hidden, out_dim, num_layers, &mut rng)),
        ModelKind::Gin => Box::new(Gin::new(in_dim, hidden, out_dim, num_layers, &mut rng)),
        ModelKind::SageRi => {
            Box::new(GraphSageRi::new(in_dim, hidden, out_dim, num_layers, &mut rng))
        }
    }
}

fn check_input(x: &Var, mfg: &MessageFlowGraph, layers: usize) {
    assert_eq!(
        mfg.layers.len(),
        layers,
        "MFG has {} hops but the model has {layers} layers",
        mfg.layers.len()
    );
    assert_eq!(
        x.shape().rows(),
        // lint: allow(panic-reachability, check_input runs behind the non-empty-layers assert shared by every model constructor)
        mfg.layers[0].n_src,
        "feature rows must match the MFG node count"
    );
}

/// GraphSAGE of appendix Listing 1 (dropout 0.5).
#[derive(Debug)]
pub struct GraphSage {
    convs: Vec<SageConv>,
}

impl GraphSage {
    /// Creates the model.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut convs = Vec::with_capacity(num_layers);
        convs.push(SageConv::new("sage.0", in_dim, hidden, rng));
        for i in 1..num_layers - 1 {
            convs.push(SageConv::new(&format!("sage.{i}"), hidden, hidden, rng));
        }
        convs.push(SageConv::new(
            &format!("sage.{}", num_layers - 1),
            hidden,
            out_dim,
            rng,
        ));
        GraphSage { convs }
    }
}

impl GnnModel for GraphSage {
    fn forward(
        &mut self,
        tape: &Tape,
        x: Var,
        mfg: &MessageFlowGraph,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        check_input(&x, mfg, self.convs.len());
        let last = self.convs.len() - 1;
        let mut x = x;
        for (i, (conv, layer)) in self.convs.iter().zip(mfg.layers.iter()).enumerate() {
            let x_target = x.narrow_rows(layer.n_dst);
            x = conv.forward(tape, &x, &x_target, layer);
            if i != last {
                x = x.relu().dropout(0.5, mode.training(), rng);
            }
        }
        x.log_softmax()
    }

    fn params(&self) -> Vec<&Param> {
        self.convs.iter().flat_map(|c| c.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.convs.iter_mut().flat_map(|c| c.params_mut()).collect()
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Sage
    }

    fn num_layers(&self) -> usize {
        self.convs.len()
    }
}

/// GAT of appendix Listing 2 (1 head, no bias, dropout 0.5).
#[derive(Debug)]
pub struct Gat {
    convs: Vec<GatConv>,
}

impl Gat {
    /// Creates the model.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut convs = Vec::with_capacity(num_layers);
        convs.push(GatConv::new("gat.0", in_dim, hidden, rng));
        for i in 1..num_layers - 1 {
            convs.push(GatConv::new(&format!("gat.{i}"), hidden, hidden, rng));
        }
        convs.push(GatConv::new(
            &format!("gat.{}", num_layers - 1),
            hidden,
            out_dim,
            rng,
        ));
        Gat { convs }
    }
}

impl GnnModel for Gat {
    fn forward(
        &mut self,
        tape: &Tape,
        x: Var,
        mfg: &MessageFlowGraph,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        check_input(&x, mfg, self.convs.len());
        let last = self.convs.len() - 1;
        let mut x = x;
        for (i, (conv, layer)) in self.convs.iter().zip(mfg.layers.iter()).enumerate() {
            let x_target = x.narrow_rows(layer.n_dst);
            x = conv.forward(tape, &x, &x_target, layer);
            if i != last {
                x = x.relu().dropout(0.5, mode.training(), rng);
            }
        }
        x.log_softmax()
    }

    fn params(&self) -> Vec<&Param> {
        self.convs.iter().flat_map(|c| c.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.convs.iter_mut().flat_map(|c| c.params_mut()).collect()
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Gat
    }

    fn num_layers(&self) -> usize {
        self.convs.len()
    }
}

/// GIN of appendix Listing 3 (BatchNorm MLPs, linear readout, dropout 0.5).
#[derive(Debug)]
pub struct Gin {
    convs: Vec<GinConv>,
    lin1: Linear,
    lin2: Linear,
}

impl Gin {
    /// Creates the model.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut convs = Vec::with_capacity(num_layers);
        convs.push(GinConv::new("gin.0", in_dim, hidden, rng));
        for i in 1..num_layers {
            convs.push(GinConv::new(&format!("gin.{i}"), hidden, hidden, rng));
        }
        Gin {
            convs,
            lin1: Linear::new("gin.lin1", hidden, hidden, true, rng),
            lin2: Linear::new("gin.lin2", hidden, out_dim, true, rng),
        }
    }
}

impl GnnModel for Gin {
    fn forward(
        &mut self,
        tape: &Tape,
        x: Var,
        mfg: &MessageFlowGraph,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        let layers = self.convs.len();
        check_input(&x, mfg, layers);
        let mut x = x;
        for (conv, layer) in self.convs.iter_mut().zip(mfg.layers.iter()) {
            let x_target = x.narrow_rows(layer.n_dst);
            x = conv.forward(tape, &x, &x_target, layer, mode.training());
        }
        let x = self.lin1.forward(tape, &x).relu();
        let x = x.dropout(0.5, mode.training(), rng);
        self.lin2.forward(tape, &x).log_softmax()
    }

    fn params(&self) -> Vec<&Param> {
        let mut p: Vec<&Param> = self.convs.iter().flat_map(|c| c.params()).collect();
        p.extend(self.lin1.params());
        p.extend(self.lin2.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self
            .convs
            .iter_mut()
            .flat_map(|c| c.params_mut())
            .collect();
        p.extend(self.lin1.params_mut());
        p.extend(self.lin2.params_mut());
        p
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Gin
    }

    fn num_layers(&self) -> usize {
        self.convs.len()
    }
}

/// GraphSAGE-RI of appendix Listing 4: residual connections, batch norms,
/// light dropout (0.1), and an Inception-style readout over the
/// concatenation of every depth's batch-node representation.
#[derive(Debug)]
pub struct GraphSageRi {
    convs: Vec<SageConv>,
    bns: Vec<BatchNorm1d>,
    res0: Linear,
    mlp: Linear,
}

impl GraphSageRi {
    /// Creates the model.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut convs = Vec::with_capacity(num_layers);
        let mut bns = Vec::with_capacity(num_layers);
        convs.push(SageConv::new("ri.0", in_dim, hidden, rng));
        bns.push(BatchNorm1d::new("ri.bn0", hidden));
        for i in 1..num_layers {
            convs.push(SageConv::new(&format!("ri.{i}"), hidden, hidden, rng));
            bns.push(BatchNorm1d::new(&format!("ri.bn{i}"), hidden));
        }
        let concat_dim = in_dim + num_layers * hidden;
        GraphSageRi {
            convs,
            bns,
            res0: Linear::new("ri.res0", in_dim, hidden, true, rng),
            mlp: Linear::new("ri.mlp", concat_dim, out_dim, true, rng),
        }
    }
}

impl GnnModel for GraphSageRi {
    fn forward(
        &mut self,
        tape: &Tape,
        x: Var,
        mfg: &MessageFlowGraph,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        let layers = self.convs.len();
        check_input(&x, mfg, layers);
        let end = mfg.batch_size();
        let training = mode.training();
        let mut collect = Vec::with_capacity(layers + 1);
        let mut x = x.dropout(0.1, training, rng);
        collect.push(x.narrow_rows(end));
        for (i, layer) in mfg.layers.iter().enumerate() {
            let x_target = x.narrow_rows(layer.n_dst);
            let xd = x.dropout(0.1, training, rng);
            let xtd = x_target.dropout(0.1, training, rng);
            let mut h = self.convs[i].forward(tape, &xd, &xtd, layer);
            h = self.bns[i].forward(tape, &h, training);
            h = h.leaky_relu(0.01).dropout(0.1, training, rng);
            collect.push(h.narrow_rows(end));
            // Residual: first layer projects the input features, deeper
            // layers add the target representation unchanged.
            x = if i == 0 {
                h.add(&self.res0.forward(tape, &x_target))
            } else {
                h.add(&x_target)
            };
        }
        self.mlp
            .forward(tape, &Var::concat_cols(&collect))
            .log_softmax()
    }

    fn params(&self) -> Vec<&Param> {
        let mut p: Vec<&Param> = self.convs.iter().flat_map(|c| c.params()).collect();
        p.extend(self.bns.iter().flat_map(|b| b.params()));
        p.extend(self.res0.params());
        p.extend(self.mlp.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self
            .convs
            .iter_mut()
            .flat_map(|c| c.params_mut())
            .collect();
        p.extend(self.bns.iter_mut().flat_map(|b| b.params_mut()));
        p.extend(self.res0.params_mut());
        p.extend(self.mlp.params_mut());
        p
    }

    fn kind(&self) -> ModelKind {
        ModelKind::SageRi
    }

    fn num_layers(&self) -> usize {
        self.convs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;
    use salient_sampler::FastSampler;
    use salient_tensor::Tape;

    fn run_forward(kind: ModelKind) {
        let ds = DatasetConfig::tiny(30).build();
        let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..8], &[4, 3]);
        let mut model = build_model(kind, ds.features.dim(), 16, ds.num_classes, 2, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let tape = Tape::new();
        let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
        let out = model.forward(&tape, x, &mfg, Mode::Train, &mut rng);
        assert_eq!(out.shape().dims(), &[8, ds.num_classes]);
        // Rows are log-probabilities.
        let v = out.value();
        for r in 0..8 {
            let p: f32 = v.row(r).iter().map(|x| x.exp()).sum();
            assert!((p - 1.0).abs() < 1e-4, "{kind:?} row {r} sums to {p}");
        }
        // Backward reaches every parameter... or at least most (BN gammas in
        // degenerate batches can get zero gradient).
        let targets: Vec<usize> = (0..8).map(|i| i % ds.num_classes).collect();
        let loss = out.nll_loss(&targets);
        let grads = tape.backward(&loss);
        grads.apply_to(model.params_mut());
        let live = model.params().iter().filter(|p| p.grad().norm() > 0.0).count();
        let total = model.params().len();
        assert!(
            live * 10 >= total * 8,
            "{kind:?}: only {live}/{total} params received gradient"
        );
    }

    #[test]
    fn sage_forward_and_backward() {
        run_forward(ModelKind::Sage);
    }

    #[test]
    fn gat_forward_and_backward() {
        run_forward(ModelKind::Gat);
    }

    #[test]
    fn gin_forward_and_backward() {
        run_forward(ModelKind::Gin);
    }

    #[test]
    fn sage_ri_forward_and_backward() {
        run_forward(ModelKind::SageRi);
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let ds = DatasetConfig::tiny(31).build();
        let mfg = FastSampler::new(1).sample(&ds.graph, &ds.splits.train[..4], &[4, 3]);
        let mut model = build_model(ModelKind::Sage, ds.features.dim(), 16, ds.num_classes, 2, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let run = |model: &mut Box<dyn GnnModel>, rng: &mut StdRng| {
            let tape = Tape::new();
            let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
            model.forward(&tape, x, &mfg, Mode::Eval, rng).value()
        };
        let a = run(&mut model, &mut rng);
        let b = run(&mut model, &mut rng);
        assert_eq!(a.data(), b.data(), "eval has no dropout randomness");
    }

    #[test]
    fn parameter_counts_are_positive_and_distinct() {
        let counts: Vec<usize> = ModelKind::all()
            .iter()
            .map(|&k| build_model(k, 32, 16, 8, 3, 0).num_parameters())
            .collect();
        assert!(counts.iter().all(|&c| c > 0));
        // SAGE-RI with its extra readout is the biggest at equal hidden.
        assert!(counts[3] > counts[0]);
    }

    #[test]
    #[should_panic(expected = "hops")]
    fn layer_count_mismatch_panics() {
        let ds = DatasetConfig::tiny(32).build();
        let mfg = FastSampler::new(0).sample(&ds.graph, &ds.splits.train[..4], &[4]);
        let mut model = build_model(ModelKind::Sage, ds.features.dim(), 8, ds.num_classes, 3, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let tape = Tape::new();
        let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
        model.forward(&tape, x, &mfg, Mode::Eval, &mut rng);
    }
}
