//! The stage-graph executor: one description, two schedules.
//!
//! A [`StageGraph`] is a source plus an ordered list of stages. Items are
//! pulled from the source and pushed through every stage in order; each
//! stage's work is wrapped in a span recorded through the graph's
//! [`Trace`] clock, so the same description is measurable on the real
//! monotonic clock and deterministic on a
//! [`VirtualClock`](salient_trace::VirtualClock).
//!
//! Two execution modes share the description:
//!
//! * **Inline** ([`StageGraph::run_inline`]): every stage runs on the
//!   calling thread, in submission order. This is the bitwise-reproducible
//!   reference schedule — identical clock-read sequence and identical
//!   floating-point operation order to the hand-written loops it replaced.
//! * **Threaded** ([`StageGraph::run_threaded`]): one dedicated thread per
//!   stage, adjacent stages connected by bounded queues
//!   ([`crate::queue`]). Batch `k+1` flows through stage `i` while batch
//!   `k` occupies stage `i+1` — the SALIENT overlap. Backpressure is the
//!   queue bound: a fast producer parks in `send` when the queue is full;
//!   nothing is dropped, nothing busy-waits.
//!
//! Stage loops run on dedicated `std::thread`s, *not* on
//! [`salient_tensor::pool`] workers: a pool job holds the pool's submit
//! lock until it finishes, so a long-lived stage loop submitted as a pool
//! job would deadlock the nested `parallel_for` calls issued by kernels
//! inside stage work (and starve batch-prep workers sharing the pool). The
//! pool remains the *data-parallel* axis inside a stage; its configured
//! thread budget (`SALIENT_NUM_THREADS`) still decides whether stage
//! threading is worth engaging at all — see [`StageGraph::run`].
//!
//! # Failure semantics (PR-2 supervisor rules)
//!
//! A panic inside a stage step is caught at the item boundary: the item is
//! dropped (its resources release via RAII), `pipe.stage_panics` counts
//! it, and the run continues — until the graph's `panic_budget` is
//! exhausted, at which point the run *poisons*: it stops pulling new
//! source items, lets in-flight items drain, and reports the fatal stage
//! in [`PipeStats::fatal_stage`]. Poisoning degrades, never wedges: queue
//! handles drop as stage loops exit, which unblocks any parked peer with
//! an error instead of leaving it waiting forever.

use crate::queue;
use salient_trace::{names, Clock, Gauge, Histogram, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// An item flowing through a stage graph. The id tags every span the
/// executor records for the item.
pub trait PipeItem {
    /// Batch id recorded on this item's spans.
    fn batch_id(&self) -> u64;
}

/// What a stage step did with its item.
pub enum StageOutcome<T> {
    /// Pass the (possibly transformed) item to the next stage.
    Emit(T),
    /// Retire the item: it leaves the pipeline without reaching later
    /// stages (e.g. a failed prep batch). Not an error; counted in
    /// [`PipeStats::skipped`].
    Skip,
    /// Stop the whole run after this item (e.g. a communicator error).
    /// Reported via [`PipeStats::fatal_stage`].
    Fatal,
}

/// Static description of one stage.
#[derive(Clone, Copy, Debug)]
pub struct StageSpec {
    /// Thread-name suffix in threaded mode (`salient-pipe-<label>`).
    pub label: &'static str,
    /// Span recorded around each item's work in this stage
    /// (a [`names::spans`] constant).
    pub work_span: &'static str,
    /// Span recorded around this stage's *input wait*. In threaded mode
    /// every stage waits on its own input (source or queue); in inline
    /// mode only the last stage's wait span is used, for the single
    /// source wait — the consumer-blocked time of SALIENT Table 1.
    pub wait_span: Option<&'static str>,
    /// Bound of the queue *feeding* this stage in threaded mode (ignored
    /// for the first stage, whose input is the source). 2 ≡ double
    /// buffering.
    pub queue_cap: usize,
    /// Depth gauge for the queue feeding this stage (threaded mode).
    pub queue_gauge: Option<&'static str>,
    /// Histogram observing this stage's work-span duration (e.g.
    /// `train.batch_ns`) — derived from the span boundaries, no extra
    /// clock reads.
    pub work_hist: Option<&'static str>,
}

impl StageSpec {
    /// A stage with no wait span, queue capacity 2 and no gauge.
    pub fn new(label: &'static str, work_span: &'static str) -> StageSpec {
        StageSpec {
            label,
            work_span,
            wait_span: None,
            queue_cap: 2,
            queue_gauge: None,
            work_hist: None,
        }
    }

    /// Sets the input-wait span name.
    pub fn wait(mut self, span: &'static str) -> StageSpec {
        self.wait_span = Some(span);
        self
    }

    /// Sets the input queue bound (threaded mode).
    pub fn queue(mut self, cap: usize) -> StageSpec {
        self.queue_cap = cap;
        self
    }

    /// Sets the input queue depth gauge (threaded mode).
    pub fn gauge(mut self, name: &'static str) -> StageSpec {
        self.queue_gauge = Some(name);
        self
    }

    /// Sets the work-span duration histogram.
    pub fn hist(mut self, name: &'static str) -> StageSpec {
        self.work_hist = Some(name);
        self
    }
}

/// Graph-wide description.
#[derive(Clone, Copy, Debug)]
pub struct GraphSpec {
    /// Name of the graph (diagnostics only).
    pub name: &'static str,
    /// Item panics tolerated (dropped + counted) before the run poisons.
    pub panic_budget: u64,
    /// Histogram observing the consumer's steady-state source wait
    /// (e.g. `prep.wait_ns`). When set, the *first* wait of the run is
    /// pipeline fill and is recorded as a `warmup` span + `pipe.fill_ns`
    /// observation instead, so it cannot distort the steady-state
    /// percentiles (the p99-outlier fix).
    pub wait_hist: Option<&'static str>,
}

impl GraphSpec {
    /// A graph with no wait histogram and a zero panic budget.
    pub fn new(name: &'static str) -> GraphSpec {
        GraphSpec {
            name,
            panic_budget: 0,
            wait_hist: None,
        }
    }

    /// Sets the tolerated item-panic budget.
    pub fn panic_budget(mut self, n: u64) -> GraphSpec {
        self.panic_budget = n;
        self
    }

    /// Sets the steady-state wait histogram (enables fill separation).
    pub fn wait_hist(mut self, name: &'static str) -> GraphSpec {
        self.wait_hist = Some(name);
        self
    }
}

/// One stage: spec + step + optional post-work hook.
struct Stage<'a, T> {
    spec: StageSpec,
    step: Box<dyn FnMut(T) -> StageOutcome<T> + Send + 'a>,
    /// Runs after the work span closes, receiving the item and the work-end
    /// timestamp. Returning `false` retires the item (counted as skipped) —
    /// serve uses this for deadline expiry at stage boundaries.
    after: Option<Box<dyn FnMut(&mut T, u64) -> bool + Send + 'a>>,
}

/// Outcome of a completed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Items that exited the last stage.
    pub emitted: u64,
    /// Items retired early (a `Skip` outcome or an after-hook veto).
    pub skipped: u64,
    /// Items dropped by a caught stage panic.
    pub panics: u64,
    /// `Some(work_span)` of the stage that poisoned the run (budget
    /// exhausted or `Fatal`); `None` for a clean run.
    pub fatal_stage: Option<&'static str>,
}

impl PipeStats {
    /// Whether the run stopped early.
    pub fn poisoned(&self) -> bool {
        self.fatal_stage.is_some()
    }
}

/// Counters/flags shared by the stage threads of one run.
struct SharedStats {
    emitted: AtomicU64,
    skipped: AtomicU64,
    panics: AtomicU64,
    poisoned: AtomicBool,
    fatal: Mutex<Option<&'static str>>,
}

impl SharedStats {
    fn new() -> SharedStats {
        SharedStats {
            emitted: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            fatal: Mutex::new(None),
        }
    }

    fn poison(&self, span: &'static str) {
        self.poisoned.store(true, Ordering::Release);
        let mut fatal = self.fatal.lock().unwrap_or_else(PoisonError::into_inner);
        if fatal.is_none() {
            *fatal = Some(span);
        }
    }
}

/// A source plus ordered stages; see the module docs.
pub struct StageGraph<'a, T> {
    spec: GraphSpec,
    source: Box<dyn FnMut() -> Option<T> + Send + 'a>,
    stages: Vec<Stage<'a, T>>,
}

impl<'a, T: PipeItem + Send + 'a> StageGraph<'a, T> {
    /// A graph fed by `source` (`None` ends the run).
    pub fn new(
        spec: GraphSpec,
        source: impl FnMut() -> Option<T> + Send + 'a,
    ) -> StageGraph<'a, T> {
        StageGraph {
            spec,
            source: Box::new(source),
            stages: Vec::new(),
        }
    }

    /// Appends a stage.
    pub fn stage(
        mut self,
        spec: StageSpec,
        step: impl FnMut(T) -> StageOutcome<T> + Send + 'a,
    ) -> StageGraph<'a, T> {
        self.stages.push(Stage {
            spec,
            step: Box::new(step),
            after: None,
        });
        self
    }

    /// Appends a stage with a post-work hook (see [`Stage::after`]).
    pub fn stage_with_after(
        mut self,
        spec: StageSpec,
        step: impl FnMut(T) -> StageOutcome<T> + Send + 'a,
        after: impl FnMut(&mut T, u64) -> bool + Send + 'a,
    ) -> StageGraph<'a, T> {
        self.stages.push(Stage {
            spec,
            step: Box::new(step),
            after: Some(Box::new(after)),
        });
        self
    }

    /// Whether [`StageGraph::run`] would pick the threaded schedule for a
    /// graph of `n_stages` stages: one thread per stage plus the consumer
    /// must fit the configured budget, i.e.
    /// `SALIENT_NUM_THREADS >= n_stages + 1`.
    pub fn threaded_available(n_stages: usize) -> bool {
        n_stages >= 2 && salient_tensor::pool::num_threads() > n_stages
    }

    /// Runs with the schedule the machine supports: threaded when the
    /// configured thread budget (`SALIENT_NUM_THREADS`, defaulting to the
    /// core count) covers one thread per stage plus the consumer, inline
    /// otherwise. The two schedules execute the same per-item operations
    /// in the same per-item order.
    pub fn run(self, trace: &Trace) -> PipeStats {
        if Self::threaded_available(self.stages.len()) {
            self.run_threaded(trace)
        } else {
            self.run_inline(trace)
        }
    }

    /// Sequential reference schedule: pull an item, run every stage on the
    /// calling thread, repeat. Span layout per item: one wait span (the
    /// last stage's `wait_span`, i.e. consumer-blocked time), then one
    /// work span per stage sharing boundary timestamps — exactly the
    /// clock-read sequence of the hand-written loops this replaced.
    // lint: entry(panic-reachability)
    pub fn run_inline(mut self, trace: &Trace) -> PipeStats {
        let clock = trace.clock();
        let mut stats = PipeStats::default();
        let wait_span = self.stages.last().and_then(|s| s.spec.wait_span);
        let wait_hist = self.spec.wait_hist.map(|n| trace.histogram(n));
        let fill_hist = trace.histogram(names::hists::PIPE_FILL_NS);
        let panic_ctr = trace.counter(names::counters::PIPE_STAGE_PANICS);
        let work_hists: Vec<Option<Histogram>> = self
            .stages
            .iter()
            .map(|s| s.spec.work_hist.map(|n| trace.histogram(n)))
            .collect();
        let mut first_wait = true;
        'items: loop {
            let t0 = clock.now_ns();
            let Some(mut item) = (self.source)() else {
                break;
            };
            let mut t_prev = t0;
            if wait_span.is_some() || wait_hist.is_some() {
                let t1 = clock.now_ns();
                let bid = item.batch_id();
                if first_wait && wait_hist.is_some() {
                    trace.record_span(names::spans::WARMUP, bid, t0, t1);
                    fill_hist.observe(t1.saturating_sub(t0));
                } else {
                    if let Some(ws) = wait_span {
                        trace.record_span(ws, bid, t0, t1);
                    }
                    if let Some(h) = &wait_hist {
                        h.observe(t1.saturating_sub(t0));
                    }
                }
                t_prev = t1;
            }
            first_wait = false;
            for (stage, work_hist) in self.stages.iter_mut().zip(work_hists.iter()) {
                let bid = item.batch_id();
                let step = &mut stage.step;
                let out = catch_unwind(AssertUnwindSafe(move || step(item)));
                let t2 = clock.now_ns();
                trace.record_span(stage.spec.work_span, bid, t_prev, t2);
                if let Some(h) = work_hist {
                    h.observe(t2.saturating_sub(t_prev));
                }
                t_prev = t2;
                match out {
                    Err(_) => {
                        stats.panics += 1;
                        panic_ctr.inc();
                        trace.instant(names::events::PIPE_STAGE_PANIC, bid);
                        if stats.panics > self.spec.panic_budget {
                            stats.fatal_stage = Some(stage.spec.work_span);
                            trace.instant(names::events::PIPE_POISONED, bid);
                            dump_on_poison(trace, bid);
                            break 'items;
                        }
                        continue 'items;
                    }
                    Ok(StageOutcome::Fatal) => {
                        stats.fatal_stage = Some(stage.spec.work_span);
                        trace.instant(names::events::PIPE_POISONED, bid);
                        dump_on_poison(trace, bid);
                        break 'items;
                    }
                    Ok(StageOutcome::Skip) => {
                        stats.skipped += 1;
                        continue 'items;
                    }
                    Ok(StageOutcome::Emit(mut next)) => {
                        let retired = match &mut stage.after {
                            Some(after) => !after(&mut next, t2),
                            None => false,
                        };
                        if retired {
                            stats.skipped += 1;
                            continue 'items;
                        }
                        item = next;
                    }
                }
            }
            stats.emitted += 1;
        }
        stats
    }

    /// Pipelined schedule: one dedicated thread per stage, bounded queues
    /// between adjacent stages. Falls back to [`StageGraph::run_inline`]
    /// for graphs of fewer than two stages.
    pub fn run_threaded(self, trace: &Trace) -> PipeStats {
        let n = self.stages.len();
        if n < 2 {
            return self.run_inline(trace);
        }
        let clock = trace.clock();
        let shared = SharedStats::new();
        let spec = self.spec;
        let mut source_slot = Some(self.source);
        let stages = self.stages;
        // Queue i feeds stage i+1; its bound and gauge come from the fed
        // stage's spec, collected up front because each stage is moved
        // into its thread as it spawns.
        let feed_specs: Vec<(usize, Option<&'static str>)> = stages
            .iter()
            .skip(1)
            .map(|s| (s.spec.queue_cap, s.spec.queue_gauge))
            .collect();
        std::thread::scope(|scope| {
            let shared = &shared;
            let mut incoming: Option<queue::Receiver<T>> = None;
            let mut feeds = feed_specs.into_iter();
            for (i, stage) in stages.into_iter().enumerate() {
                let is_last = i + 1 == n;
                let (tx, next_rx) = if is_last {
                    (None, None)
                } else {
                    let (cap, gauge) = feeds.next().unwrap_or((1, None));
                    let (tx, rx) = queue::bounded::<T>(cap);
                    (Some((tx, gauge.map(|g| (g, trace.gauge(g))))), Some(rx))
                };
                let input = incoming.take();
                incoming = next_rx;
                let trace_h = trace.clone();
                let clock_h = clock.clone();
                let source = if i == 0 { source_slot.take() } else { None };
                let work_span = stage.spec.work_span;
                let builder =
                    std::thread::Builder::new().name(format!("salient-pipe-{}", stage.spec.label));
                let spawned = builder.spawn_scoped(scope, move || {
                    stage_loop(StageCtx {
                        trace: trace_h,
                        clock: clock_h,
                        shared,
                        spec,
                        is_last,
                        stage,
                        source,
                        input,
                        output: tx,
                    });
                });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion): poison so
                    // already-running stages wind down via queue drops.
                    shared.poison(work_span);
                    break;
                }
            }
        });
        let fatal_stage = *shared.fatal.lock().unwrap_or_else(PoisonError::into_inner);
        PipeStats {
            emitted: shared.emitted.load(Ordering::Acquire),
            skipped: shared.skipped.load(Ordering::Acquire),
            panics: shared.panics.load(Ordering::Acquire),
            fatal_stage,
        }
    }
}

/// Everything one threaded stage loop needs; moved into its thread.
struct StageCtx<'env, 'a, T> {
    trace: Trace,
    clock: Clock,
    shared: &'env SharedStats,
    spec: GraphSpec,
    is_last: bool,
    stage: Stage<'a, T>,
    /// First stage only: the graph source.
    source: Option<Box<dyn FnMut() -> Option<T> + Send + 'a>>,
    /// Later stages: the queue from the previous stage.
    input: Option<queue::Receiver<T>>,
    /// Non-last stages: the queue to the next stage (+ its depth gauge,
    /// keyed by the registered gauge name so depth samples also land on a
    /// Chrome-trace counter track).
    output: Option<(queue::Sender<T>, Option<(&'static str, Gauge)>)>,
}

/// On poison, hand the flight recorder the failing batch id so the dump
/// carries that batch's causal chain. No-op when no blackbox is attached.
fn dump_on_poison(trace: &Trace, bid: u64) {
    if let Some(bb) = trace.blackbox() {
        let _ = bb.dump(trace, names::events::PIPE_POISONED, bid);
    }
}

/// One stage thread: pull → wait span → step (panic-caught) → work span →
/// after hook → push. Exits when the input ends, the downstream hangs up,
/// or the run poisons. Later stages keep draining their queue after a
/// poison so no in-flight batch is lost.
// lint: entry(panic-reachability)
fn stage_loop<T: PipeItem + Send>(ctx: StageCtx<'_, '_, T>) {
    let StageCtx {
        trace,
        clock,
        shared,
        spec,
        is_last,
        mut stage,
        mut source,
        input,
        output,
    } = ctx;
    let wait_hist: Option<Histogram> = if is_last {
        spec.wait_hist.map(|n| trace.histogram(n))
    } else {
        None
    };
    let fill_hist = trace.histogram(names::hists::PIPE_FILL_NS);
    let panic_ctr = trace.counter(names::counters::PIPE_STAGE_PANICS);
    let work_hist: Option<Histogram> = stage.spec.work_hist.map(|n| trace.histogram(n));
    let in_gauge: Option<(&'static str, Gauge)> = match (&input, stage.spec.queue_gauge) {
        (Some(_), Some(g)) => Some((g, trace.gauge(g))),
        _ => None,
    };
    let mut first_wait = true;
    loop {
        let t0 = clock.now_ns();
        let pulled = match (&mut source, &input) {
            (Some(src), _) => {
                if shared.poisoned.load(Ordering::Acquire) {
                    None
                } else {
                    src()
                }
            }
            (None, Some(rx)) => {
                let it = rx.recv();
                if let Some((name, g)) = &in_gauge {
                    let depth = rx.len() as u64;
                    g.set(depth);
                    trace.counter_track(*name, depth);
                }
                it
            }
            (None, None) => None,
        };
        let t1 = clock.now_ns();
        let Some(item) = pulled else {
            break;
        };
        let bid = item.batch_id();
        if is_last && first_wait && spec.wait_hist.is_some() {
            trace.record_span(names::spans::WARMUP, bid, t0, t1);
            fill_hist.observe(t1.saturating_sub(t0));
        } else if let Some(ws) = stage.spec.wait_span {
            trace.record_span(ws, bid, t0, t1);
            if let Some(h) = &wait_hist {
                h.observe(t1.saturating_sub(t0));
            }
        }
        first_wait = false;
        let step = &mut stage.step;
        let out = catch_unwind(AssertUnwindSafe(move || step(item)));
        let t2 = clock.now_ns();
        trace.record_span(stage.spec.work_span, bid, t1, t2);
        if let Some(h) = &work_hist {
            h.observe(t2.saturating_sub(t1));
        }
        match out {
            Err(_) => {
                let total = shared.panics.fetch_add(1, Ordering::AcqRel) + 1;
                panic_ctr.inc();
                trace.instant(names::events::PIPE_STAGE_PANIC, bid);
                if total > spec.panic_budget {
                    shared.poison(stage.spec.work_span);
                    trace.instant(names::events::PIPE_POISONED, bid);
                    dump_on_poison(&trace, bid);
                    if is_last {
                        // The sink exits now; dropping its receiver
                        // unblocks parked upstream senders with an error.
                        break;
                    }
                }
            }
            Ok(StageOutcome::Fatal) => {
                shared.poison(stage.spec.work_span);
                trace.instant(names::events::PIPE_POISONED, bid);
                dump_on_poison(&trace, bid);
                if is_last {
                    break;
                }
            }
            Ok(StageOutcome::Skip) => {
                shared.skipped.fetch_add(1, Ordering::AcqRel);
            }
            Ok(StageOutcome::Emit(mut next)) => {
                let retired = match &mut stage.after {
                    Some(after) => !after(&mut next, t2),
                    None => false,
                };
                if retired {
                    shared.skipped.fetch_add(1, Ordering::AcqRel);
                } else if is_last {
                    shared.emitted.fetch_add(1, Ordering::AcqRel);
                } else if let Some((tx, gauge)) = &output {
                    // The send span makes backpressure visible on the
                    // causal chain: a full downstream queue parks us here.
                    let ts0 = clock.now_ns();
                    if tx.send(next).is_err() {
                        // Downstream hung up (poisoned): stop producing.
                        break;
                    }
                    let ts1 = clock.now_ns();
                    trace.record_span(names::spans::PIPE_SEND, bid, ts0, ts1);
                    if let Some((name, g)) = gauge {
                        let depth = tx.len() as u64;
                        g.set(depth);
                        trace.counter_track(name, depth);
                    }
                }
            }
        }
    }
    trace.flush_current_thread();
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_trace::analysis;
    use std::sync::{Arc, Condvar};

    struct Item(u64);
    impl PipeItem for Item {
        fn batch_id(&self) -> u64 {
            self.0
        }
    }

    fn counting_source(n: u64) -> impl FnMut() -> Option<Item> + Send {
        let mut next = 0;
        move || {
            if next < n {
                next += 1;
                Some(Item(next - 1))
            } else {
                None
            }
        }
    }

    #[test]
    fn inline_runs_every_stage_in_order() {
        let trace = Trace::new(Clock::virtual_with_tick(10));
        let log = Mutex::new(Vec::new());
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(3))
            .stage(
                StageSpec::new("a", names::spans::STAGE_TRANSFER),
                |it: Item| {
                    log.lock().unwrap().push(("a", it.0));
                    StageOutcome::Emit(it)
                },
            )
            .stage(StageSpec::new("b", names::spans::STAGE_TRAIN), |it: Item| {
                log.lock().unwrap().push(("b", it.0));
                StageOutcome::Emit(it)
            })
            .run_inline(&trace);
        assert_eq!(stats.emitted, 3);
        assert_eq!(stats.skipped, 0);
        assert!(!stats.poisoned());
        assert_eq!(
            log.into_inner().unwrap(),
            vec![("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]
        );
        let snap = trace.snapshot();
        assert_eq!(snap.count(names::spans::STAGE_TRANSFER), 3);
        assert_eq!(snap.count(names::spans::STAGE_TRAIN), 3);
    }

    #[test]
    fn skip_retires_without_reaching_later_stages() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let reached = AtomicU64::new(0);
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(4))
            .stage(
                StageSpec::new("a", names::spans::STAGE_TRANSFER),
                |it: Item| {
                    if it.0 % 2 == 0 {
                        StageOutcome::Skip
                    } else {
                        StageOutcome::Emit(it)
                    }
                },
            )
            .stage(StageSpec::new("b", names::spans::STAGE_TRAIN), |it: Item| {
                reached.fetch_add(1, Ordering::Relaxed);
                StageOutcome::Emit(it)
            })
            .run_inline(&trace);
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.skipped, 2);
        assert_eq!(reached.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn after_hook_can_retire_items() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(4))
            .stage_with_after(
                StageSpec::new("a", names::spans::STAGE_TRANSFER),
                StageOutcome::Emit,
                |it: &mut Item, _end_ns| it.0 != 2,
            )
            .stage(
                StageSpec::new("b", names::spans::STAGE_TRAIN),
                StageOutcome::Emit,
            )
            .run_inline(&trace);
        assert_eq!(stats.emitted, 3);
        assert_eq!(stats.skipped, 1);
        let snap = trace.snapshot();
        // The retired item never reached the second stage.
        assert_eq!(snap.count(names::spans::STAGE_TRAIN), 3);
    }

    #[test]
    fn panic_budget_drops_then_poisons() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let stats = StageGraph::new(GraphSpec::new("t").panic_budget(1), counting_source(10))
            .stage(
                StageSpec::new("a", names::spans::STAGE_TRANSFER),
                |it: Item| {
                    if it.0 >= 2 {
                        panic!("boom {}", it.0);
                    }
                    StageOutcome::Emit(it)
                },
            )
            .run_inline(&trace);
        // Items 0,1 emit; item 2 panics (within budget, dropped); item 3
        // panics again and poisons the run, so items 4..10 never run.
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.fatal_stage, Some(names::spans::STAGE_TRANSFER));
        let snap = trace.snapshot();
        assert_eq!(snap.metrics.counter(names::counters::PIPE_STAGE_PANICS), 2);
        assert_eq!(snap.count(names::events::PIPE_STAGE_PANIC), 2);
        assert_eq!(snap.count(names::events::PIPE_POISONED), 1);
    }

    #[test]
    fn threaded_drain_loses_no_item() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let n = 64;
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(n))
            .stage(
                StageSpec::new("a", names::spans::STAGE_TRANSFER),
                StageOutcome::Emit,
            )
            .stage(
                StageSpec::new("b", names::spans::STAGE_TRAIN).queue(1),
                StageOutcome::Emit,
            )
            .run_threaded(&trace);
        assert_eq!(stats.emitted, n);
        assert_eq!(stats.skipped, 0);
        assert!(!stats.poisoned());
        let snap = trace.snapshot();
        assert_eq!(snap.count(names::spans::STAGE_TRAIN), n as usize);
    }

    /// The satellite-3 schedule-shape test: with a rendezvous forced
    /// between the two stage threads, batch k's compute span and batch
    /// k+1's prep span must overlap in (tick-ordered, deterministic)
    /// virtual time — the pipelining the inline schedule cannot produce.
    #[test]
    fn threaded_compute_overlaps_next_prep() {
        let trace = Trace::new(Clock::virtual_with_tick(100));
        let n = 4u64;
        // Handshake: (highest prep started, highest compute started), both
        // 1-based so 0 means "none yet".
        let state = Arc::new((Mutex::new((0u64, 0u64)), Condvar::new()));
        let (sp, sc) = (state.clone(), state.clone());
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(n))
            .stage(
                StageSpec::new("prep", names::spans::STAGE_TRANSFER).queue(2),
                move |it: Item| {
                    let (m, cv) = &*sp;
                    let mut st = m.lock().unwrap();
                    st.0 = it.0 + 1;
                    cv.notify_all();
                    // Hold prep k open until compute k-1 has started, so
                    // this span provably straddles it.
                    while it.0 > 0 && st.1 < it.0 {
                        st = cv.wait(st).unwrap();
                    }
                    StageOutcome::Emit(it)
                },
            )
            .stage(
                StageSpec::new("train", names::spans::STAGE_TRAIN).queue(2),
                move |it: Item| {
                    let (m, cv) = &*sc;
                    let mut st = m.lock().unwrap();
                    st.1 = it.0 + 1;
                    cv.notify_all();
                    // Hold compute k open until prep k+1 has started.
                    while it.0 + 1 < n && st.0 < it.0 + 2 {
                        st = cv.wait(st).unwrap();
                    }
                    StageOutcome::Emit(it)
                },
            )
            .run_threaded(&trace);
        assert_eq!(stats.emitted, n);
        let snap = trace.snapshot();
        let prep: Vec<_> = snap.spans(names::spans::STAGE_TRANSFER).collect();
        let train: Vec<_> = snap.spans(names::spans::STAGE_TRAIN).collect();
        assert_eq!(prep.len(), n as usize);
        assert_eq!(train.len(), n as usize);
        // The two stages record from distinct threads.
        assert_ne!(prep[0].tid, train[0].tid);
        for k in 0..(n - 1) {
            let c = train.iter().find(|e| e.batch == k).expect("compute k");
            let p = prep.iter().find(|e| e.batch == k + 1).expect("prep k+1");
            assert!(
                p.start_ns < c.end_ns && c.start_ns < p.end_ns,
                "compute {k} [{}..{}] must overlap prep {} [{}..{}]",
                c.start_ns,
                c.end_ns,
                k + 1,
                p.start_ns,
                p.end_ns
            );
        }
        // And the analysis plane credits the cross-thread overlap.
        let report = analysis::analyze(&snap);
        assert!(report.overlap_ns > 0, "analyzer must credit the overlap");
    }

    /// Backpressure: with the compute-input queue bounded at `cap`, the
    /// producer can never run more than `cap + 2` items ahead of the
    /// consumer (cap queued + one parked in `send` + one recv'd by the
    /// consumer but not yet counted), and it provably *reaches* at least
    /// `cap + 1` (the consumer refuses to proceed until it does) — i.e.
    /// the bounded queue stalls the producer at capacity instead of
    /// letting it run away (n is far larger than the bound).
    #[test]
    fn bounded_queue_stalls_the_producer_at_capacity() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let cap = 2u64;
        let n = 8u64;
        struct Gate {
            produced: u64,
            consumed: u64,
            max_ahead: u64,
        }
        let gate = Arc::new((
            Mutex::new(Gate {
                produced: 0,
                consumed: 0,
                max_ahead: 0,
            }),
            Condvar::new(),
        ));
        let (gp, gc, gr) = (gate.clone(), gate.clone(), gate.clone());
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(n))
            .stage(
                StageSpec::new("fast", names::spans::STAGE_TRANSFER),
                move |it: Item| {
                    let (m, cv) = &*gp;
                    let mut g = m.lock().unwrap();
                    g.produced += 1;
                    g.max_ahead = g.max_ahead.max(g.produced - g.consumed);
                    cv.notify_all();
                    StageOutcome::Emit(it)
                },
            )
            .stage(
                StageSpec::new("slow", names::spans::STAGE_TRAIN)
                    .queue(cap as usize)
                    .gauge(names::gauges::PIPE_QUEUE_COMPUTE),
                move |it: Item| {
                    let (m, cv) = &*gc;
                    let mut g = m.lock().unwrap();
                    g.consumed += 1;
                    // Refuse to consume until the producer is as far ahead
                    // as the queue bound permits (or out of items).
                    let target = n.min(it.0 + cap + 2);
                    while g.produced < target {
                        g = cv.wait(g).unwrap();
                    }
                    StageOutcome::Emit(it)
                },
            )
            .run_threaded(&trace);
        assert_eq!(stats.emitted, n);
        let g = gr.0.lock().unwrap();
        assert!(
            g.max_ahead >= cap + 1 && g.max_ahead <= cap + 2,
            "producer lead {} must sit in [cap+1, cap+2] = [{}, {}]",
            g.max_ahead,
            cap + 1,
            cap + 2
        );
        // The queue-depth gauge was registered for the compute input.
        let snap = trace.snapshot();
        assert!(snap
            .metrics
            .gauges
            .iter()
            .any(|(k, _)| k == names::gauges::PIPE_QUEUE_COMPUTE));
    }

    #[test]
    fn threaded_panic_poisons_without_wedging() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let stats = StageGraph::new(GraphSpec::new("t").panic_budget(0), counting_source(1000))
            .stage(
                StageSpec::new("a", names::spans::STAGE_TRANSFER).queue(1),
                StageOutcome::Emit,
            )
            .stage(
                StageSpec::new("b", names::spans::STAGE_TRAIN).queue(1),
                |it: Item| {
                    if it.0 == 3 {
                        panic!("sink dies");
                    }
                    StageOutcome::Emit(it)
                },
            )
            .run_threaded(&trace);
        // The sink poisons on batch 3; the producer unparks via the queue
        // drop and the run terminates instead of wedging.
        assert!(stats.poisoned());
        assert_eq!(stats.fatal_stage, Some(names::spans::STAGE_TRAIN));
        assert_eq!(stats.emitted, 3);
        assert_eq!(stats.panics, 1);
    }

    #[test]
    fn first_wait_is_fill_not_steady_state() {
        let trace = Trace::new(Clock::virtual_with_tick(50));
        let stats = StageGraph::new(
            GraphSpec::new("t").wait_hist(names::hists::PREP_WAIT_NS),
            counting_source(3),
        )
        .stage(
            StageSpec::new("a", names::spans::STAGE_TRAIN).wait(names::spans::STAGE_PREP),
            StageOutcome::Emit,
        )
        .run_inline(&trace);
        assert_eq!(stats.emitted, 3);
        let snap = trace.snapshot();
        // First wait → warmup span + fill hist; remaining 2 → steady state.
        assert_eq!(snap.count(names::spans::WARMUP), 1);
        assert_eq!(snap.count(names::spans::STAGE_PREP), 2);
        let steady = snap.metrics.histogram(names::hists::PREP_WAIT_NS).unwrap();
        assert_eq!(steady.count, 2);
        let fill = snap.metrics.histogram(names::hists::PIPE_FILL_NS).unwrap();
        assert_eq!(fill.count, 1);
    }

    #[test]
    fn inline_and_threaded_emit_identically() {
        let run = |threaded: bool| {
            let trace = Trace::new(Clock::virtual_with_tick(1));
            let sum = Arc::new(AtomicU64::new(0));
            let s = sum.clone();
            let g = StageGraph::new(GraphSpec::new("t"), counting_source(20))
                .stage(
                    StageSpec::new("a", names::spans::STAGE_TRANSFER),
                    |it: Item| {
                        if it.0 % 3 == 0 {
                            StageOutcome::Skip
                        } else {
                            StageOutcome::Emit(it)
                        }
                    },
                )
                .stage(StageSpec::new("b", names::spans::STAGE_TRAIN), move |it| {
                    s.fetch_add(it.0, Ordering::Relaxed);
                    StageOutcome::Emit(it)
                });
            let stats = if threaded {
                g.run_threaded(&trace)
            } else {
                g.run_inline(&trace)
            };
            (stats.emitted, stats.skipped, sum.load(Ordering::Relaxed))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fatal_outcome_stops_the_inline_run() {
        let trace = Trace::new(Clock::virtual_with_tick(1));
        let stats = StageGraph::new(GraphSpec::new("t"), counting_source(10))
            .stage(
                StageSpec::new("a", names::spans::STAGE_TRANSFER),
                |it: Item| {
                    if it.0 == 2 {
                        StageOutcome::Fatal
                    } else {
                        StageOutcome::Emit(it)
                    }
                },
            )
            .run_inline(&trace);
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.fatal_stage, Some(names::spans::STAGE_TRANSFER));
    }
}
