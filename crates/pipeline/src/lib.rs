//! Pipelined stage-graph executor (SALIENT §4, Figure 4).
//!
//! SALIENT's speedup comes from *overlap*: while the trainer computes on
//! batch `k`, batch `k+1` is being transferred and batch `k+2` prepared.
//! Before this crate each consumer (training loop, DDP ranks, the serving
//! micro-batch path) hand-rolled its own orchestration; the overlap lived
//! in ad-hoc loops that the simulator could only imitate, not share.
//!
//! This crate extracts the orchestration into one reusable engine:
//!
//! * [`StageGraph`] — a source plus ordered stages, each timed through
//!   [`salient_trace::Clock`] so the identical description runs on the real
//!   monotonic clock *and* on the simulator's virtual plane.
//! * [`exec`]-internal bounded queues give backpressure by construction:
//!   a fast producer parks, nothing is dropped, nothing spins.
//! * [`shape`] — the canonical stage shapes (names, resource classes,
//!   queue bounds) consumed by both the real executors and
//!   `salient-sim`'s discrete-event schedules, so sim-vs-real drift checks
//!   are structural rather than string-matched.
//!
//! See `DESIGN.md` §12 for the schedule diagrams and the pool-interaction
//! rationale (stage loops are dedicated threads; `salient_tensor::pool`
//! stays the intra-stage data-parallel axis).

mod exec;
mod queue;
pub mod shape;

pub use exec::{GraphSpec, PipeItem, PipeStats, StageGraph, StageOutcome, StageSpec};
