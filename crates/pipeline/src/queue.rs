//! Bounded blocking SPSC queue connecting adjacent pipeline stages.
//!
//! Backpressure is the queue bound: a producer that runs ahead of its
//! consumer blocks in [`Sender::send`] until a slot frees — no drops, no
//! busy-waiting (a condvar park, not a spin). The receiver drains every
//! queued item after the sender hangs up, so pipeline shutdown loses no
//! batch. Dropping the [`Receiver`] unblocks a parked sender with an error,
//! which is how a poisoned downstream stage releases its upstream instead
//! of wedging it.
//!
//! This is deliberately a private re-implementation rather than a reuse of
//! `salient-batchprep`'s channel: the executor sits *below* batchprep in
//! the crate stack (batchprep's `run_epoch` feeds a stage graph as its
//! source), so depending on it here would invert the layering and drag the
//! sampler/graph crates into `salient-sim`'s dependency cone.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    /// Sender dropped: receiver drains the buffer, then sees end-of-stream.
    tx_closed: bool,
    /// Receiver dropped: a blocked or future `send` fails immediately.
    rx_closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Queue state is plain data; a panicking stage thread cannot corrupt it,
/// so poisoning is survivable and must not take the pipeline down.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Producer half; closes the stream on drop.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half; drains remaining items after close, errors senders on drop.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded queue of capacity `cap` (clamped to at least 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            tx_closed: false,
            rx_closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks while the queue is at capacity (backpressure), then enqueues.
    /// Returns the item back if the receiver is gone.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut st = relock(&self.shared.state);
        while st.buf.len() >= st.cap && !st.rx_closed {
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.rx_closed {
            return Err(item);
        }
        st.buf.push_back(item);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Current queue depth (for depth gauges; racy by nature).
    pub fn len(&self) -> usize {
        relock(&self.shared.state).buf.len()
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        relock(&self.shared.state).tx_closed = true;
        self.shared.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item is available; `None` only after the sender is
    /// gone *and* the queue is fully drained — shutdown loses nothing.
    pub fn recv(&self) -> Option<T> {
        let mut st = relock(&self.shared.state);
        loop {
            if let Some(item) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.tx_closed {
                return None;
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Current queue depth (for depth gauges; racy by nature).
    pub fn len(&self) -> usize {
        relock(&self.shared.state).buf.len()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        relock(&self.shared.state).rx_closed = true;
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_after_sender_drop() {
        let (tx, rx) = bounded(4);
        for i in 0..3 {
            tx.send(i).map_err(|_| ()).expect("receiver alive");
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_errors_after_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn capacity_blocks_and_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).map_err(|_| ()).expect("receiver alive");
        let h = std::thread::spawn(move || {
            // Blocks until the main thread drains one slot.
            tx.send(2).map_err(|_| ()).expect("receiver alive");
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        h.join().map_err(|_| ()).expect("sender thread ok");
    }
}
