//! Canonical stage shapes shared by the real executors and the simulator.
//!
//! A [`StageShape`] names a pipeline stage once — its simulator task name,
//! its trace span, and the resource class it occupies — so
//! `salient-sim`'s discrete-event schedules and the real
//! [`StageGraph`](crate::StageGraph) ports are built from the same
//! constants. Drift between the two planes then shows up as a structural
//! mismatch (a missing stage, a changed queue bound), not a silently
//! diverging string.

/// Resource class a stage occupies; the simulator maps each class to a
/// distinct serial (or worker-pool) resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// CPU sampling/slicing workers (parallel, pool-sized).
    Workers,
    /// The host↔device transfer engine (serial DMA).
    Dma,
    /// The compute device (serial GPU stand-in).
    Gpu,
}

/// One stage of a canonical pipeline shape.
#[derive(Clone, Copy, Debug)]
pub struct StageShape {
    /// Simulator task-name prefix (e.g. `"transfer"`).
    pub sim_task: &'static str,
    /// Trace span recorded around the stage's work
    /// (a [`salient_trace::names::spans`] constant).
    pub span: &'static str,
    /// Resource class the stage occupies.
    pub resource: ResourceKind,
}

/// Bound of the queue feeding the compute stage: 2 ≡ double buffering
/// (one batch in flight on the device, one staged behind it). Consumed by
/// the real training executor *and* by the simulator's `train[b] →
/// train[b-2]`-style dependency, keeping the two planes in lockstep.
pub const TRANSFER_QUEUE_CAP: usize = 2;

/// The training pipeline: prep (sample+slice on workers) → transfer
/// (widen + H2D on the DMA engine) → train (fwd/bwd/step on the device).
pub fn train() -> [StageShape; 3] {
    use salient_trace::names::spans;
    [
        StageShape {
            sim_task: "prep",
            span: spans::PREP_SAMPLE,
            resource: ResourceKind::Workers,
        },
        StageShape {
            sim_task: "transfer",
            span: spans::STAGE_TRANSFER,
            resource: ResourceKind::Dma,
        },
        StageShape {
            sim_task: "train",
            span: spans::STAGE_TRAIN,
            resource: ResourceKind::Gpu,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_shape_orders_prep_transfer_train() {
        let shape = train();
        assert_eq!(shape[0].sim_task, "prep");
        assert_eq!(shape[1].sim_task, "transfer");
        assert_eq!(shape[2].sim_task, "train");
        assert_eq!(shape[0].resource, ResourceKind::Workers);
        assert_eq!(shape[1].resource, ResourceKind::Dma);
        assert_eq!(shape[2].resource, ResourceKind::Gpu);
        assert!(TRANSFER_QUEUE_CAP >= 2, "double buffering minimum");
    }
}
