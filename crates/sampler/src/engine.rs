//! The parameterized neighborhood-sampling engine.
//!
//! One generic routine implements node-wise sampling with every design choice
//! of the paper's Figure-2 exploration exposed as a parameter:
//!
//! * the global→local [`IdMap`] implementation (type parameter `M`);
//! * the without-replacement [`NeighborSet`] implementation (type
//!   parameter `S`);
//! * fused versus two-phase MFG construction ([`EngineOpts::fused`]);
//! * capacity pre-reservation ([`EngineOpts::reserve`]);
//! * the without-replacement algorithm ([`SampleAlgo`]).
//!
//! The tuned production path ([`crate::FastSampler`]) is this engine
//! monomorphized at the winning configuration.

use crate::mfg::{MessageFlowGraph, MfgLayer};
use crate::structures::{IdMap, NeighborSet};
use salient_tensor::rng::Rng;
use salient_graph::{CsrGraph, NodeId};

/// Algorithm for drawing `d` distinct neighbor positions out of `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SampleAlgo {
    /// Repeatedly draw a uniform index and reject duplicates via the
    /// [`NeighborSet`]. This is what PyG's C++ sampler does.
    Rejection,
    /// A partial Fisher–Yates shuffle over a *virtual* index array, tracking
    /// displaced entries in a small association list — no O(degree) copy, no
    /// rejection loop.
    PartialFisherYates,
}

/// Non-type design choices of the sampling engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineOpts {
    /// Map globals to locals while sampling (`true`) or in a second pass
    /// over a neighbor buffer (`false`).
    pub fused: bool,
    /// Pre-reserve the id map for the expected frontier growth each hop.
    pub reserve: bool,
    /// Without-replacement sampling algorithm.
    pub algo: SampleAlgo,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            fused: true,
            reserve: true,
            algo: SampleAlgo::PartialFisherYates,
        }
    }
}

/// Draws up to `fanout` distinct positions in `0..degree` and invokes `emit`
/// for each (rejection variant).
#[inline]
fn sample_rejection<S: NeighborSet>(
    degree: usize,
    fanout: usize,
    set: &mut S,
    rng: &mut impl Rng,
    mut emit: impl FnMut(u32),
) {
    if degree <= fanout {
        for i in 0..degree as u32 {
            emit(i);
        }
        return;
    }
    set.clear();
    while set.len() < fanout {
        let idx = rng.random_range(0..degree as u32);
        if set.insert(idx) {
            emit(idx);
        }
    }
}

/// Partial Fisher–Yates over a virtual `0..degree` array: `swaps` records
/// displaced values sparsely.
#[inline]
fn sample_partial_fy(
    degree: usize,
    fanout: usize,
    swaps: &mut Vec<(u32, u32)>,
    rng: &mut impl Rng,
    mut emit: impl FnMut(u32),
) {
    if degree <= fanout {
        for i in 0..degree as u32 {
            emit(i);
        }
        return;
    }
    swaps.clear();
    let lookup = |swaps: &[(u32, u32)], i: u32| {
        swaps
            .iter()
            .rev()
            .find(|&&(k, _)| k == i)
            .map(|&(_, v)| v)
            .unwrap_or(i)
    };
    for i in 0..fanout as u32 {
        let j = rng.random_range(i..degree as u32);
        let vj = lookup(swaps, j);
        let vi = lookup(swaps, i);
        // Virtual swap: position j takes i's value; position i's value (vj)
        // is emitted.
        swaps.push((j, vi));
        emit(vj);
    }
}

/// Scratch buffers reused across batches to avoid allocation churn.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// Two-phase neighbor buffer: `(dst_local, neighbor_global)` pairs.
    pairs: Vec<(u32, NodeId)>,
    /// Fisher–Yates displaced-entry association list.
    swaps: Vec<(u32, u32)>,
}

/// Samples a multi-hop MFG for `batch` with the given per-hop `fanouts`
/// (PyG order: `fanouts[0]` expands the batch nodes).
///
/// # Panics
///
/// Panics if `batch` is empty, contains duplicates, or `fanouts` is empty.
// lint: entry(panic-reachability)
pub fn sample_with<M: IdMap, S: NeighborSet>(
    graph: &CsrGraph,
    batch: &[NodeId],
    fanouts: &[usize],
    opts: EngineOpts,
    map: &mut M,
    set: &mut S,
    scratch: &mut EngineScratch,
    rng: &mut impl Rng,
) -> MessageFlowGraph {
    assert!(!batch.is_empty(), "cannot sample an empty batch");
    assert!(!fanouts.is_empty(), "need at least one fanout");

    map.clear();
    let mut node_ids: Vec<NodeId> = Vec::with_capacity(batch.len() * 4);
    for &v in batch {
        let local = node_ids.len() as u32;
        let (_, new) = map.get_or_insert(v, local);
        assert!(new, "duplicate node {v} in batch");
        node_ids.push(v);
    }

    let mut layers_rev: Vec<MfgLayer> = Vec::with_capacity(fanouts.len());
    let mut frontier_len = node_ids.len();

    for &fanout in fanouts {
        if opts.reserve {
            map.reserve(frontier_len * fanout);
        }
        let mut edge_src: Vec<u32> = Vec::with_capacity(frontier_len * fanout.min(16));
        let mut edge_dst: Vec<u32> = Vec::with_capacity(frontier_len * fanout.min(16));

        if opts.fused {
            for i in 0..frontier_len {
                // lint: allow(panic-reachability, frontier indices are produced by the same loop bounds that size node_ids)
                let v = node_ids[i];
                let neighbors = graph.neighbors(v);
                let degree = neighbors.len();
                let mut emit = |idx: u32| {
                    let u = neighbors[idx as usize];
                    let fallback = node_ids.len() as u32;
                    let (local, new) = map.get_or_insert(u, fallback);
                    if new {
                        node_ids.push(u);
                    }
                    edge_src.push(local);
                    edge_dst.push(i as u32);
                };
                match opts.algo {
                    SampleAlgo::Rejection => sample_rejection(degree, fanout, set, rng, &mut emit),
                    SampleAlgo::PartialFisherYates => {
                        sample_partial_fy(degree, fanout, &mut scratch.swaps, rng, &mut emit)
                    }
                }
            }
        } else {
            // Phase A: sample into a (dst, neighbor) buffer.
            scratch.pairs.clear();
            for i in 0..frontier_len {
                let v = node_ids[i];
                let neighbors = graph.neighbors(v);
                let degree = neighbors.len();
                let pairs = &mut scratch.pairs;
                let mut emit = |idx: u32| {
                    pairs.push((i as u32, neighbors[idx as usize]));
                };
                match opts.algo {
                    SampleAlgo::Rejection => sample_rejection(degree, fanout, set, rng, &mut emit),
                    SampleAlgo::PartialFisherYates => {
                        sample_partial_fy(degree, fanout, &mut scratch.swaps, rng, &mut emit)
                    }
                }
            }
            // Phase B: map globals to locals and build edge lists.
            for &(dst, u) in &scratch.pairs {
                let fallback = node_ids.len() as u32;
                let (local, new) = map.get_or_insert(u, fallback);
                if new {
                    node_ids.push(u);
                }
                edge_src.push(local);
                edge_dst.push(dst);
            }
        }

        layers_rev.push(MfgLayer {
            edge_src,
            edge_dst,
            n_src: node_ids.len(),
            n_dst: frontier_len,
        });
        frontier_len = node_ids.len();
    }

    // Hops were built output-side first; forward order is the reverse, and
    // each layer's n_src must be the final node count of the *next* sampled
    // hop. After reversal that is already encoded: layer k (forward) was
    // sampled at step L-1-k and its n_src equals the node count at that
    // point... except earlier hops were recorded before later hops extended
    // `node_ids`. Fix up: forward layer 0 reads the full node list.
    layers_rev.reverse();
    let mut expected_src = node_ids.len();
    for layer in &mut layers_rev {
        layer.n_src = expected_src;
        expected_src = layer.n_dst;
    }

    MessageFlowGraph {
        node_ids,
        layers: layers_rev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{ArrayNeighborSet, FlatIdMap, StdIdMap, StdNeighborSet};
    use salient_graph::DatasetConfig;

    fn line_graph() -> CsrGraph {
        // 0 - 1 - 2 - 3 (undirected)
        CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn one_hop_full_fanout_takes_all_neighbors() {
        let g = line_graph();
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let mfg = sample_with(
            &g,
            &[1],
            &[10],
            EngineOpts::default(),
            &mut FlatIdMap::default(),
            &mut ArrayNeighborSet::new(),
            &mut EngineScratch::default(),
            &mut rng,
        );
        mfg.validate().unwrap();
        assert_eq!(mfg.batch_size(), 1);
        assert_eq!(mfg.node_ids[0], 1);
        // Node 1 has neighbors {0, 2}.
        let mut rest = mfg.node_ids[1..].to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 2]);
        assert_eq!(mfg.layers[0].num_edges(), 2);
    }

    #[test]
    fn two_hop_expansion_chains() {
        let g = line_graph();
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let mfg = sample_with(
            &g,
            &[0],
            &[5, 5],
            EngineOpts::default(),
            &mut FlatIdMap::default(),
            &mut ArrayNeighborSet::new(),
            &mut EngineScratch::default(),
            &mut rng,
        );
        mfg.validate().unwrap();
        // 0 -> 1 -> {0, 2}: nodes {0, 1, 2}.
        assert_eq!(mfg.num_nodes(), 3);
        assert_eq!(mfg.layers.len(), 2);
        assert_eq!(mfg.layers[0].n_src, 3);
        assert_eq!(mfg.layers.last().unwrap().n_dst, 1);
    }

    #[test]
    fn fanout_bounds_respected_and_no_duplicate_edges() {
        let ds = DatasetConfig::tiny(3).build();
        let batch: Vec<NodeId> = ds.splits.train[..32].to_vec();
        for algo in [SampleAlgo::Rejection, SampleAlgo::PartialFisherYates] {
            for fused in [true, false] {
                let mut rng = salient_tensor::rng::StdRng::seed_from_u64(9);
                let mfg = sample_with(
                    &ds.graph,
                    &batch,
                    &[7, 4],
                    EngineOpts {
                        fused,
                        reserve: true,
                        algo,
                    },
                    &mut FlatIdMap::default(),
                    &mut ArrayNeighborSet::new(),
                    &mut EngineScratch::default(),
                    &mut rng,
                );
                mfg.validate().unwrap();
                for (layer, cap) in mfg.layers.iter().rev().zip([7usize, 4]) {
                    let mut per_dst = std::collections::HashMap::new();
                    for (&s, &d) in layer.edge_src.iter().zip(layer.edge_dst.iter()) {
                        let entry: &mut Vec<u32> = per_dst.entry(d).or_default();
                        assert!(!entry.contains(&s), "duplicate sampled neighbor");
                        entry.push(s);
                    }
                    for (d, ns) in per_dst {
                        let global = mfg.node_ids[d as usize];
                        let degree = ds.graph.degree(global);
                        assert!(
                            ns.len() <= cap.min(degree),
                            "dst {d}: {} sampled, cap {cap}, degree {degree}",
                            ns.len()
                        );
                        // Degree >= fanout must yield exactly fanout samples.
                        if degree >= cap {
                            assert_eq!(ns.len(), cap);
                        } else {
                            assert_eq!(ns.len(), degree, "low degree takes all");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sampled_edges_exist_in_graph() {
        let ds = DatasetConfig::tiny(4).build();
        let batch: Vec<NodeId> = ds.splits.train[..16].to_vec();
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(2);
        let mfg = sample_with(
            &ds.graph,
            &batch,
            &[10, 5],
            EngineOpts::default(),
            &mut FlatIdMap::default(),
            &mut ArrayNeighborSet::new(),
            &mut EngineScratch::default(),
            &mut rng,
        );
        for layer in &mfg.layers {
            for (&s, &d) in layer.edge_src.iter().zip(layer.edge_dst.iter()) {
                let gs = mfg.node_ids[s as usize];
                let gd = mfg.node_ids[d as usize];
                assert!(
                    ds.graph.neighbors(gd).binary_search(&gs).is_ok(),
                    "edge ({gs} -> {gd}) not in graph"
                );
            }
        }
    }

    #[test]
    fn variants_agree_on_node_set_for_full_expansion() {
        // With fanouts >= max degree every variant must produce the exact
        // L-hop neighborhood, independent of data structures and RNG.
        let ds = DatasetConfig::tiny(5).build();
        let batch: Vec<NodeId> = ds.splits.train[..8].to_vec();
        let big = vec![10_000usize; 2];
        let sorted_nodes = |mfg: &MessageFlowGraph| {
            let mut v = mfg.node_ids.clone();
            v.sort_unstable();
            v
        };
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        let a = sample_with(
            &ds.graph,
            &batch,
            &big,
            EngineOpts::default(),
            &mut FlatIdMap::default(),
            &mut ArrayNeighborSet::new(),
            &mut EngineScratch::default(),
            &mut rng,
        );
        let b = sample_with(
            &ds.graph,
            &batch,
            &big,
            EngineOpts {
                fused: false,
                reserve: false,
                algo: SampleAlgo::Rejection,
            },
            &mut StdIdMap::new(),
            &mut StdNeighborSet::new(),
            &mut EngineScratch::default(),
            &mut rng,
        );
        assert_eq!(sorted_nodes(&a), sorted_nodes(&b));
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_batch_rejected() {
        let g = line_graph();
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
        sample_with(
            &g,
            &[1, 1],
            &[2],
            EngineOpts::default(),
            &mut FlatIdMap::default(),
            &mut ArrayNeighborSet::new(),
            &mut EngineScratch::default(),
            &mut rng,
        );
    }

    #[test]
    fn partial_fy_is_uniform_without_replacement() {
        // Statistical check: sampling 2 of 4 positions ~ each position hit
        // with probability 1/2.
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        let mut swaps = Vec::new();
        let trials = 40_000;
        for _ in 0..trials {
            let mut seen = Vec::new();
            sample_partial_fy(4, 2, &mut swaps, &mut rng, |i| seen.push(i));
            assert_eq!(seen.len(), 2);
            assert_ne!(seen[0], seen[1], "without replacement");
            for &i in &seen {
                counts[i as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / trials as f64;
            assert!((p - 0.5).abs() < 0.02, "position {i} probability {p}");
        }
    }
}
