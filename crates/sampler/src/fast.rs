//! The tuned SALIENT sampler: the engine monomorphized at the winning point
//! of the design-space exploration (flat open-addressing id map, array
//! neighbor set, fused MFG construction, capacity reservation, partial
//! Fisher–Yates sampling).

use crate::engine::{sample_with, EngineOpts, EngineScratch, SampleAlgo};
use crate::mfg::MessageFlowGraph;
use crate::structures::{ArrayNeighborSet, FlatIdMap};
use salient_tensor::rng::StdRng;
use salient_graph::{CsrGraph, NodeId};

/// SALIENT's production neighborhood sampler.
///
/// The sampler owns reusable scratch structures, so one instance per batch-
/// preparation thread amortizes all allocation across batches.
///
/// # Examples
///
/// ```
/// use salient_graph::DatasetConfig;
/// use salient_sampler::FastSampler;
///
/// let ds = DatasetConfig::tiny(0).build();
/// let mut sampler = FastSampler::new(7);
/// let mfg = sampler.sample(&ds.graph, &ds.splits.train[..16], &[15, 10, 5]);
/// assert_eq!(mfg.batch_size(), 16);
/// mfg.validate().unwrap();
/// ```
#[derive(Debug)]
pub struct FastSampler {
    map: FlatIdMap,
    set: ArrayNeighborSet,
    scratch: EngineScratch,
    rng: StdRng,
}

impl FastSampler {
    /// Creates a sampler with its own deterministic RNG stream.
    pub fn new(seed: u64) -> Self {
        FastSampler {
            map: FlatIdMap::with_capacity(1 << 14),
            set: ArrayNeighborSet::new(),
            scratch: EngineScratch::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples the MFG for one mini-batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or contains duplicates, or `fanouts` is
    /// empty.
    pub fn sample(
        &mut self,
        graph: &CsrGraph,
        batch: &[NodeId],
        fanouts: &[usize],
    ) -> MessageFlowGraph {
        sample_with(
            graph,
            batch,
            fanouts,
            EngineOpts {
                fused: true,
                reserve: true,
                algo: SampleAlgo::PartialFisherYates,
            },
            &mut self.map,
            &mut self.set,
            &mut self.scratch,
            &mut self.rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    #[test]
    fn reusing_sampler_across_batches_is_clean() {
        let ds = DatasetConfig::tiny(1).build();
        let mut s = FastSampler::new(0);
        let a = s.sample(&ds.graph, &ds.splits.train[..8], &[5, 5]);
        let b = s.sample(&ds.graph, &ds.splits.train[8..16], &[5, 5]);
        a.validate().unwrap();
        b.validate().unwrap();
        // Second batch must not leak first batch's nodes.
        assert_eq!(&b.node_ids[..8], &ds.splits.train[8..16]);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = DatasetConfig::tiny(1).build();
        let mfg1 = FastSampler::new(5).sample(&ds.graph, &ds.splits.train[..8], &[5, 5]);
        let mfg2 = FastSampler::new(5).sample(&ds.graph, &ds.splits.train[..8], &[5, 5]);
        assert_eq!(mfg1, mfg2);
        let mfg3 = FastSampler::new(6).sample(&ds.graph, &ds.splits.train[..8], &[5, 5]);
        assert!(mfg1 != mfg3 || mfg1.num_edges() == mfg3.num_edges());
    }

    #[test]
    fn fast_sampler_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FastSampler>();
    }
}
