//! Layer-wise importance sampling (the FastGCN / LADIES family, §2.2).
//!
//! Instead of sampling `d` neighbors *per node* (node-wise), layer-wise
//! methods sample a fixed budget of nodes *per layer* from the union of the
//! frontier's neighborhoods, with probability proportional to (squared)
//! degree, then keep the induced bipartite edges. Representations are
//! rescaled by inverse sampling probability to keep the pre-activation
//! aggregation unbiased.
//!
//! This is a baseline *category* the paper positions node-wise sampling
//! against; implementing it lets the benches compare MFG shapes (layer-wise
//! MFGs have bounded width but much sparser connectivity).

use crate::mfg::{MessageFlowGraph, MfgLayer};
use crate::structures::{FlatIdMap, IdMap};
use salient_tensor::rng::StdRng;
use salient_tensor::rng::Rng;
use salient_graph::{CsrGraph, NodeId};

/// A layer-wise (LADIES-style) sampler with per-layer node budgets.
#[derive(Debug)]
pub struct LayerwiseSampler {
    rng: StdRng,
    map: FlatIdMap,
}

impl LayerwiseSampler {
    /// Creates a sampler with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        LayerwiseSampler {
            rng: StdRng::seed_from_u64(seed),
            map: FlatIdMap::with_capacity(1 << 12),
        }
    }

    /// Samples an MFG where hop `k` draws at most `budgets[k]` distinct
    /// support nodes from the frontier's united neighborhood, importance-
    /// weighted by degree.
    ///
    /// The returned MFG uses the same PyG layout as the node-wise sampler,
    /// so models consume it unchanged. (Inverse-probability rescaling is
    /// folded into edge multiplicity-free mean aggregation; for the
    /// unbiasedness-sensitive use cases the caller can divide by
    /// [`LayerwiseSampler::keep_probability`].)
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty/duplicated or `budgets` is empty.
    pub fn sample(
        &mut self,
        graph: &CsrGraph,
        batch: &[NodeId],
        budgets: &[usize],
    ) -> MessageFlowGraph {
        assert!(!batch.is_empty(), "cannot sample an empty batch");
        assert!(!budgets.is_empty(), "need at least one layer budget");
        self.map.clear();
        let mut node_ids: Vec<NodeId> = Vec::with_capacity(batch.len() * 4);
        for &v in batch {
            let local = node_ids.len() as u32;
            let (_, new) = self.map.get_or_insert(v, local);
            assert!(new, "duplicate node {v} in batch");
            node_ids.push(v);
        }

        let mut layers_rev: Vec<MfgLayer> = Vec::with_capacity(budgets.len());
        let mut frontier_len = node_ids.len();
        for &budget in budgets {
            // Candidate pool: union of the frontier's neighbors, weighted by
            // their degree (the LADIES q ∝ deg² heuristic restricted to the
            // frontier neighborhood; degree of the candidate stands in for
            // the column norm).
            let mut pool: Vec<NodeId> = Vec::new();
            let mut pool_seen = FlatIdMap::with_capacity(frontier_len * 8);
            for i in 0..frontier_len {
                // lint: allow(panic-reachability, hop frontiers index node_ids within the bounds the previous hop appended)
                for &u in graph.neighbors(node_ids[i]) {
                    let (_, new) = pool_seen.get_or_insert(u, 0);
                    if new {
                        pool.push(u);
                    }
                }
            }
            // Weighted reservoir-free selection: sample `budget` distinct
            // pool entries with probability proportional to degree via
            // cumulative inversion.
            let weights: Vec<f64> = pool
                .iter()
                .map(|&u| (graph.degree(u) as f64).max(1.0))
                .collect();
            let selected = weighted_sample_distinct(&pool, &weights, budget, &mut self.rng);

            // Register the supports and keep induced edges frontier←support.
            let mut edge_src = Vec::new();
            let mut edge_dst = Vec::new();
            // Selected supports carry value 1; probe insertions carry 0, so
            // the stored value (not insertion freshness) is the membership
            // test.
            let mut support_local = FlatIdMap::with_capacity(selected.len() * 2);
            for &u in &selected {
                support_local.get_or_insert(u, 1);
            }
            for i in 0..frontier_len {
                for &u in graph.neighbors(node_ids[i]) {
                    let (selected_flag, _) = support_local.get_or_insert(u, 0);
                    if selected_flag == 1 {
                        let fallback = node_ids.len() as u32;
                        let (local, fresh) = self.map.get_or_insert(u, fallback);
                        if fresh {
                            node_ids.push(u);
                        }
                        edge_src.push(local);
                        edge_dst.push(i as u32);
                    }
                }
            }
            layers_rev.push(MfgLayer {
                edge_src,
                edge_dst,
                n_src: node_ids.len(),
                n_dst: frontier_len,
            });
            frontier_len = node_ids.len();
        }
        layers_rev.reverse();
        let mut expected_src = node_ids.len();
        for layer in &mut layers_rev {
            layer.n_src = expected_src;
            expected_src = layer.n_dst;
        }
        MessageFlowGraph {
            node_ids,
            layers: layers_rev,
        }
    }

    /// Probability that a candidate of degree `deg` is kept when `budget`
    /// nodes are drawn from a pool with total degree `pool_degree` (first-
    /// order approximation used for inverse-probability rescaling).
    pub fn keep_probability(deg: usize, pool_degree: f64, budget: usize) -> f64 {
        (budget as f64 * deg as f64 / pool_degree.max(1.0)).min(1.0)
    }
}

/// Samples up to `k` distinct items with probability proportional to
/// `weights`, by repeated cumulative inversion with removal.
fn weighted_sample_distinct(
    items: &[NodeId],
    weights: &[f64],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    if items.len() <= k {
        return items.to_vec();
    }
    let mut cum: Vec<f64> = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cum.push(acc);
    }
    let mut taken = vec![false; items.len()];
    let mut out = Vec::with_capacity(k);
    let mut guard = 0usize;
    while out.len() < k && guard < k * 30 {
        guard += 1;
        let x: f64 = rng.random::<f64>() * acc;
        let i = cum.partition_point(|&c| c < x).min(items.len() - 1);
        if !taken[i] {
            taken[i] = true;
            out.push(items[i]);
        }
    }
    // Rejection stalls only with extreme weight skew; top up determinis-
    // tically to honor the budget.
    if out.len() < k {
        for (i, &item) in items.iter().enumerate() {
            if out.len() >= k {
                break;
            }
            if !taken[i] {
                taken[i] = true;
                out.push(item);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    #[test]
    fn layerwise_mfg_is_valid_and_budgeted() {
        let ds = DatasetConfig::tiny(70).build();
        let batch = &ds.splits.train[..16];
        let mut s = LayerwiseSampler::new(1);
        let mfg = s.sample(&ds.graph, batch, &[32, 16]);
        mfg.validate().unwrap();
        assert_eq!(mfg.batch_size(), 16);
        // New nodes per hop are bounded by the budget.
        let hop1_new = mfg.layers[1].n_src - mfg.layers[1].n_dst;
        assert!(hop1_new <= 32, "hop 1 added {hop1_new} > 32 supports");
    }

    #[test]
    fn layerwise_width_is_bounded_unlike_nodewise() {
        // The defining property: total nodes grow linearly in the budget,
        // not exponentially in the fanout.
        let ds = DatasetConfig::products_sim(0.05).build();
        let batch = &ds.splits.train[..32];
        let mut lw = LayerwiseSampler::new(0);
        let mfg = lw.sample(&ds.graph, batch, &[64, 64, 64]);
        mfg.validate().unwrap();
        assert!(
            mfg.num_nodes() <= 32 + 3 * 64,
            "layer-wise width exploded: {}",
            mfg.num_nodes()
        );
        let mut nw = crate::FastSampler::new(0);
        let nodewise = nw.sample(&ds.graph, batch, &[15, 10, 5]);
        assert!(
            nodewise.num_nodes() > mfg.num_nodes(),
            "node-wise should expand more: {} vs {}",
            nodewise.num_nodes(),
            mfg.num_nodes()
        );
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<u32> = (0..100).collect();
        let weights: Vec<f64> = (0..100).map(|i| if i < 10 { 100.0 } else { 1.0 }).collect();
        let mut heavy_hits = 0;
        for _ in 0..200 {
            let s = weighted_sample_distinct(&items, &weights, 5, &mut rng);
            heavy_hits += s.iter().filter(|&&x| x < 10).count();
        }
        // Heavy items carry ~92% of the mass; expect most picks there.
        assert!(heavy_hits > 600, "only {heavy_hits}/1000 heavy picks");
    }

    #[test]
    fn keep_probability_sane() {
        assert!(LayerwiseSampler::keep_probability(10, 100.0, 5) <= 1.0);
        assert_eq!(LayerwiseSampler::keep_probability(1000, 10.0, 5), 1.0);
    }
}
