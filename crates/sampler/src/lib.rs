//! # salient-sampler
//!
//! SALIENT's performance-engineered neighborhood sampler (§4.1 of the
//! paper): node-wise fanout sampling without replacement producing PyG-style
//! message-flow graphs, a parameterized engine exposing the full design
//! space of the paper's Figure-2 exploration, the tuned [`FastSampler`], the
//! STL-style [`PygSampler`] baseline, and hop-by-hop trace replay for
//! microbenchmarking.
//!
//! # Example
//!
//! ```
//! use salient_graph::DatasetConfig;
//! use salient_sampler::{FastSampler, PygSampler};
//!
//! let ds = DatasetConfig::tiny(0).build();
//! let batch = &ds.splits.train[..32];
//! let fast = FastSampler::new(1).sample(&ds.graph, batch, &[15, 10, 5]);
//! let base = PygSampler::new(1).sample(&ds.graph, batch, &[15, 10, 5]);
//! assert_eq!(fast.batch_size(), base.batch_size());
//! ```

#![warn(missing_docs)]

mod engine;
mod fast;
mod layerwise;
mod mfg;
mod pyg_baseline;
mod saint;
mod structures;
mod trace;
mod variants;

pub use engine::{sample_with, EngineOpts, EngineScratch, SampleAlgo};
pub use fast::FastSampler;
pub use layerwise::LayerwiseSampler;
pub use mfg::{MessageFlowGraph, MfgLayer};
pub use pyg_baseline::PygSampler;
pub use saint::SaintSampler;
pub use structures::{
    ArrayNeighborSet, FlatIdMap, FlatNeighborSet, IdMap, NeighborSet, StdIdMap, StdNeighborSet,
};
pub use trace::{record_trace, replay_trace, HopTrace, SampleTrace};
pub use variants::{IdMapKind, NeighborSetKind, VariantConfig, VariantSampler};
