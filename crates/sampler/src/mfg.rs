//! Message-flow graphs (MFGs): the sampled computation structure of one
//! mini-batch.
//!
//! Node-wise sampling (§4.1) produces, for a batch `V_b` and fanouts
//! `(d¹, …, d^L)`, a sequence of bipartite graphs. We follow the PyG
//! `NeighborSampler` layout exactly:
//!
//! * a single `node_ids` list of global ids with the *prefix property*: the
//!   batch nodes are `node_ids[..batch_size]`, the frontier after one hop is
//!   a longer prefix, and so on;
//! * one [`MfgLayer`] per hop, each an edge list in *local* ids, stored in
//!   forward order (the layer touching raw features first).
//!
//! A GNN forward pass starts from `x = features[node_ids]` and per layer
//! computes `x_target = x[:n_dst]` then aggregates over the edge list — the
//! exact semantics of Listing 1 in the paper.

use salient_graph::NodeId;

/// One bipartite hop of a message-flow graph, in local ids.
#[derive(Clone, Debug, PartialEq)]
pub struct MfgLayer {
    /// Local source index of each edge (`< n_src`).
    pub edge_src: Vec<u32>,
    /// Local destination index of each edge (`< n_dst`).
    pub edge_dst: Vec<u32>,
    /// Number of source nodes (rows of the layer input).
    pub n_src: usize,
    /// Number of destination nodes (rows of the layer output; a prefix of
    /// the sources).
    pub n_dst: usize,
}

impl MfgLayer {
    /// Number of edges in this hop.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Validates local-id bounds and the prefix property.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_dst > self.n_src {
            return Err(format!(
                "destinations ({}) must be a prefix of sources ({})",
                self.n_dst, self.n_src
            ));
        }
        if self.edge_src.len() != self.edge_dst.len() {
            return Err("edge arrays must have equal length".into());
        }
        if let Some(&s) = self.edge_src.iter().find(|&&s| s as usize >= self.n_src) {
            return Err(format!("edge source {s} out of range ({})", self.n_src));
        }
        if let Some(&d) = self.edge_dst.iter().find(|&&d| d as usize >= self.n_dst) {
            return Err(format!("edge destination {d} out of range ({})", self.n_dst));
        }
        Ok(())
    }
}

/// A sampled multi-hop computation graph for one mini-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct MessageFlowGraph {
    /// Global ids of every node touched by the batch; the first
    /// `batch_size()` entries are the batch (output) nodes.
    pub node_ids: Vec<NodeId>,
    /// Hops in forward order: `layers[0]` consumes the full `node_ids`
    /// feature rows, `layers.last()` produces the batch outputs.
    pub layers: Vec<MfgLayer>,
}

impl MessageFlowGraph {
    /// Number of batch (output) nodes.
    pub fn batch_size(&self) -> usize {
        self.layers.last().map_or(self.node_ids.len(), |l| l.n_dst)
    }

    /// Total number of sampled nodes (feature rows to slice and transfer).
    pub fn num_nodes(&self) -> usize {
        self.node_ids.len()
    }

    /// Total edges across all hops.
    pub fn num_edges(&self) -> usize {
        self.layers.iter().map(MfgLayer::num_edges).sum()
    }

    /// Bytes of the MFG structure itself (edge lists + node ids), i.e. what
    /// must cross the CPU→GPU bus besides features and labels.
    pub fn structure_bytes(&self) -> usize {
        self.node_ids.len() * 4 + self.num_edges() * 8
    }

    /// Validates the whole MFG: per-layer invariants plus inter-layer
    /// chaining (`layers[i].n_dst == layers[i+1].n_src`) and the node-list
    /// prefix property (`layers[0].n_src == node_ids.len()`).
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("MFG must have at least one layer".into());
        }
        if self.layers[0].n_src != self.node_ids.len() {
            return Err(format!(
                "first layer reads {} rows but {} nodes were sampled",
                self.layers[0].n_src,
                self.node_ids.len()
            ));
        }
        for (i, layer) in self.layers.iter().enumerate() {
            layer
                .validate()
                .map_err(|e| format!("layer {i}: {e}"))?;
            if i + 1 < self.layers.len() && layer.n_dst != self.layers[i + 1].n_src {
                return Err(format!(
                    "layer {i} produces {} rows but layer {} expects {}",
                    layer.n_dst,
                    i + 1,
                    self.layers[i + 1].n_src
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_mfg() -> MessageFlowGraph {
        // Batch {0}; hop 1 adds node 1; hop 2 adds node 2.
        MessageFlowGraph {
            node_ids: vec![10, 20, 30],
            layers: vec![
                MfgLayer {
                    edge_src: vec![2, 1],
                    edge_dst: vec![1, 0],
                    n_src: 3,
                    n_dst: 2,
                },
                MfgLayer {
                    edge_src: vec![1],
                    edge_dst: vec![0],
                    n_src: 2,
                    n_dst: 1,
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let m = valid_mfg();
        assert_eq!(m.batch_size(), 1);
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.num_edges(), 3);
        assert_eq!(m.structure_bytes(), 3 * 4 + 3 * 8);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_catches_broken_chain() {
        let mut m = valid_mfg();
        m.layers[0].n_dst = 1; // breaks chaining with layer 1 (n_src = 2)
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_range_edge() {
        let mut m = valid_mfg();
        m.layers[1].edge_src[0] = 9;
        assert!(m.validate().unwrap_err().contains("source"));
    }

    #[test]
    fn validate_catches_prefix_violation() {
        let mut m = valid_mfg();
        m.node_ids.push(40);
        assert!(m.validate().unwrap_err().contains("sampled"));
    }

    #[test]
    fn layer_validate_dst_not_prefix() {
        let l = MfgLayer {
            edge_src: vec![],
            edge_dst: vec![],
            n_src: 2,
            n_dst: 3,
        };
        assert!(l.validate().is_err());
    }
}
