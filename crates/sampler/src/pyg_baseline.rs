//! The PyG-`NeighborSampler`-style baseline: STL-analogue hash structures
//! (SipHash `HashMap`/`HashSet`), two-phase MFG construction, no capacity
//! reservation, rejection sampling. This is the "None (PyG)" row of Table 3
//! and the 1.0× reference line of Figure 2.

use crate::engine::{sample_with, EngineOpts, EngineScratch, SampleAlgo};
use crate::mfg::MessageFlowGraph;
use crate::structures::{StdIdMap, StdNeighborSet};
use salient_tensor::rng::StdRng;
use salient_graph::{CsrGraph, NodeId};

/// Reference sampler approximating PyG's C++ `NeighborSampler`.
#[derive(Debug)]
pub struct PygSampler {
    map: StdIdMap,
    set: StdNeighborSet,
    scratch: EngineScratch,
    rng: StdRng,
}

impl PygSampler {
    /// Creates a baseline sampler with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        PygSampler {
            map: StdIdMap::new(),
            set: StdNeighborSet::new(),
            scratch: EngineScratch::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples the MFG for one mini-batch with baseline data structures.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or contains duplicates, or `fanouts` is
    /// empty.
    pub fn sample(
        &mut self,
        graph: &CsrGraph,
        batch: &[NodeId],
        fanouts: &[usize],
    ) -> MessageFlowGraph {
        sample_with(
            graph,
            batch,
            fanouts,
            EngineOpts {
                fused: false,
                reserve: false,
                algo: SampleAlgo::Rejection,
            },
            &mut self.map,
            &mut self.set,
            &mut self.scratch,
            &mut self.rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FastSampler;
    use salient_graph::DatasetConfig;

    #[test]
    fn baseline_and_fast_produce_equivalent_statistics() {
        let ds = DatasetConfig::tiny(2).build();
        let batch = &ds.splits.train[..32];
        let a = PygSampler::new(1).sample(&ds.graph, batch, &[10, 5]);
        let b = FastSampler::new(1).sample(&ds.graph, batch, &[10, 5]);
        a.validate().unwrap();
        b.validate().unwrap();
        assert_eq!(a.batch_size(), b.batch_size());
        // Same distributional footprint (same graph, same fanouts): node and
        // edge counts within a loose band of each other.
        let ratio = a.num_nodes() as f64 / b.num_nodes() as f64;
        assert!((0.7..1.3).contains(&ratio), "node count ratio {ratio}");
    }
}
