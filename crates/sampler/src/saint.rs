//! Subgraph sampling (the Cluster-GCN / GraphSAINT family, §2.2).
//!
//! These methods "sample a connected subgraph and compute mini-batch loss
//! restricted to this subgraph": every GNN layer operates on the *same*
//! induced subgraph rather than a shrinking bipartite tower. We implement
//! the GraphSAINT random-walk sampler — union of short random walks from a
//! set of root nodes — and express the result as an MFG whose every hop is
//! the induced subgraph, so the standard models consume it unchanged.

use crate::mfg::{MessageFlowGraph, MfgLayer};
use crate::structures::{FlatIdMap, IdMap};
use salient_tensor::rng::StdRng;
use salient_tensor::rng::Rng;
use salient_graph::{CsrGraph, NodeId};

/// A GraphSAINT-style random-walk subgraph sampler.
#[derive(Debug)]
pub struct SaintSampler {
    rng: StdRng,
    map: FlatIdMap,
    /// Length of each random walk.
    pub walk_length: usize,
}

impl SaintSampler {
    /// Creates a sampler with walks of the given length.
    pub fn new(seed: u64, walk_length: usize) -> Self {
        SaintSampler {
            rng: StdRng::seed_from_u64(seed),
            map: FlatIdMap::with_capacity(1 << 12),
            walk_length,
        }
    }

    /// Samples the union of random walks rooted at `roots`, induces the
    /// subgraph, and returns it as an MFG of `num_layers` identical hops.
    /// The first `roots.len()` entries of `node_ids` are the roots (the
    /// supervised batch), matching the PyG prefix convention.
    ///
    /// # Panics
    ///
    /// Panics if `roots` is empty/duplicated or `num_layers == 0`.
    pub fn sample(
        &mut self,
        graph: &CsrGraph,
        roots: &[NodeId],
        num_layers: usize,
    ) -> MessageFlowGraph {
        assert!(!roots.is_empty(), "cannot sample an empty batch");
        assert!(num_layers > 0, "need at least one layer");
        self.map.clear();
        let mut node_ids: Vec<NodeId> = Vec::with_capacity(roots.len() * (self.walk_length + 1));
        for &v in roots {
            let local = node_ids.len() as u32;
            let (_, new) = self.map.get_or_insert(v, local);
            assert!(new, "duplicate root {v}");
            node_ids.push(v);
        }
        // Random walks.
        for &root in roots {
            let mut cur = root;
            for _ in 0..self.walk_length {
                let ns = graph.neighbors(cur);
                if ns.is_empty() {
                    break;
                }
                // lint: allow(panic-reachability, random_range(0..ns.len()) is in bounds and ns is checked non-empty before the walk step)
                cur = ns[self.rng.random_range(0..ns.len())];
                let fallback = node_ids.len() as u32;
                let (_, new) = self.map.get_or_insert(cur, fallback);
                if new {
                    node_ids.push(cur);
                }
            }
        }
        // Induced subgraph edges, in local ids: membership via binary search
        // over a sorted (global, local) index.
        let n = node_ids.len();
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut sorted: Vec<(NodeId, u32)> = node_ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        sorted.sort_unstable();
        for (i, &v) in node_ids.iter().enumerate() {
            for &u in graph.neighbors(v) {
                if let Ok(pos) = sorted.binary_search_by_key(&u, |&(g, _)| g) {
                    // Aggregation edge u -> v (v gathers from u).
                    edge_src.push(sorted[pos].1);
                    edge_dst.push(i as u32);
                }
            }
        }
        let layer = MfgLayer {
            edge_src,
            edge_dst,
            n_src: n,
            n_dst: n,
        };
        MessageFlowGraph {
            node_ids,
            layers: vec![layer; num_layers],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    #[test]
    fn saint_subgraph_is_valid_and_induced() {
        let ds = DatasetConfig::tiny(80).build();
        let roots = &ds.splits.train[..16];
        let mut s = SaintSampler::new(2, 4);
        let mfg = s.sample(&ds.graph, roots, 3);
        mfg.validate().unwrap();
        assert_eq!(&mfg.node_ids[..16], roots);
        assert_eq!(mfg.layers.len(), 3);
        // Every edge of the MFG exists in the graph, and every edge of the
        // induced subgraph is present (check a node's full adjacency).
        let layer = &mfg.layers[0];
        for (&s_, &d) in layer.edge_src.iter().zip(layer.edge_dst.iter()) {
            let (gs, gd) = (mfg.node_ids[s_ as usize], mfg.node_ids[d as usize]);
            assert!(ds.graph.neighbors(gd).binary_search(&gs).is_ok());
        }
        // Induced completeness: for the first node, every neighbor inside
        // the node set must appear as an incoming edge.
        let v = mfg.node_ids[0];
        let in_set: std::collections::HashSet<u32> = mfg.node_ids.iter().copied().collect();
        let expected: usize = ds
            .graph
            .neighbors(v)
            .iter()
            .filter(|u| in_set.contains(u))
            .count();
        let got = layer.edge_dst.iter().filter(|&&d| d == 0).count();
        assert_eq!(got, expected, "induced subgraph must keep all internal edges");
    }

    #[test]
    fn subgraph_size_scales_with_walk_length() {
        let ds = DatasetConfig::tiny(81).build();
        let roots = &ds.splits.train[..8];
        let short = SaintSampler::new(0, 1).sample(&ds.graph, roots, 2).num_nodes();
        let long = SaintSampler::new(0, 12).sample(&ds.graph, roots, 2).num_nodes();
        assert!(long > short, "longer walks should reach more nodes: {short} vs {long}");
    }

}
