//! The data structures whose choice dominates sampler performance (§4.1).
//!
//! The paper's design-space exploration found that replacing the C++ STL
//! hash map/set with a flat open-addressing ("swiss table"-style) layout
//! yields ~2×, and replacing the neighbor-dedup *set* with a plain array
//! (linear search, but cache-resident at fanout ≤ 20) another ~17 %.
//!
//! * [`IdMap`] — global→local node-id mapping used to build MFG edge lists.
//! * [`NeighborSet`] — tracks the (at most `fanout`) indices already sampled
//!   for one destination node, for sampling *without replacement*.
//!
//! Each has a "standard library" implementation (the PyG/STL analogue,
//! SipHash + buckets) and a flat implementation; the set additionally has the
//! array variant. All implementations are reusable across batches via
//! `clear`, because allocation churn was one of the baseline's hidden costs.

use salient_graph::NodeId;
use std::collections::{HashMap, HashSet};

const EMPTY: u32 = u32::MAX;

/// Multiplicative (Fibonacci) hash of a `u32` key into `bits` bits.
#[inline]
fn fib_hash(key: u32, bits: u32) -> usize {
    ((key.wrapping_mul(0x9E37_79B9)) >> (32 - bits)) as usize
}

/// Global→local node id map.
pub trait IdMap {
    /// Returns the local id of `global`, inserting `fallback` if absent.
    /// The boolean is `true` when the key was newly inserted.
    fn get_or_insert(&mut self, global: NodeId, fallback: u32) -> (u32, bool);

    /// Removes all entries, retaining capacity where possible.
    fn clear(&mut self);

    /// Pre-sizes the structure for roughly `n` keys (no-op where
    /// unsupported).
    fn reserve(&mut self, n: usize);

    /// Number of stored keys.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `std::collections::HashMap` (SipHash) — the STL-map analogue of the PyG
/// baseline.
#[derive(Debug, Default)]
pub struct StdIdMap {
    map: HashMap<NodeId, u32>,
}

impl StdIdMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IdMap for StdIdMap {
    fn get_or_insert(&mut self, global: NodeId, fallback: u32) -> (u32, bool) {
        match self.map.entry(global) {
            std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(fallback);
                (fallback, true)
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn reserve(&mut self, n: usize) {
        self.map.reserve(n);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Flat open-addressing map with linear probing and Fibonacci hashing — the
/// "swiss table" analogue that gave the paper its ~2× sampler speedup.
#[derive(Debug)]
pub struct FlatIdMap {
    keys: Vec<u32>,
    vals: Vec<u32>,
    bits: u32,
    len: usize,
}

impl Default for FlatIdMap {
    fn default() -> Self {
        Self::with_capacity(16)
    }
}

impl FlatIdMap {
    /// Creates a map able to hold roughly `capacity` keys before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let bits = (capacity.max(8) * 2).next_power_of_two().trailing_zeros();
        FlatIdMap {
            keys: vec![EMPTY; 1 << bits],
            vals: vec![0; 1 << bits],
            bits,
            len: 0,
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 2 << self.bits]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; self.keys.len()];
        self.bits += 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert_fresh(k, v);
            }
        }
    }

    #[inline]
    fn insert_fresh(&mut self, key: u32, val: u32) {
        let mask = self.keys.len() - 1;
        let mut i = fib_hash(key, self.bits);
        loop {
            // lint: allow(panic-reachability, probe indices are masked by the power-of-two table capacity on every step)
            if self.keys[i] == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }
}

impl IdMap for FlatIdMap {
    #[inline]
    fn get_or_insert(&mut self, global: NodeId, fallback: u32) -> (u32, bool) {
        debug_assert_ne!(global, EMPTY, "u32::MAX is reserved as the empty slot");
        if (self.len + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = fib_hash(global, self.bits);
        loop {
            let k = self.keys[i];
            if k == global {
                return (self.vals[i], false);
            }
            if k == EMPTY {
                self.keys[i] = global;
                self.vals[i] = fallback;
                self.len += 1;
                return (fallback, true);
            }
            i = (i + 1) & mask;
        }
    }

    fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    fn reserve(&mut self, n: usize) {
        while (self.len + n) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Tracks already-sampled neighbor positions for one destination node.
///
/// Capacities are small (≤ fanout, typically ≤ 20), which is exactly why the
/// paper's array variant wins despite linear search.
pub trait NeighborSet {
    /// Inserts `idx`; returns `false` if it was already present.
    fn insert(&mut self, idx: u32) -> bool;

    /// Empties the set (called once per destination node).
    fn clear(&mut self);

    /// Number of stored indices.
    fn len(&self) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `std::collections::HashSet` (SipHash) — the STL-set analogue.
#[derive(Debug, Default)]
pub struct StdNeighborSet {
    set: HashSet<u32>,
}

impl StdNeighborSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NeighborSet for StdNeighborSet {
    fn insert(&mut self, idx: u32) -> bool {
        self.set.insert(idx)
    }

    fn clear(&mut self) {
        self.set.clear();
    }

    fn len(&self) -> usize {
        self.set.len()
    }
}

/// Small flat open-addressing set.
#[derive(Debug)]
pub struct FlatNeighborSet {
    slots: Vec<u32>,
    bits: u32,
    len: usize,
}

impl Default for FlatNeighborSet {
    fn default() -> Self {
        FlatNeighborSet {
            slots: vec![EMPTY; 64],
            bits: 6,
            len: 0,
        }
    }
}

impl FlatNeighborSet {
    /// Creates an empty set sized for typical fanouts.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NeighborSet for FlatNeighborSet {
    #[inline]
    fn insert(&mut self, idx: u32) -> bool {
        debug_assert_ne!(idx, EMPTY);
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            let old = std::mem::replace(&mut self.slots, vec![EMPTY; 2 << self.bits]);
            self.bits += 1;
            self.len = 0;
            for k in old {
                if k != EMPTY {
                    self.insert(k);
                }
            }
        }
        let mask = self.slots.len() - 1;
        let mut i = fib_hash(idx, self.bits);
        loop {
            let k = self.slots[i];
            if k == idx {
                return false;
            }
            if k == EMPTY {
                self.slots[i] = idx;
                self.len += 1;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Plain array with linear-scan membership — the winner of the paper's
/// exploration at realistic fanouts ("despite its linear search complexity,
/// the array set benefits from cache locality").
#[derive(Debug, Default)]
pub struct ArrayNeighborSet {
    items: Vec<u32>,
}

impl ArrayNeighborSet {
    /// Creates an empty array set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NeighborSet for ArrayNeighborSet {
    #[inline]
    fn insert(&mut self, idx: u32) -> bool {
        if self.items.contains(&idx) {
            false
        } else {
            self.items.push(idx);
            true
        }
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_map(map: &mut impl IdMap) {
        assert!(map.is_empty());
        let (v, new) = map.get_or_insert(100, 0);
        assert!(new);
        assert_eq!(v, 0);
        let (v, new) = map.get_or_insert(100, 1);
        assert!(!new);
        assert_eq!(v, 0, "existing key keeps its value");
        let (v, new) = map.get_or_insert(7, 1);
        assert!(new);
        assert_eq!(v, 1);
        assert_eq!(map.len(), 2);
        map.clear();
        assert_eq!(map.len(), 0);
        let (v, new) = map.get_or_insert(100, 9);
        assert!(new, "cleared map forgets keys");
        assert_eq!(v, 9);
    }

    #[test]
    fn std_map_contract() {
        exercise_map(&mut StdIdMap::new());
    }

    #[test]
    fn flat_map_contract() {
        exercise_map(&mut FlatIdMap::default());
    }

    #[test]
    fn flat_map_grows_correctly() {
        let mut m = FlatIdMap::with_capacity(4);
        for i in 0..10_000u32 {
            let (v, new) = m.get_or_insert(i * 7 + 1, i);
            assert!(new);
            assert_eq!(v, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            let (v, new) = m.get_or_insert(i * 7 + 1, 0);
            assert!(!new);
            assert_eq!(v, i, "values survive growth");
        }
    }

    #[test]
    fn flat_map_matches_std_on_random_stream() {
        use salient_tensor::rng::Rng;
        let mut rng = salient_tensor::rng::StdRng::seed_from_u64(1);
        let mut flat = FlatIdMap::default();
        let mut std = StdIdMap::new();
        let mut next = 0u32;
        for _ in 0..50_000 {
            let key: u32 = rng.random_range(0u32..5_000);
            let (a, new_a) = flat.get_or_insert(key, next);
            let (b, new_b) = std.get_or_insert(key, next);
            assert_eq!(a, b);
            assert_eq!(new_a, new_b);
            if new_a {
                next += 1;
            }
        }
        assert_eq!(flat.len(), std.len());
    }

    fn exercise_set(set: &mut impl NeighborSet) {
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.insert(9));
        assert_eq!(set.len(), 2);
        set.clear();
        assert!(set.is_empty());
        assert!(set.insert(5));
    }

    #[test]
    fn std_set_contract() {
        exercise_set(&mut StdNeighborSet::new());
    }

    #[test]
    fn flat_set_contract() {
        exercise_set(&mut FlatNeighborSet::new());
    }

    #[test]
    fn array_set_contract() {
        exercise_set(&mut ArrayNeighborSet::new());
    }

    #[test]
    fn flat_set_grows() {
        let mut s = FlatNeighborSet::new();
        for i in 0..1_000 {
            assert!(s.insert(i));
        }
        for i in 0..1_000 {
            assert!(!s.insert(i));
        }
        assert_eq!(s.len(), 1_000);
    }
}
