//! Hop-by-hop reference traces for the sampler microbenchmark.
//!
//! The paper's exploration "executed the parameterized code on a reference
//! hop-by-hop trace of the nodes which made up a sampled MFG … to mitigate
//! sampling variability, we benchmark each individual hop of the reference
//! trace instead of an end-to-end execution" (§4.1). A [`SampleTrace`] fixes
//! the sampled neighbor choices once; replaying it through different id-map
//! implementations isolates data-structure cost from sampling randomness.

use crate::engine::{EngineOpts, EngineScratch, SampleAlgo};
use crate::mfg::{MessageFlowGraph, MfgLayer};
use crate::structures::{ArrayNeighborSet, FlatIdMap, IdMap};
use salient_tensor::rng::StdRng;
use salient_graph::{CsrGraph, NodeId};

/// The frozen sampling decisions of one hop: for each destination node of
/// the frontier (by local index), the global ids of its sampled neighbors.
#[derive(Clone, Debug)]
pub struct HopTrace {
    /// Number of frontier (destination) nodes at this hop.
    pub frontier_len: usize,
    /// `neighbors[i]` = sampled neighbor globals of frontier node `i`.
    pub neighbors: Vec<Vec<NodeId>>,
}

/// A complete frozen sampling run for one batch.
#[derive(Clone, Debug)]
pub struct SampleTrace {
    /// The mini-batch nodes.
    pub batch: Vec<NodeId>,
    /// One trace per hop, in sampling order (batch outward).
    pub hops: Vec<HopTrace>,
}

impl SampleTrace {
    /// Total sampled (dst, neighbor) pairs across all hops.
    pub fn num_samples(&self) -> usize {
        self.hops
            .iter()
            .map(|h| h.neighbors.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// Records a reference trace by running the tuned sampler once and logging
/// every sampled neighbor.
///
/// # Panics
///
/// Panics if `batch` is empty or has duplicates, or `fanouts` is empty.
pub fn record_trace(
    graph: &CsrGraph,
    batch: &[NodeId],
    fanouts: &[usize],
    seed: u64,
) -> SampleTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = FlatIdMap::with_capacity(batch.len() * 8);
    let mut set = ArrayNeighborSet::new();
    let mut scratch = EngineScratch::default();
    // Run the engine but intercept sampling through a recording pass:
    // we re-run hop by hop using the same primitives the engine uses.
    let opts = EngineOpts {
        fused: true,
        reserve: true,
        algo: SampleAlgo::PartialFisherYates,
    };
    // Recording needs frontier knowledge, so replicate the frontier loop and
    // record from the produced MFG instead: each layer's edges, grouped by
    // dst, in hop order. Sampling order = reverse of forward layer order.
    let mfg = crate::engine::sample_with(
        graph,
        batch,
        fanouts,
        opts,
        &mut map,
        &mut set,
        &mut scratch,
        &mut rng,
    );
    let mut hops = Vec::with_capacity(mfg.layers.len());
    for layer in mfg.layers.iter().rev() {
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); layer.n_dst];
        for (&s, &d) in layer.edge_src.iter().zip(layer.edge_dst.iter()) {
            neighbors[d as usize].push(mfg.node_ids[s as usize]);
        }
        hops.push(HopTrace {
            frontier_len: layer.n_dst,
            neighbors,
        });
    }
    SampleTrace {
        batch: batch.to_vec(),
        hops,
    }
}

/// Replays a trace through an arbitrary [`IdMap`], rebuilding the MFG. The
/// work performed is exactly the construction path of the sampler minus the
/// random choices — the part whose cost the Figure-2 benchmark attributes to
/// data structures.
///
/// # Panics
///
/// Panics if the trace's frontier sizes are inconsistent with the number of
/// nodes discovered while replaying.
pub fn replay_trace<M: IdMap>(trace: &SampleTrace, map: &mut M) -> MessageFlowGraph {
    map.clear();
    let mut node_ids: Vec<NodeId> = Vec::with_capacity(trace.batch.len() * 8);
    for &v in &trace.batch {
        let local = node_ids.len() as u32;
        let (_, new) = map.get_or_insert(v, local);
        assert!(new, "duplicate node {v} in traced batch");
        node_ids.push(v);
    }
    let mut layers_rev = Vec::with_capacity(trace.hops.len());
    for hop in &trace.hops {
        assert_eq!(
            hop.frontier_len,
            node_ids.len(),
            "trace frontier does not match replay frontier"
        );
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        for (i, ns) in hop.neighbors.iter().enumerate() {
            for &u in ns {
                let fallback = node_ids.len() as u32;
                let (local, new) = map.get_or_insert(u, fallback);
                if new {
                    node_ids.push(u);
                }
                edge_src.push(local);
                edge_dst.push(i as u32);
            }
        }
        layers_rev.push(MfgLayer {
            edge_src,
            edge_dst,
            n_src: node_ids.len(),
            n_dst: hop.frontier_len,
        });
    }
    layers_rev.reverse();
    MessageFlowGraph {
        node_ids,
        layers: layers_rev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::StdIdMap;
    use salient_graph::DatasetConfig;

    #[test]
    fn replay_reproduces_the_recording_run() {
        let ds = DatasetConfig::tiny(8).build();
        let batch = &ds.splits.train[..16];
        let trace = record_trace(&ds.graph, batch, &[8, 4], 13);
        assert!(trace.num_samples() > 0);

        let replayed = replay_trace(&trace, &mut FlatIdMap::default());
        replayed.validate().unwrap();
        assert_eq!(replayed.batch_size(), 16);

        // A different map implementation must reach the same node set and
        // edge multiset (locals may be assigned identically here because
        // insertion order is deterministic).
        let replayed_std = replay_trace(&trace, &mut StdIdMap::new());
        assert_eq!(replayed.node_ids, replayed_std.node_ids);
        assert_eq!(replayed.num_edges(), replayed_std.num_edges());
        for (a, b) in replayed.layers.iter().zip(replayed_std.layers.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trace_hops_cover_all_fanouts() {
        let ds = DatasetConfig::tiny(8).build();
        let trace = record_trace(&ds.graph, &ds.splits.train[..4], &[5, 3, 2], 0);
        assert_eq!(trace.hops.len(), 3);
        assert_eq!(trace.hops[0].frontier_len, 4, "first hop expands the batch");
        assert!(trace.hops[1].frontier_len >= trace.hops[0].frontier_len);
    }
}
