//! Enumeration of the sampler design space (the paper's Figure 2).
//!
//! "The space of possible design choices and optimizations is too large to
//! explore manually. We designed a parameterized implementation of sampled
//! MFG generation to systematically explore this optimization space" (§4.1).
//!
//! Five axes are exposed here — id-map structure × neighbor-set structure ×
//! fused construction × capacity reservation × sampling algorithm — giving
//! 48 instantiations benchmarked by `salient-bench --bin fig2`.

use crate::engine::{sample_with, EngineOpts, EngineScratch, SampleAlgo};
use crate::mfg::MessageFlowGraph;
use crate::structures::{
    ArrayNeighborSet, FlatIdMap, FlatNeighborSet, IdMap, NeighborSet, StdIdMap, StdNeighborSet,
};
use salient_tensor::rng::StdRng;
use salient_graph::{CsrGraph, NodeId};

/// Which global→local id-map implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IdMapKind {
    /// `std::collections::HashMap` (SipHash buckets — the STL analogue).
    Std,
    /// Flat open-addressing table with Fibonacci hashing (swiss-style).
    Flat,
}

/// Which neighbor-dedup set implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NeighborSetKind {
    /// `std::collections::HashSet`.
    Std,
    /// Flat open-addressing set.
    Flat,
    /// Plain array with linear scan (the paper's winner at small fanouts).
    Array,
}

/// One point in the sampler design space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VariantConfig {
    /// Id-map implementation.
    pub id_map: IdMapKind,
    /// Neighbor-set implementation.
    pub neighbor_set: NeighborSetKind,
    /// Fused sampling + MFG construction.
    pub fused: bool,
    /// Pre-reserve map capacity per hop.
    pub reserve: bool,
    /// Without-replacement algorithm.
    pub algo: SampleAlgo,
}

impl VariantConfig {
    /// Every point of the design space (48 variants).
    pub fn all() -> Vec<VariantConfig> {
        let mut out = Vec::with_capacity(48);
        for id_map in [IdMapKind::Std, IdMapKind::Flat] {
            for neighbor_set in [
                NeighborSetKind::Std,
                NeighborSetKind::Flat,
                NeighborSetKind::Array,
            ] {
                for fused in [false, true] {
                    for reserve in [false, true] {
                        for algo in [SampleAlgo::Rejection, SampleAlgo::PartialFisherYates] {
                            out.push(VariantConfig {
                                id_map,
                                neighbor_set,
                                fused,
                                reserve,
                                algo,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The configuration matching the PyG baseline.
    pub fn pyg_baseline() -> VariantConfig {
        VariantConfig {
            id_map: IdMapKind::Std,
            neighbor_set: NeighborSetKind::Std,
            fused: false,
            reserve: false,
            algo: SampleAlgo::Rejection,
        }
    }

    /// The configuration shipped as [`crate::FastSampler`].
    pub fn salient() -> VariantConfig {
        VariantConfig {
            id_map: IdMapKind::Flat,
            neighbor_set: NeighborSetKind::Array,
            fused: true,
            reserve: true,
            algo: SampleAlgo::PartialFisherYates,
        }
    }

    /// A short human-readable label, e.g. `"flat/array/fused/resv/fy"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            match self.id_map {
                IdMapKind::Std => "std",
                IdMapKind::Flat => "flat",
            },
            match self.neighbor_set {
                NeighborSetKind::Std => "stdset",
                NeighborSetKind::Flat => "flatset",
                NeighborSetKind::Array => "array",
            },
            if self.fused { "fused" } else { "2phase" },
            if self.reserve { "resv" } else { "grow" },
            match self.algo {
                SampleAlgo::Rejection => "rej",
                SampleAlgo::PartialFisherYates => "fy",
            },
        )
    }
}

#[derive(Debug)]
enum AnyIdMap {
    Std(StdIdMap),
    Flat(FlatIdMap),
}

impl IdMap for AnyIdMap {
    #[inline]
    fn get_or_insert(&mut self, global: NodeId, fallback: u32) -> (u32, bool) {
        match self {
            AnyIdMap::Std(m) => m.get_or_insert(global, fallback),
            AnyIdMap::Flat(m) => m.get_or_insert(global, fallback),
        }
    }

    fn clear(&mut self) {
        match self {
            AnyIdMap::Std(m) => m.clear(),
            AnyIdMap::Flat(m) => m.clear(),
        }
    }

    fn reserve(&mut self, n: usize) {
        match self {
            AnyIdMap::Std(m) => m.reserve(n),
            AnyIdMap::Flat(m) => m.reserve(n),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyIdMap::Std(m) => IdMap::len(m),
            AnyIdMap::Flat(m) => IdMap::len(m),
        }
    }
}

#[derive(Debug)]
enum AnyNeighborSet {
    Std(StdNeighborSet),
    Flat(FlatNeighborSet),
    Array(ArrayNeighborSet),
}

impl NeighborSet for AnyNeighborSet {
    #[inline]
    fn insert(&mut self, idx: u32) -> bool {
        match self {
            AnyNeighborSet::Std(s) => s.insert(idx),
            AnyNeighborSet::Flat(s) => s.insert(idx),
            AnyNeighborSet::Array(s) => s.insert(idx),
        }
    }

    fn clear(&mut self) {
        match self {
            AnyNeighborSet::Std(s) => s.clear(),
            AnyNeighborSet::Flat(s) => s.clear(),
            AnyNeighborSet::Array(s) => s.clear(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyNeighborSet::Std(s) => NeighborSet::len(s),
            AnyNeighborSet::Flat(s) => NeighborSet::len(s),
            AnyNeighborSet::Array(s) => NeighborSet::len(s),
        }
    }
}

/// A sampler instantiated at an arbitrary design-space point.
#[derive(Debug)]
pub struct VariantSampler {
    config: VariantConfig,
    map: AnyIdMap,
    set: AnyNeighborSet,
    scratch: EngineScratch,
    rng: StdRng,
}

impl VariantSampler {
    /// Instantiates the given configuration.
    pub fn new(config: VariantConfig, seed: u64) -> Self {
        VariantSampler {
            config,
            map: match config.id_map {
                IdMapKind::Std => AnyIdMap::Std(StdIdMap::new()),
                IdMapKind::Flat => AnyIdMap::Flat(FlatIdMap::default()),
            },
            set: match config.neighbor_set {
                NeighborSetKind::Std => AnyNeighborSet::Std(StdNeighborSet::new()),
                NeighborSetKind::Flat => AnyNeighborSet::Flat(FlatNeighborSet::new()),
                NeighborSetKind::Array => AnyNeighborSet::Array(ArrayNeighborSet::new()),
            },
            scratch: EngineScratch::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// This sampler's configuration.
    pub fn config(&self) -> VariantConfig {
        self.config
    }

    /// Samples the MFG for one mini-batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or contains duplicates, or `fanouts` is
    /// empty.
    pub fn sample(
        &mut self,
        graph: &CsrGraph,
        batch: &[NodeId],
        fanouts: &[usize],
    ) -> MessageFlowGraph {
        sample_with(
            graph,
            batch,
            fanouts,
            EngineOpts {
                fused: self.config.fused,
                reserve: self.config.reserve,
                algo: self.config.algo,
            },
            &mut self.map,
            &mut self.set,
            &mut self.scratch,
            &mut self.rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetConfig;

    #[test]
    fn design_space_has_48_points() {
        let all = VariantConfig::all();
        assert_eq!(all.len(), 48);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 48, "variants must be distinct");
        assert!(all.contains(&VariantConfig::pyg_baseline()));
        assert!(all.contains(&VariantConfig::salient()));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<String> =
            VariantConfig::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 48);
    }

    #[test]
    fn every_variant_produces_valid_mfgs() {
        let ds = DatasetConfig::tiny(6).build();
        let batch = &ds.splits.train[..16];
        for cfg in VariantConfig::all() {
            let mfg = VariantSampler::new(cfg, 3).sample(&ds.graph, batch, &[6, 3]);
            mfg.validate()
                .unwrap_or_else(|e| panic!("variant {}: {e}", cfg.label()));
            assert_eq!(mfg.batch_size(), 16);
        }
    }
}
