//! The serving circuit breaker: Closed → Open → HalfOpen → Closed.
//!
//! Consecutive micro-batch failures (crashed sampler, poisoned model) open
//! the breaker; while open, admission sheds everything instantly instead of
//! queueing work onto a broken pipeline. After a clock-timed cooldown the
//! breaker turns half-open and admits single-request probe batches; enough
//! consecutive probe successes close it, any probe failure re-opens it.
//!
//! The breaker is a pure state machine over caller-supplied timestamps —
//! no clock reads of its own — so it is trivially deterministic under a
//! `VirtualClock`.

/// The breaker's observable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: admission and batching run normally.
    Closed,
    /// Tripped: all traffic is shed at admission until the cooldown ends.
    Open,
    /// Cooling down: single-request probe batches are admitted to test the
    /// pipeline before restoring full service.
    HalfOpen,
}

/// A state transition the caller should record (trace event / counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerMove {
    /// Closed (or HalfOpen) → Open.
    Opened,
    /// Open → HalfOpen (cooldown elapsed).
    HalfOpened,
    /// HalfOpen → Closed (probes succeeded).
    Closed,
}

/// Circuit breaker over consecutive micro-batch failures.
#[derive(Debug)]
pub struct Breaker {
    state: BreakerState,
    open_after: u32,
    cooldown_ns: u64,
    probes_needed: u32,
    consecutive_failures: u32,
    probe_successes: u32,
    opened_at_ns: u64,
}

impl Breaker {
    /// A closed breaker that opens after `open_after` consecutive failures,
    /// stays open `cooldown_ns`, and closes again after `probes_needed`
    /// successful half-open probes.
    pub fn new(open_after: u32, cooldown_ns: u64, probes_needed: u32) -> Self {
        Breaker {
            state: BreakerState::Closed,
            open_after,
            cooldown_ns,
            probes_needed,
            consecutive_failures: 0,
            probe_successes: 0,
            opened_at_ns: 0,
        }
    }

    /// Current state (after any cooldown transition `poll` applied).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Applies the time-driven transition: an open breaker whose cooldown
    /// has elapsed becomes half-open. Call before consulting
    /// [`Breaker::state`] for admission.
    pub fn poll(&mut self, now_ns: u64) -> Option<BreakerMove> {
        if self.state == BreakerState::Open
            && now_ns.saturating_sub(self.opened_at_ns) >= self.cooldown_ns
        {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
            return Some(BreakerMove::HalfOpened);
        }
        None
    }

    /// Records a successful micro-batch.
    pub fn on_success(&mut self) -> Option<BreakerMove> {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.probe_successes += 1;
            if self.probe_successes >= self.probes_needed {
                self.state = BreakerState::Closed;
                return Some(BreakerMove::Closed);
            }
        }
        None
    }

    /// Records a failed micro-batch (a caught pipeline panic).
    pub fn on_failure(&mut self, now_ns: u64) -> Option<BreakerMove> {
        match self.state {
            BreakerState::HalfOpen => {
                // Any probe failure re-opens immediately: the pipeline is
                // demonstrably still broken.
                self.state = BreakerState::Open;
                self.opened_at_ns = now_ns;
                self.consecutive_failures = 0;
                Some(BreakerMove::Opened)
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.open_after {
                    self.state = BreakerState::Open;
                    self.opened_at_ns = now_ns;
                    self.consecutive_failures = 0;
                    Some(BreakerMove::Opened)
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_closed_open_half_open_closed() {
        let mut b = Breaker::new(2, 1_000, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.on_failure(10), None);
        assert_eq!(b.on_failure(20), Some(BreakerMove::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not yet elapsed.
        assert_eq!(b.poll(500), None);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.poll(1_020), Some(BreakerMove::HalfOpened));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_success(), Some(BreakerMove::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens() {
        let mut b = Breaker::new(1, 100, 1);
        assert_eq!(b.on_failure(0), Some(BreakerMove::Opened));
        assert_eq!(b.poll(100), Some(BreakerMove::HalfOpened));
        assert_eq!(b.on_failure(150), Some(BreakerMove::Opened));
        // The cooldown restarts from the re-open instant.
        assert_eq!(b.poll(200), None);
        assert_eq!(b.poll(250), Some(BreakerMove::HalfOpened));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(3, 100, 1);
        b.on_failure(0);
        b.on_failure(1);
        b.on_success();
        b.on_failure(2);
        b.on_failure(3);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
        assert_eq!(b.on_failure(4), Some(BreakerMove::Opened));
    }
}
