//! Serving configuration: admission thresholds, the degradation ladder,
//! and circuit-breaker tuning (DESIGN.md §11 documents the policy).

/// Tuning for one serving instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum queries coalesced into one sampler micro-batch.
    pub max_batch: usize,
    /// Bounded pending-queue capacity; admission sheds `Overload` beyond
    /// it. Keeping this a small multiple of `max_batch` is what bounds
    /// worst-case queueing latency (and hence overload p99).
    pub queue_capacity: usize,
    /// Shed `Overload` when the rolling p99 latency estimate exceeds this
    /// (ns). `u64::MAX` disables the check.
    pub p99_shed_ns: u64,
    /// Fanout ladder, level 0 first (full quality). Every level must have
    /// the same number of hops (the model's layer count).
    pub fanout_ladder: Vec<Vec<usize>>,
    /// Fraction of `queue_capacity` at which a micro-batch counts as
    /// "pressured" for the degradation ladder.
    pub pressure_occupancy: f64,
    /// Consecutive pressured micro-batches before stepping the ladder down.
    pub degrade_after: u32,
    /// Consecutive calm micro-batches before stepping back up (the
    /// hysteresis gap: make this larger than `degrade_after` so the ladder
    /// does not flap).
    pub restore_after: u32,
    /// Consecutive failed micro-batches that trip the breaker open.
    pub breaker_open_after: u32,
    /// Nanoseconds an open breaker waits before admitting probe traffic.
    pub breaker_cooldown_ns: u64,
    /// Successful single-request probes required to close a half-open
    /// breaker.
    pub breaker_probes: u32,
    /// Pinned staging slots for the inference pool.
    pub slots: usize,
    /// Base RNG seed (model eval stream, sampler respawn streams).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            queue_capacity: 32,
            p99_shed_ns: u64::MAX,
            fanout_ladder: vec![vec![10, 10], vec![5, 5], vec![2, 2]],
            pressure_occupancy: 0.75,
            degrade_after: 2,
            restore_after: 4,
            breaker_open_after: 3,
            breaker_cooldown_ns: 50_000_000,
            breaker_probes: 2,
            slots: 2,
            seed: 0,
        }
    }
}

impl ServeConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration: empty or ragged fanout
    /// ladder, zero batch/queue/slots, or a queue smaller than one batch.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(
            self.queue_capacity >= self.max_batch,
            "queue must hold at least one full micro-batch"
        );
        assert!(self.slots > 0, "need at least one staging slot");
        assert!(!self.fanout_ladder.is_empty(), "fanout ladder cannot be empty");
        let hops = self.fanout_ladder[0].len();
        assert!(hops > 0, "fanouts cannot be empty");
        assert!(
            self.fanout_ladder.iter().all(|l| l.len() == hops),
            "every ladder level must have the same hop count"
        );
        assert!(
            (0.0..=1.0).contains(&self.pressure_occupancy),
            "pressure_occupancy is a fraction"
        );
        assert!(self.degrade_after > 0 && self.restore_after > 0);
        assert!(self.breaker_open_after > 0 && self.breaker_probes > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServeConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "same hop count")]
    fn ragged_ladder_rejected() {
        let cfg = ServeConfig {
            fanout_ladder: vec![vec![5, 5], vec![3]],
            ..ServeConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "queue must hold")]
    fn queue_smaller_than_batch_rejected() {
        let cfg = ServeConfig {
            max_batch: 8,
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        cfg.validate();
    }
}
