//! The deterministic serving state machine.
//!
//! [`ServerCore`] owns everything one serving instance needs — the trained
//! model, a [`BatchInferencer`] (pinned-slot staging + panic isolation), a
//! seeded sampler, the pending queue, the degradation [`Ladder`], and the
//! circuit [`Breaker`] — and exposes exactly two operations:
//! [`submit`](ServerCore::submit) (admission) and
//! [`step`](ServerCore::step) (form and run one micro-batch). It reads
//! time only through its [`Clock`], never spawns threads, and injects
//! faults only via `salient_fault` sites, so a whole serving session under
//! a `VirtualClock` is a pure function of (config, seed, arrival trace,
//! fault plan). The threaded [`crate::Server`] is a thin supervised
//! wrapper around it.
//!
//! # Deadline propagation
//!
//! A request's absolute deadline rides with it through the pipeline and is
//! re-checked at every stage boundary: at harvest (queue expiry), after
//! sampling, after slicing, and after the GEMM. A request found dead is
//! retired immediately with [`Response::Expired`] naming the stage that
//! overran, and when *every* live member of a micro-batch has expired the
//! remaining stages are skipped entirely — dead work is dropped, not
//! finished.

use crate::breaker::{Breaker, BreakerMove, BreakerState};
use crate::config::ServeConfig;
use crate::ladder::{Ladder, LadderMove};
use crate::loadgen::Arrival;
use crate::{Rejected, Request, Response, Stage};
use salient_core::{BatchInferencer, StagedBatch};
use salient_fault::{self as fault, FaultAction};
use salient_graph::Dataset;
use salient_nn::GnnModel;
use salient_pipeline::{GraphSpec, PipeItem, StageGraph, StageOutcome, StageSpec};
use salient_sampler::{FastSampler, MessageFlowGraph};
use salient_tensor::rng::StdRng;
use salient_trace::{names, Clock, Counter, Gauge, Histogram, Trace};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// Completed latencies kept for the rolling p99 estimate.
const LATENCY_WINDOW: usize = 128;

/// EWMA smoothing for the per-batch service-time floor.
const EWMA_ALPHA: f64 = 0.2;

/// An admitted request waiting in the pending queue.
#[derive(Clone, Copy, Debug)]
struct Pending {
    req: Request,
    admitted_ns: u64,
}

/// One micro-batch flowing through the serving stage graph; fields fill in
/// stage by stage. Dropping it mid-pipeline releases its staged slot.
struct ServeJob {
    seq: u64,
    seeds: Vec<salient_graph::NodeId>,
    mfg: Option<MessageFlowGraph>,
    staged: Option<StagedBatch>,
}

impl PipeItem for ServeJob {
    fn batch_id(&self) -> u64 {
        self.seq
    }
}

/// Batch-state mutex helper: the state is plain data mutated under short
/// critical sections, so a poisoned guard carries no broken invariant.
fn lock_state<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Rolling window of completed-request latencies with a cached p99.
#[derive(Debug, Default)]
struct LatencyWindow {
    buf: Vec<u64>,
    next: usize,
    cached_p99: u64,
}

impl LatencyWindow {
    fn push(&mut self, v: u64) {
        if self.buf.len() < LATENCY_WINDOW {
            self.buf.push(v);
        } else {
            // lint: allow(panic-reachability, ring invariant next < LATENCY_WINDOW == buf.len(); batch-member indices run over equal-length vecs built in step)
            self.buf[self.next] = v;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// Recomputes the cached p99 (called once per micro-batch, not per
    /// submit, so admission stays cheap).
    fn refresh(&mut self) {
        if self.buf.is_empty() {
            self.cached_p99 = 0;
            return;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() as f64 * 0.99).ceil() as usize;
        self.cached_p99 = sorted[idx.min(sorted.len()) - 1];
    }

    fn p99(&self) -> u64 {
        self.cached_p99
    }
}

/// Metric handles resolved once so the per-request path is atomic adds.
struct Instruments {
    admitted: Counter,
    completed: Counter,
    shed_overload: Counter,
    shed_infeasible: Counter,
    shed_breaker: Counter,
    expired: Counter,
    request_panics: Counter,
    degrades: Counter,
    restores: Counter,
    breaker_opens: Counter,
    latency_ns: Histogram,
    batch_ns: Histogram,
    queue_depth: Gauge,
    fanout_level: Gauge,
    breaker_state: Gauge,
}

impl Instruments {
    fn new(trace: &Trace) -> Instruments {
        Instruments {
            admitted: trace.counter(names::counters::SERVE_ADMITTED),
            completed: trace.counter(names::counters::SERVE_COMPLETED),
            shed_overload: trace.counter(names::counters::SERVE_SHED_OVERLOAD),
            shed_infeasible: trace.counter(names::counters::SERVE_SHED_INFEASIBLE),
            shed_breaker: trace.counter(names::counters::SERVE_SHED_BREAKER),
            expired: trace.counter(names::counters::SERVE_EXPIRED),
            request_panics: trace.counter(names::counters::SERVE_REQUEST_PANICS),
            degrades: trace.counter(names::counters::SERVE_DEGRADES),
            restores: trace.counter(names::counters::SERVE_RESTORES),
            breaker_opens: trace.counter(names::counters::SERVE_BREAKER_OPENS),
            latency_ns: trace.histogram(names::hists::SERVE_LATENCY_NS),
            batch_ns: trace.histogram(names::hists::SERVE_BATCH_NS),
            queue_depth: trace.gauge(names::gauges::QUEUE_DEPTH),
            fanout_level: trace.gauge(names::gauges::FANOUT_LEVEL),
            breaker_state: trace.gauge(names::gauges::BREAKER_STATE),
        }
    }
}

/// What one [`ServerCore::step`] did.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Terminal responses emitted this step, keyed by request id. Includes
    /// queue-expired requests retired during harvest even when no batch ran.
    pub responses: Vec<(u64, Response)>,
    /// Whether a micro-batch pipeline actually executed.
    pub ran_batch: bool,
}

/// Applies an injected fault with clock-aware stalls: on a virtual clock a
/// `Delay` advances it (deterministic stage-stall scripting); on the real
/// clock it sleeps. Panics inline for `Panic` — callers wrap the stage in
/// `catch_unwind`. Returns `true` for `Drop`.
fn apply_fault(clock: &Clock, site: &'static str, occ: u64) -> bool {
    match fault::point(site, occ) {
        FaultAction::Proceed => false,
        // lint: allow(panic-reachability, injected fault demands a panic; every serving stage wraps it in catch_unwind)
        FaultAction::Panic => panic!("injected fault: panic at {site} (occ {occ})"),
        FaultAction::Delay(d) => {
            let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            match clock.as_virtual() {
                Some(v) => v.advance(ns),
                // lint: allow(determinism, injected straggler stall on the real clock; the duration comes from the installed fault plan)
                None => std::thread::sleep(d),
            }
            false
        }
        FaultAction::Drop => true,
    }
}

/// The single-threaded serving state machine (see the module docs).
pub struct ServerCore {
    cfg: ServeConfig,
    model: Box<dyn GnnModel>,
    inferencer: BatchInferencer,
    dataset: Arc<Dataset>,
    sampler: FastSampler,
    rng: StdRng,
    clock: Clock,
    trace: Trace,
    pending: VecDeque<Pending>,
    ladder: Ladder,
    breaker: Breaker,
    window: LatencyWindow,
    /// EWMA of micro-batch pipeline nanoseconds: the admission floor for
    /// `DeadlineInfeasible` (0 until the first batch completes).
    ewma_batch_ns: f64,
    batch_seq: u64,
    ins: Instruments,
}

impl ServerCore {
    /// Builds a serving instance around a trained model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or the ladder's hop
    /// count does not match the model's layer count.
    pub fn new(
        model: Box<dyn GnnModel>,
        dataset: Arc<Dataset>,
        cfg: ServeConfig,
        trace: Trace,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            cfg.fanout_ladder[0].len(),
            model.num_layers(),
            "fanout ladder hop count must match the model's layers"
        );
        // Pre-size staging for a worst-case (level-0) micro-batch.
        let expansion: usize = cfg.fanout_ladder[0].iter().map(|f| f + 1).product();
        let nodes_hint = cfg.max_batch * expansion.min(256);
        let inferencer =
            BatchInferencer::with_trace(Arc::clone(&dataset), cfg.slots, nodes_hint, &trace);
        let ladder = Ladder::new(
            cfg.fanout_ladder.clone(),
            cfg.degrade_after,
            cfg.restore_after,
        );
        let breaker = Breaker::new(
            cfg.breaker_open_after,
            cfg.breaker_cooldown_ns,
            cfg.breaker_probes,
        );
        let clock = trace.clock();
        let ins = Instruments::new(&trace);
        ServerCore {
            sampler: FastSampler::new(cfg.seed ^ 0x5E21),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x11FE),
            model,
            inferencer,
            dataset,
            clock,
            trace,
            pending: VecDeque::with_capacity(cfg.queue_capacity),
            ladder,
            breaker,
            window: LatencyWindow::default(),
            ewma_batch_ns: 0.0,
            batch_seq: 0,
            ins,
            cfg,
        }
    }

    /// The serving clock (shared with the trace registry).
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// Reads the serving clock.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The trace handle this server records against.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Requests currently admitted and waiting.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Current degradation-ladder level (0 = full quality).
    pub fn fanout_level(&self) -> usize {
        self.ladder.level()
    }

    /// The rolling p99 latency estimate admission control consults (ns).
    pub fn p99_estimate_ns(&self) -> u64 {
        self.window.p99()
    }

    /// The staging pool (idle ⇒ `available() == capacity()`; anything less
    /// is a leaked slot).
    pub fn pool_available(&self) -> (usize, usize) {
        (
            self.inferencer.pool().available(),
            self.inferencer.pool().capacity(),
        )
    }

    /// Admission control. `Ok(())` means the request is queued and will
    /// receive exactly one terminal [`Response`] from a later
    /// [`step`](ServerCore::step); `Err` is the typed shed decision.
    ///
    /// Order of checks: deadline feasibility first (an infeasible deadline
    /// is the caller's problem, reported as such even under overload), then
    /// breaker, queue bound, and the p99 estimate.
    ///
    /// # Errors
    ///
    /// [`Rejected::DeadlineInfeasible`] for zero/past deadlines or budgets
    /// below the observed service floor; [`Rejected::Overload`] when the
    /// server sheds load.
    // lint: entry(panic-reachability)
    pub fn submit(&mut self, req: Request) -> Result<(), Rejected> {
        let now = self.clock.now_ns();

        // Feasibility: a deadline at or before now, or a budget smaller
        // than the smoothed batch service time, cannot be met even idle.
        if req.deadline_ns <= now
            || ((req.deadline_ns - now) as f64) < self.ewma_batch_ns
        {
            self.ins.shed_infeasible.inc();
            return Err(Rejected::DeadlineInfeasible);
        }

        // Injected queue fault: any action here models a broken/full queue;
        // the request is shed with the typed Overload response.
        if fault::point(fault::sites::SERVE_QUEUE, req.id) != FaultAction::Proceed {
            self.ins.shed_overload.inc();
            return Err(Rejected::Overload);
        }

        // Breaker: while open, nothing is queued onto a broken pipeline.
        self.poll_breaker(now);
        if self.breaker.state() == BreakerState::Open {
            self.ins.shed_breaker.inc();
            self.ins.shed_overload.inc();
            return Err(Rejected::Overload);
        }

        if self.pending.len() >= self.cfg.queue_capacity {
            self.ins.shed_overload.inc();
            return Err(Rejected::Overload);
        }

        if self.window.p99() > self.cfg.p99_shed_ns {
            self.ins.shed_overload.inc();
            return Err(Rejected::Overload);
        }

        self.pending.push_back(Pending { req, admitted_ns: now });
        self.ins.admitted.inc();
        self.ins.queue_depth.set(self.pending.len() as u64);
        Ok(())
    }

    fn poll_breaker(&mut self, now: u64) {
        if let Some(mv) = self.breaker.poll(now) {
            self.record_breaker(mv);
        }
    }

    fn record_breaker(&mut self, mv: BreakerMove) {
        match mv {
            BreakerMove::Opened => {
                self.ins.breaker_opens.inc();
                self.ins.breaker_state.set(1);
                self.trace.instant(names::events::SERVE_BREAKER_OPEN, self.batch_seq);
                // A breaker open means the server is shedding load: dump the
                // flight recorder so the window leading up to it survives.
                if let Some(bb) = self.trace.blackbox() {
                    let _ = bb.dump(&self.trace, names::events::SERVE_BREAKER_OPEN, self.batch_seq);
                }
            }
            BreakerMove::HalfOpened => {
                self.ins.breaker_state.set(2);
                self.trace
                    .instant(names::events::SERVE_BREAKER_HALF_OPEN, self.batch_seq);
            }
            BreakerMove::Closed => {
                self.ins.breaker_state.set(0);
                self.trace.instant(names::events::SERVE_BREAKER_CLOSE, self.batch_seq);
            }
        }
    }

    fn record_ladder(&mut self, mv: LadderMove) {
        match mv {
            LadderMove::Degraded => {
                self.ins.degrades.inc();
                self.trace.instant(names::events::SERVE_DEGRADE, self.batch_seq);
            }
            LadderMove::Restored => {
                self.ins.restores.inc();
                self.trace.instant(names::events::SERVE_RESTORE, self.batch_seq);
            }
        }
        self.ins.fanout_level.set(self.ladder.level() as u64);
    }

    /// Retires every member whose deadline has passed, tagging the stage
    /// that overran. Returns the number still live.
    fn expire_members(
        members: &[Pending],
        expired_at: &mut [Option<Stage>],
        stage: Stage,
        now: u64,
        expired_counter: &Counter,
    ) -> usize {
        let mut live = 0;
        for (i, m) in members.iter().enumerate() {
            if expired_at[i].is_some() {
                continue;
            }
            if m.req.deadline_ns <= now {
                expired_at[i] = Some(stage);
                expired_counter.inc();
            } else {
                live += 1;
            }
        }
        live
    }

    /// Forms one micro-batch from the pending queue and runs it through
    /// sample → slice → gemm with stage-boundary deadline checks. Returns
    /// the terminal responses it emitted. A step with nothing pending
    /// returns an empty outcome.
    // lint: entry(panic-reachability)
    pub fn step(&mut self) -> StepOutcome {
        let mut out = StepOutcome::default();
        let step_start = self.clock.now_ns();
        self.poll_breaker(step_start);

        // Pressure is observed on the queue as the batch forms (before
        // harvest drains it).
        let pressured = self.pending.len() as f64
            >= self.cfg.pressure_occupancy * self.cfg.queue_capacity as f64
            && !self.pending.is_empty();

        // Half-open: single-request probe batches only.
        let limit = if self.breaker.state() == BreakerState::HalfOpen {
            1
        } else {
            self.cfg.max_batch
        };

        // Harvest: retire queue-expired requests, isolate per-request
        // handler faults, and coalesce the survivors.
        let mut members: Vec<Pending> = Vec::with_capacity(limit);
        while members.len() < limit {
            let Some(p) = self.pending.pop_front() else { break };
            if p.req.deadline_ns <= self.clock.now_ns() {
                self.ins.expired.inc();
                out.responses.push((p.req.id, Response::Expired(Stage::Queue)));
                continue;
            }
            // Per-request isolation boundary: an injected handler panic (or
            // drop) poisons exactly this request, never the server.
            let id = p.req.id;
            let clock = self.clock.clone();
            let handled = catch_unwind(AssertUnwindSafe(|| {
                apply_fault(&clock, fault::sites::SERVE_REQUEST, id)
            }));
            match handled {
                Err(_) => {
                    self.ins.request_panics.inc();
                    out.responses.push((id, Response::Failed));
                    continue;
                }
                Ok(true) => {
                    // Handler dropped the request's effect: also a contained
                    // per-request failure.
                    self.ins.request_panics.inc();
                    out.responses.push((id, Response::Failed));
                    continue;
                }
                Ok(false) => members.push(p),
            }
        }
        self.ins.queue_depth.set(self.pending.len() as u64);
        if members.is_empty() {
            return out;
        }

        out.ran_batch = true;
        let seq = self.batch_seq;
        self.batch_seq += 1;
        let fanout_level = self.ladder.level();
        let fanouts = self.ladder.fanouts().to_vec();
        // Coalesced queries may repeat a node; the sampler requires unique
        // seeds, so sample each distinct node once and fan the prediction
        // back out to every member that asked for it.
        let mut seeds: Vec<salient_graph::NodeId> = Vec::with_capacity(members.len());
        let mut seed_idx: Vec<usize> = Vec::with_capacity(members.len());
        for m in &members {
            match seeds.iter().position(|&s| s == m.req.node) {
                Some(i) => seed_idx.push(i),
                None => {
                    seed_idx.push(seeds.len());
                    seeds.push(m.req.node);
                }
            }
        }
        let expired_at: Vec<Option<Stage>> = vec![None; members.len()];
        let batch_start = self.clock.now_ns();

        // The micro-batch pipeline is a sample → slice → gemm stage graph
        // on the inline schedule (one micro-batch per step; ordering within
        // the batch is the whole point). The engine provides the per-stage
        // spans, the panic isolation (`panic_budget` 0: any stage panic
        // poisons the batch, never the server), and the after-hooks carry
        // the stage-boundary deadline checks. When every member has expired
        // the hook *retires* the batch, so later stages never run and never
        // record spans — dead work is dropped, not finished.
        //
        // Members and their expiry stages live outside the graph (behind a
        // local mutex the closures share) so a batch retired mid-pipeline
        // still produces its terminal responses afterwards.
        struct BatchState {
            members: Vec<Pending>,
            expired_at: Vec<Option<Stage>>,
            preds: Option<Vec<u32>>,
        }
        let state = Mutex::new(BatchState {
            members,
            expired_at,
            preds: None,
        });
        let stats = {
            let trace = self.trace.clone();
            let state = &state;
            let expired_ctr = self.ins.expired.clone();
            let (ctr_sample, ctr_slice, ctr_gemm) =
                (expired_ctr.clone(), expired_ctr.clone(), expired_ctr);
            let sampler = &mut self.sampler;
            let inferencer = &self.inferencer;
            let model = &mut self.model;
            let rng = &mut self.rng;
            let dataset = Arc::clone(&self.dataset);
            let (clock_sample, clock_slice, clock_gemm) =
                (self.clock.clone(), self.clock.clone(), self.clock.clone());
            let mut job = Some(ServeJob {
                seq,
                seeds,
                mfg: None,
                staged: None,
            });
            StageGraph::new(GraphSpec::new("serve"), move || job.take())
                .stage_with_after(
                    StageSpec::new("sample", names::spans::SERVE_SAMPLE),
                    move |mut job: ServeJob| {
                        apply_fault(&clock_sample, fault::sites::SERVE_SAMPLER, job.seq);
                        job.mfg = Some(sampler.sample(&dataset.graph, &job.seeds, &fanouts));
                        StageOutcome::Emit(job)
                    },
                    move |_job, end_ns| {
                        let mut st = lock_state(state);
                        let st = &mut *st;
                        let live = Self::expire_members(
                            &st.members,
                            &mut st.expired_at,
                            Stage::Sample,
                            end_ns,
                            &ctr_sample,
                        );
                        // Every member died waiting on the sampler: retire
                        // the batch before paying for slice + gemm.
                        live > 0
                    },
                )
                .stage_with_after(
                    StageSpec::new("slice", names::spans::SERVE_SLICE),
                    move |mut job: ServeJob| {
                        apply_fault(&clock_slice, fault::sites::SERVE_SLICE, job.seq);
                        let Some(mfg) = job.mfg.as_ref() else {
                            return StageOutcome::Fatal;
                        };
                        match inferencer.stage(mfg) {
                            Ok(staged) => {
                                job.staged = Some(staged);
                                StageOutcome::Emit(job)
                            }
                            Err(_) => StageOutcome::Fatal,
                        }
                    },
                    move |_job, end_ns| {
                        let mut st = lock_state(state);
                        let st = &mut *st;
                        let live = Self::expire_members(
                            &st.members,
                            &mut st.expired_at,
                            Stage::Slice,
                            end_ns,
                            &ctr_slice,
                        );
                        // Retiring drops the job, which drops the staged
                        // slot back into the pool; the GEMM is skipped.
                        live > 0
                    },
                )
                .stage_with_after(
                    StageSpec::new("gemm", names::spans::SERVE_GEMM),
                    move |mut job: ServeJob| {
                        apply_fault(&clock_gemm, fault::sites::SERVE_GEMM, job.seq);
                        let (Some(mfg), Some(staged)) = (job.mfg.take(), job.staged.take())
                        else {
                            return StageOutcome::Fatal;
                        };
                        match inferencer.forward(staged, model.as_mut(), &mfg, rng) {
                            Ok(preds) => {
                                // Fan distinct-seed predictions back out to
                                // the members that asked for them.
                                let mut st = lock_state(state);
                                st.preds =
                                    Some(seed_idx.iter().map(|&i| preds[i]).collect());
                                StageOutcome::Emit(job)
                            }
                            Err(_) => StageOutcome::Fatal,
                        }
                    },
                    move |_job, end_ns| {
                        let mut st = lock_state(state);
                        let st = &mut *st;
                        Self::expire_members(
                            &st.members,
                            &mut st.expired_at,
                            Stage::Gemm,
                            end_ns,
                            &ctr_gemm,
                        );
                        true
                    },
                )
                .run_inline(&trace)
        };
        let BatchState {
            members,
            expired_at,
            preds,
        } = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        if let Some(fatal) = stats.fatal_stage {
            if fatal == names::spans::SERVE_SAMPLE {
                // Crashed sampler: deterministic respawn (re-seeded from the
                // batch sequence, mirroring batchprep's retry re-seeding).
                self.sampler = FastSampler::new(self.cfg.seed ^ 0x5A17 ^ seq);
            }
            return self.fail_batch(members, expired_at, out, pressured, batch_start);
        }
        self.finish_batch(members, expired_at, preds, out, pressured, fanout_level, batch_start)
    }

    /// Retires a batch whose pipeline panicked: every not-yet-expired
    /// member gets [`Response::Failed`], and the breaker records the
    /// failure (possibly tripping open).
    fn fail_batch(
        &mut self,
        members: Vec<Pending>,
        expired_at: Vec<Option<Stage>>,
        mut out: StepOutcome,
        pressured: bool,
        batch_start: u64,
    ) -> StepOutcome {
        for (m, exp) in members.iter().zip(&expired_at) {
            match exp {
                Some(stage) => out.responses.push((m.req.id, Response::Expired(*stage))),
                None => out.responses.push((m.req.id, Response::Failed)),
            }
        }
        let now = self.clock.now_ns();
        if let Some(mv) = self.breaker.on_failure(now) {
            self.record_breaker(mv);
        }
        self.after_batch(batch_start, now, pressured);
        out
    }

    /// Retires a batch whose pipeline ran to the point recorded in
    /// `expired_at` / `preds`: expired members report their stage, live
    /// members (when `preds` is present) complete.
    #[allow(clippy::too_many_arguments)]
    fn finish_batch(
        &mut self,
        members: Vec<Pending>,
        expired_at: Vec<Option<Stage>>,
        preds: Option<Vec<u32>>,
        mut out: StepOutcome,
        pressured: bool,
        fanout_level: usize,
        batch_start: u64,
    ) -> StepOutcome {
        let now = self.clock.now_ns();
        for (i, m) in members.iter().enumerate() {
            match expired_at[i] {
                Some(stage) => out.responses.push((m.req.id, Response::Expired(stage))),
                None => {
                    // `preds` is present whenever any member is live (the
                    // pipeline only short-circuits when all expired).
                    let class = preds.as_ref().map(|p| p[i]).unwrap_or(0);
                    let latency_ns = now.saturating_sub(m.admitted_ns);
                    self.ins.completed.inc();
                    self.ins.latency_ns.observe(latency_ns);
                    self.window.push(latency_ns);
                    out.responses.push((
                        m.req.id,
                        Response::Done { class, latency_ns, fanout_level },
                    ));
                }
            }
        }
        if let Some(mv) = self.breaker.on_success() {
            self.record_breaker(mv);
        }
        self.after_batch(batch_start, now, pressured);
        out
    }

    /// Post-batch bookkeeping shared by success and failure paths: batch
    /// histogram, p99 cache, EWMA service floor, and the degradation
    /// ladder (fed the pressure observed when the batch formed).
    fn after_batch(&mut self, batch_start: u64, now: u64, pressured: bool) {
        self.ins.batch_ns.observe(now.saturating_sub(batch_start));
        self.window.refresh();
        let dur = now.saturating_sub(batch_start) as f64;
        self.ewma_batch_ns = if self.ewma_batch_ns == 0.0 {
            dur
        } else {
            (1.0 - EWMA_ALPHA) * self.ewma_batch_ns + EWMA_ALPHA * dur
        };
        if let Some(mv) = self.ladder.observe(pressured) {
            self.record_ladder(mv);
        }
    }
}

/// Drives `core` through an arrival trace on its **virtual** clock: the
/// clock jumps to each arrival instant (stepping off any work already due
/// first), every admission decision is returned inline, and remaining work
/// is drained after the last arrival. Request ids are the arrival indices.
///
/// Running the same (config, seed, trace, fault plan) twice yields
/// identical response sequences — the determinism the serving tests and
/// the fault matrix assert.
///
/// # Panics
///
/// Panics if the core's clock is not virtual (real-clock driving belongs
/// to the threaded [`crate::Server`] or the bench example).
pub fn run_trace(core: &mut ServerCore, arrivals: &[Arrival]) -> Vec<(u64, Response)> {
    let clock = core.clock();
    let vc = Arc::clone(
        clock
            .as_virtual()
            .expect("run_trace requires a VirtualClock-backed core"),
    );
    let mut out = Vec::new();
    for (i, a) in arrivals.iter().enumerate() {
        // Serve whatever is already due before this arrival lands.
        while core.pending() > 0 && clock.now_ns() < a.at_ns {
            let step = core.step();
            out.extend(step.responses);
        }
        if clock.now_ns() < a.at_ns {
            vc.set(a.at_ns);
        }
        let id = i as u64;
        let req = Request {
            id,
            node: a.node,
            deadline_ns: a.at_ns.saturating_add(a.budget_ns),
        };
        if let Err(rej) = core.submit(req) {
            out.push((id, Response::Rejected(rej)));
        }
    }
    while core.pending() > 0 {
        let step = core.step();
        out.extend(step.responses);
    }
    out
}
