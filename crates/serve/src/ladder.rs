//! The fanout degradation ladder.
//!
//! Under sustained queue pressure the server trades answer fidelity for
//! throughput by stepping sampling fanouts down a configured ladder (the
//! paper's §5.4 result is what makes this safe: sampled inference degrades
//! gracefully with fanout, it does not cliff). Hysteresis — more calm
//! observations to restore than pressured ones to degrade — keeps the
//! ladder from flapping at the pressure boundary.

/// A ladder transition the caller should record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LadderMove {
    /// Stepped down one level (cheaper fanouts).
    Degraded,
    /// Stepped up one level (restored fidelity).
    Restored,
}

/// Hysteresis state machine over per-micro-batch pressure observations.
#[derive(Debug)]
pub struct Ladder {
    levels: Vec<Vec<usize>>,
    level: usize,
    pressured_streak: u32,
    calm_streak: u32,
    degrade_after: u32,
    restore_after: u32,
}

impl Ladder {
    /// A ladder starting at level 0 (full quality).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or a threshold is zero (validated
    /// upstream by `ServeConfig::validate`).
    pub fn new(levels: Vec<Vec<usize>>, degrade_after: u32, restore_after: u32) -> Self {
        assert!(!levels.is_empty() && degrade_after > 0 && restore_after > 0);
        Ladder {
            levels,
            level: 0,
            pressured_streak: 0,
            calm_streak: 0,
            degrade_after,
            restore_after,
        }
    }

    /// The current level (0 = full quality, higher = cheaper).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The fanouts micro-batches should sample with right now.
    pub fn fanouts(&self) -> &[usize] {
        // lint: allow(panic-reachability, level is clamped below levels.len() by every ladder move)
        &self.levels[self.level]
    }

    /// Number of configured levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Feeds one per-micro-batch pressure observation; returns the
    /// transition to record, if any. Streaks reset on every transition *and*
    /// whenever the observation flips, so both directions require an
    /// unbroken run.
    pub fn observe(&mut self, pressured: bool) -> Option<LadderMove> {
        if pressured {
            self.calm_streak = 0;
            self.pressured_streak += 1;
            if self.pressured_streak >= self.degrade_after && self.level + 1 < self.levels.len() {
                self.level += 1;
                self.pressured_streak = 0;
                return Some(LadderMove::Degraded);
            }
        } else {
            self.pressured_streak = 0;
            self.calm_streak += 1;
            if self.calm_streak >= self.restore_after && self.level > 0 {
                self.level -= 1;
                self.calm_streak = 0;
                return Some(LadderMove::Restored);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Ladder {
        Ladder::new(vec![vec![10, 10], vec![5, 5], vec![2, 2]], 2, 3)
    }

    #[test]
    fn degrades_after_streak_and_saturates() {
        let mut l = ladder();
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), Some(LadderMove::Degraded));
        assert_eq!(l.fanouts(), &[5, 5]);
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), Some(LadderMove::Degraded));
        assert_eq!(l.level(), 2);
        // Bottom of the ladder: stays put.
        for _ in 0..10 {
            assert_eq!(l.observe(true), None);
        }
        assert_eq!(l.level(), 2);
    }

    #[test]
    fn restores_with_hysteresis() {
        let mut l = ladder();
        l.observe(true);
        l.observe(true); // level 1
        assert_eq!(l.observe(false), None);
        assert_eq!(l.observe(false), None);
        assert_eq!(l.observe(false), Some(LadderMove::Restored));
        assert_eq!(l.level(), 0);
        // Top of the ladder: stays put.
        for _ in 0..10 {
            assert_eq!(l.observe(false), None);
        }
    }

    #[test]
    fn flapping_observations_never_transition() {
        let mut l = ladder();
        for _ in 0..50 {
            assert_eq!(l.observe(true), None);
            assert_eq!(l.observe(false), None);
        }
        assert_eq!(l.level(), 0, "alternating pressure must not move the ladder");
    }
}
