//! # salient-serve
//!
//! Overload-safe online inference serving for the SALIENT pipeline: the
//! ROADMAP's "millions of users" front-end, built so its headline property
//! is *robustness under overload* rather than peak throughput.
//!
//! Single-node queries are coalesced into sampler micro-batches (dynamic
//! micro-batching) and run through the same staged pipeline as training —
//! sample → slice-into-pinned-slot → widen + GEMM — under a per-request
//! deadline budget that is checked *between* stages so dead work is
//! abandoned early. Four mechanisms keep the server standing when offered
//! load exceeds capacity:
//!
//! * **Admission control** ([`ServerCore::submit`]): a bounded pending
//!   queue plus a p99-latency estimate; requests that cannot be served are
//!   shed with a typed [`Rejected`] response — never silently dropped.
//! * **Deadline propagation**: each request carries an absolute deadline
//!   (from the shared [`salient_trace::Clock`], so the whole state machine
//!   runs under a `VirtualClock` in tests); expiry is detected at admission
//!   and after every pipeline stage ([`Stage`]).
//! * **Degradation ladder** ([`Ladder`]): sustained queue pressure steps
//!   sampling fanouts down a configured ladder — cheaper, slightly
//!   lower-fidelity answers instead of collapse — and restores them with
//!   hysteresis once pressure clears.
//! * **Panic isolation + circuit breaker** ([`Breaker`]): per-request and
//!   per-stage panics are caught at the same kind of boundary
//!   `batchprep`'s supervisor uses (the pinned slot returns to its pool by
//!   RAII); consecutive micro-batch failures open a breaker that shunts
//!   load away until a cooldown admits probe traffic again.
//!
//! Everything is timed through [`salient_trace::Clock`] and instrumented
//! with `serve.*` counters/histograms/spans, and every failure mode is
//! reachable deterministically through `salient_fault`'s `serve.*` sites.
//!
//! [`ServerCore`] is the deterministic single-threaded state machine;
//! [`Server`] wraps it in a supervised worker thread for concurrent
//! callers; [`loadgen`] builds seeded open-loop Poisson and bursty arrival
//! traces for benchmarks and tests.

#![warn(missing_docs)]

mod breaker;
mod config;
mod core;
mod ladder;
mod server;

pub mod loadgen;

pub use crate::core::{run_trace, ServerCore, StepOutcome};
pub use breaker::{Breaker, BreakerState};
pub use config::ServeConfig;
pub use ladder::{Ladder, LadderMove};
pub use server::{Server, Ticket};

use salient_graph::NodeId;

/// One single-node inference query, stamped with an absolute deadline in
/// the serving clock's nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Caller-chosen id; responses are keyed by it. Also the fault
    /// occurrence for the `serve.request` / `serve.queue` sites.
    pub id: u64,
    /// The node whose class the caller wants.
    pub node: NodeId,
    /// Absolute deadline (clock ns). A response after this instant is
    /// worthless to the caller; the server drops such work as early as it
    /// can detect it.
    pub deadline_ns: u64,
}

/// Why admission control refused a request. The two variants are the
/// serving contract: *every* refused request gets exactly one of these —
/// there are no silent drops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The server is saturated: the pending queue is full, the p99
    /// estimate exceeds the configured bound, or the circuit breaker is
    /// open. Retry later, ideally with backoff.
    Overload,
    /// The request's deadline cannot be met even by an idle server (already
    /// past, or a budget below the observed service floor). Retrying with
    /// the same budget is pointless.
    DeadlineInfeasible,
}

/// The pipeline stage at which a deadline was discovered to have expired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Expired while waiting in the pending queue (before any work).
    Queue,
    /// Expired during/after neighborhood sampling.
    Sample,
    /// Expired during/after feature slicing.
    Slice,
    /// Expired during/after model compute (the answer existed but was late).
    Gemm,
}

/// The terminal outcome of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Served: predicted class, end-to-end latency, and the fanout-ladder
    /// level the answer was computed at (0 = full quality).
    Done {
        /// Argmax class prediction.
        class: u32,
        /// Submit → completion nanoseconds on the serving clock.
        latency_ns: u64,
        /// Degradation-ladder level used for this request's micro-batch.
        fanout_level: usize,
    },
    /// Refused at admission with a typed reason.
    Rejected(Rejected),
    /// Admitted, but the deadline expired at `stage`; remaining work was
    /// dropped as early as the batch structure allowed.
    Expired(Stage),
    /// The request's pipeline panicked (injected or real). The panic was
    /// isolated: the server keeps serving, the staging slot was returned.
    Failed,
}

impl Response {
    /// Whether this is a successful prediction.
    pub fn is_done(&self) -> bool {
        matches!(self, Response::Done { .. })
    }
}
