//! Seeded open-loop arrival traces for serving benchmarks and tests.
//!
//! Both generators are pure functions of their seed (via `tensor::rng`'s
//! xoshiro stream), so a trace replayed through a `VirtualClock`-backed
//! [`crate::ServerCore`] exercises identical admission, degradation, and
//! breaker decisions every run.

use salient_graph::NodeId;
use salient_tensor::rng::{Rng, StdRng};

/// One query arrival in an open-loop trace. The request's absolute
/// deadline is `at_ns + budget_ns`.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Arrival instant on the serving clock (ns).
    pub at_ns: u64,
    /// Node queried.
    pub node: NodeId,
    /// Latency budget granted by the caller (ns).
    pub budget_ns: u64,
}

/// Draws an exponential inter-arrival gap (ns) for `rate_per_sec`.
fn exp_gap_ns(rng: &mut StdRng, rate_per_sec: f64) -> u64 {
    // Inverse-CDF sampling; 1 - U avoids ln(0).
    let u: f64 = rng.random();
    let gap_s = -(1.0 - u).ln() / rate_per_sec;
    (gap_s * 1e9) as u64
}

/// A Poisson arrival process at `rate_per_sec`, over `duration_ns`, with
/// nodes drawn uniformly from `[0, num_nodes)` and a fixed per-request
/// budget. Deterministic in `seed`.
pub fn poisson_trace(
    seed: u64,
    rate_per_sec: f64,
    duration_ns: u64,
    num_nodes: usize,
    budget_ns: u64,
) -> Vec<Arrival> {
    assert!(rate_per_sec > 0.0 && num_nodes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0u64;
    loop {
        t = t.saturating_add(exp_gap_ns(&mut rng, rate_per_sec));
        if t >= duration_ns {
            return out;
        }
        out.push(Arrival {
            at_ns: t,
            node: rng.random_range(0..num_nodes) as NodeId,
            budget_ns,
        });
    }
}

/// A bursty trace alternating `calm_rate` and `burst_rate` Poisson phases
/// of `phase_ns` each (calm first), over `duration_ns`. This is the shape
/// that exercises the degradation ladder: bursts build queue pressure,
/// calm phases let hysteresis restore fidelity. Deterministic in `seed`.
#[allow(clippy::too_many_arguments)]
pub fn bursty_trace(
    seed: u64,
    calm_rate: f64,
    burst_rate: f64,
    phase_ns: u64,
    duration_ns: u64,
    num_nodes: usize,
    budget_ns: u64,
) -> Vec<Arrival> {
    assert!(calm_rate > 0.0 && burst_rate > 0.0 && phase_ns > 0 && num_nodes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0u64;
    loop {
        let phase = (t / phase_ns) % 2;
        let rate = if phase == 0 { calm_rate } else { burst_rate };
        t = t.saturating_add(exp_gap_ns(&mut rng, rate));
        if t >= duration_ns {
            return out;
        }
        out.push(Arrival {
            at_ns: t,
            node: rng.random_range(0..num_nodes) as NodeId,
            budget_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let a = poisson_trace(7, 1000.0, 50_000_000, 100, 1_000_000);
        let b = poisson_trace(7, 1000.0, 50_000_000, 100, 1_000_000);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.node, y.node);
        }
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.iter().all(|x| (x.node as usize) < 100));
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        // 2000 req/s over 1 virtual second ⇒ ~2000 arrivals.
        let a = poisson_trace(11, 2000.0, 1_000_000_000, 10, 1_000_000);
        assert!(
            (1700..2300).contains(&a.len()),
            "got {} arrivals for rate 2000/s",
            a.len()
        );
    }

    #[test]
    fn bursty_phases_differ_in_density() {
        let a = bursty_trace(3, 200.0, 5000.0, 100_000_000, 400_000_000, 50, 2_000_000);
        let calm = a
            .iter()
            .filter(|x| (x.at_ns / 100_000_000) % 2 == 0)
            .count();
        let burst = a.len() - calm;
        assert!(
            burst > calm * 5,
            "burst phases should dominate: calm={calm} burst={burst}"
        );
    }
}
