//! The threaded serving front-end: a supervised worker thread around
//! [`ServerCore`].
//!
//! [`Server::submit`] performs admission synchronously on the caller's
//! thread (so shed decisions are instantaneous and typed) and hands back a
//! [`Ticket`] the caller blocks on. A single worker thread forms and runs
//! micro-batches; it is supervised the same way `batchprep`'s prep workers
//! are (PR 2): each incarnation runs under `catch_unwind`, a crashed
//! incarnation is respawned from a bounded budget, and when the budget is
//! exhausted the server turns itself off — every queued and future caller
//! gets a terminal response rather than a hang.

use crate::core::ServerCore;
use crate::{Rejected, Request, Response};
use salient_batchprep::channel::{self, Receiver, RecvTimeoutError, Sender};
use salient_fault::{self as fault};
use salient_graph::NodeId;
use salient_trace::names;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Worker incarnations the supervisor will start beyond the first.
const RESPAWN_BUDGET: u64 = 3;

/// How long an idle worker sleeps between queue checks.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// Locks tolerating poison: state behind these mutexes is kept consistent
/// by the panic boundaries around every step, so a poisoned lock carries no
/// torn invariants.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    core: Mutex<ServerCore>,
    waiters: Mutex<HashMap<u64, Sender<Response>>>,
    /// Wakes the worker when new work is admitted.
    nudge_tx: Sender<()>,
    /// `None` once the supervisor has exited, so a submitter blocked in
    /// `send` on a full nudge buffer errors out instead of parking forever.
    nudge_rx: Mutex<Option<Receiver<()>>>,
    shutdown: AtomicBool,
    /// Set when the respawn budget is exhausted: the server stops accepting
    /// work and fails everything still queued.
    dead: AtomicBool,
    next_id: AtomicU64,
}

impl Shared {
    /// Fails every parked waiter (server death / shutdown path): the
    /// no-silent-drops contract holds even when the worker is gone.
    fn fail_all_waiters(&self) {
        let mut waiters = lock_unpoisoned(&self.waiters);
        for (_, tx) in waiters.drain() {
            let _ = tx.send(Response::Failed);
        }
    }

    fn deliver(&self, responses: Vec<(u64, Response)>) {
        if responses.is_empty() {
            return;
        }
        let mut waiters = lock_unpoisoned(&self.waiters);
        for (id, resp) in responses {
            if let Some(tx) = waiters.remove(&id) {
                // A send error means the caller dropped its Ticket; the
                // response is theirs to discard.
                let _ = tx.send(resp);
            }
        }
    }
}

/// A handle to one admitted request.
pub struct Ticket {
    id: u64,
    rx: Receiver<Response>,
}

impl Ticket {
    /// The request id responses are keyed by.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request's terminal [`Response`]. A worker that died
    /// with the respawn budget exhausted resolves this as
    /// [`Response::Failed`] — tickets never hang.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Response::Failed)
    }

    /// Non-blocking probe for the response.
    pub fn try_wait(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

/// Thread-safe serving front-end (see the module docs).
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns the supervised worker thread around `core`.
    pub fn start(core: ServerCore) -> Server {
        let (nudge_tx, nudge_rx) = channel::bounded::<()>(1);
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            waiters: Mutex::new(HashMap::new()),
            nudge_tx,
            nudge_rx: Mutex::new(Some(nudge_rx)),
            shutdown: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
        });
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("serve-supervisor".into())
            .spawn(move || supervise(sup_shared))
            .expect("spawn serve supervisor");
        Server { shared, supervisor: Some(supervisor) }
    }

    /// Admits one query (synchronously, on the caller's thread) with an
    /// absolute deadline on the serving clock.
    ///
    /// # Errors
    ///
    /// The typed shed decision from [`ServerCore::submit`]; additionally
    /// [`Rejected::Overload`] once the server is shut down or its worker
    /// respawn budget is exhausted.
    pub fn submit(&self, node: NodeId, deadline_ns: u64) -> Result<Ticket, Rejected> {
        if self.shared.dead.load(Ordering::Acquire)
            || self.shared.shutdown.load(Ordering::Acquire)
        {
            return Err(Rejected::Overload);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed); // Relaxed: the counter only needs uniqueness, not ordering with other state
        let (tx, rx) = channel::bounded::<Response>(1);
        // Park the waiter before admission so the worker can never emit a
        // response that finds no mailbox.
        lock_unpoisoned(&self.shared.waiters).insert(id, tx);
        let admitted = {
            let mut core = lock_unpoisoned(&self.shared.core);
            core.submit(Request { id, node, deadline_ns })
        };
        match admitted {
            Ok(()) => {
                // Wake the worker; a full nudge buffer means it is already
                // scheduled to look.
                let _ = self.shared.nudge_tx.send(());
                Ok(Ticket { id, rx })
            }
            Err(rej) => {
                lock_unpoisoned(&self.shared.waiters).remove(&id);
                Err(rej)
            }
        }
    }

    /// Runs `f` against the underlying core (metrics snapshots, state
    /// probes). The worker is paused for the duration.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut ServerCore) -> R) -> R {
        f(&mut lock_unpoisoned(&self.shared.core))
    }

    /// Stops the worker, fails any still-parked waiters, and returns the
    /// core (for final metric snapshots).
    pub fn shutdown(mut self) -> ServerCore {
        self.stop();
        self.shared.fail_all_waiters();
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(sh) => sh.core.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(shared) => {
                // A straggling Ticket still holds the Arc; steal the core by
                // swapping in a dummy? Not possible without Default — so we
                // only reach here if callers kept tickets past shutdown.
                // Block until they drop (tickets resolve instantly after
                // fail_all_waiters, so this is bounded).
                loop {
                    if Arc::strong_count(&shared) == 1 {
                        break Arc::try_unwrap(shared)
                            .map(|sh| {
                                sh.core.into_inner().unwrap_or_else(PoisonError::into_inner)
                            })
                            .unwrap_or_else(|_| unreachable!("sole owner"));
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    fn stop(&mut self) {
        // No shutdown nudge: `send` blocks while the buffer is full, and a
        // worker that already exited via its idle poll would never drain
        // it. The worker re-checks the flag every IDLE_POLL regardless.
        let Some(h) = self.supervisor.take() else { return };
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = h.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        self.shared.fail_all_waiters();
    }
}

/// The supervisor loop: runs worker incarnations under `catch_unwind`,
/// respawning crashed ones from a bounded budget (PR 2's prep-worker
/// pattern). Exhausting the budget marks the server dead and fails all
/// parked waiters instead of hanging them.
fn supervise(shared: Arc<Shared>) {
    let respawns = shared
        .core
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .trace()
        .counter(names::counters::SERVE_RESPAWNS);
    let mut incarnation: u64 = 0;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| worker(&shared, incarnation)));
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // The incarnation ended without shutdown: it panicked (or its
        // injected `serve.worker` fault dropped it).
        let _ = run;
        if incarnation >= RESPAWN_BUDGET {
            shared.dead.store(true, Ordering::Release);
            shared.fail_all_waiters();
            break;
        }
        incarnation += 1;
        respawns.inc();
    }
    // Drop the nudge receiver so any submitter blocked on a full buffer
    // gets a send error instead of parking forever.
    lock_unpoisoned(&shared.nudge_rx).take();
}

/// One worker incarnation: wait for a nudge (or idle-poll), then drain the
/// pending queue one micro-batch at a time, delivering responses between
/// steps so the core lock is never held while a caller is woken.
fn worker(shared: &Shared, incarnation: u64) {
    // Injected worker-crash site: panics propagate to the supervisor's
    // catch_unwind; a Drop action ends the incarnation quietly. Fired
    // outside any lock.
    if fault::fire(fault::sites::SERVE_WORKER, incarnation) {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let nudged = {
            let rx = lock_unpoisoned(&shared.nudge_rx);
            match rx.as_ref() {
                Some(rx) => rx.recv_timeout(IDLE_POLL),
                None => return,
            }
        };
        if matches!(nudged, Err(RecvTimeoutError::Disconnected)) {
            return;
        }
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let outcome = {
                let mut core = lock_unpoisoned(&shared.core);
                if core.pending() == 0 {
                    break;
                }
                core.step()
            };
            shared.deliver(outcome.responses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use salient_core::{RunConfig, Trainer};
    use salient_graph::DatasetConfig;
    use salient_trace::{Clock, Trace};
    use std::sync::Arc as StdArc;

    fn trained_core(trace: Trace) -> ServerCore {
        let dataset = StdArc::new(DatasetConfig::tiny(17).build());
        let mut trainer = Trainer::new(StdArc::clone(&dataset), RunConfig::test_tiny());
        trainer.train_epoch();
        let model = trainer.into_model();
        let cfg = ServeConfig {
            fanout_ladder: vec![vec![4, 4], vec![2, 2]],
            seed: 99,
            ..ServeConfig::default()
        };
        ServerCore::new(model, dataset, cfg, trace)
    }

    #[test]
    fn threaded_server_serves_real_requests() {
        let trace = Trace::new(Clock::monotonic());
        let core = trained_core(trace);
        let server = Server::start(core);
        let clock = server.with_core(|c| c.clock());
        let mut done = 0;
        let mut tickets = Vec::new();
        for node in 0..20u64 {
            let deadline = clock.now_ns() + 500_000_000;
            match server.submit(node as NodeId, deadline) {
                Ok(t) => tickets.push(t),
                Err(r) => panic!("unexpected rejection at low load: {r:?}"),
            }
        }
        for t in tickets {
            if t.wait().is_done() {
                done += 1;
            }
        }
        assert!(done >= 18, "expected nearly all to complete, got {done}/20");
        let core = server.shutdown();
        let snap = core.trace().snapshot();
        assert_eq!(
            snap.metrics.counter(names::counters::SERVE_ADMITTED),
            20
        );
    }

    #[test]
    fn shutdown_fails_parked_waiters_instead_of_hanging() {
        let trace = Trace::new(Clock::monotonic());
        let core = trained_core(trace);
        let server = Server::start(core);
        // Submit with a generous deadline, then shut down immediately; the
        // ticket must resolve (Done if the worker got there first, Failed
        // if shutdown won) — never hang.
        let clock = server.with_core(|c| c.clock());
        let t = server.submit(0, clock.now_ns() + 10_000_000_000).ok();
        drop(server);
        if let Some(t) = t {
            let _ = t.wait();
        }
    }
}
