//! Calibrated cost model of the paper's testbed.
//!
//! Every constant is tied to a measurement published in the paper; the
//! simulator *predicts* all other cells from these anchors. Provenance:
//!
//! | constant | anchor |
//! |---|---|
//! | `pyg_sample_ns_per_edge` | Table 2: PyG products sampling, P=1 → 71.1 s over ≈ 146 M modeled edges |
//! | `salient_sample_ns_per_edge` | Table 2: SALIENT 28.3 s (the 2.5× of §4.1) |
//! | `sample_serial_frac_*` | Table 2 scaling P=1 → P=20 (PyG 9.9×, SALIENT 14.9×) |
//! | `slice_bw_*` | Table 2 slicing: 7.6 s (PyG) / 7.3 s (SALIENT) at P=1 over ≈ 20 GB |
//! | `slice_serial_frac_*` | Table 2 slicing scaling (PyG 6.3×, SALIENT 12.2×) |
//! | `dma_bw` | §3.3: 12.3 GB/s peak pinned DMA |
//! | `rt_latency_ns` | §4.3: baseline reaches only 75 % of peak due to per-sparse-tensor assertion round trips |
//! | `dma_eff_pipelined` | §4.3: 99 % of peak once assertions are skipped |
//! | `gpu_flops` / `gpu_mem_bw` | Table 1: papers Train(GPU) = 13.9 s over 1179 batches on a V100 |
//! | `nic_bw` | §6: 10 GigE interconnect |
//! | `mp_copy_bw` | §4.2: multiprocessing hand-off "effectively halves the observed memory bandwidth" |

use crate::workload::BatchWorkload;

/// Which sampler/slicing implementation a stage uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Impl {
    /// The tuned PyG baseline (STL structures, DataLoader workers).
    Pyg,
    /// SALIENT (flat structures, shared-memory threads).
    Salient,
}

/// GNN architecture being trained (Figure 6 set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GnnArch {
    /// GraphSAGE with mean aggregation.
    Sage,
    /// Graph attention network, 1 head.
    Gat,
    /// Graph isomorphism network (2-layer MLP update).
    Gin,
    /// GraphSAGE with residual connections and Inception-style readout.
    SageRi,
}

impl GnnArch {
    /// All architectures in Figure-6 order.
    pub fn all() -> [GnnArch; 4] {
        [GnnArch::Sage, GnnArch::Gat, GnnArch::Gin, GnnArch::SageRi]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GnnArch::Sage => "SAGE",
            GnnArch::Gat => "GAT",
            GnnArch::Gin => "GIN",
            GnnArch::SageRi => "SAGE-RI",
        }
    }

    /// Approximate trainable-parameter bytes (f32) for the all-reduce model.
    pub fn param_bytes(&self, feat_dim: u32, hidden: u32, classes: u32) -> f64 {
        let (f, h, c) = (feat_dim as f64, hidden as f64, classes as f64);
        let params = match self {
            // Two weight matrices (self + neighbor) per SAGEConv layer.
            GnnArch::Sage => 2.0 * f * h + 2.0 * (2.0 * h * h) + h * c,
            // One weight matrix plus attention vectors per layer.
            GnnArch::Gat => (f * h + 2.0 * h) + 2.0 * (h * h + 2.0 * h) + h * c,
            // Two-layer MLP per GIN layer plus readout MLP.
            GnnArch::Gin => (f * h + h * h) + 2.0 * (2.0 * h * h) + (h * h + h * c),
            // SAGE plus residual linears, batch norms, and concat readout.
            GnnArch::SageRi => 2.0 * f * h + 2.0 * (2.0 * h * h) + f * h + 4.0 * h * c,
        };
        params * 4.0
    }
}

/// The calibrated testbed model (one 20-core Xeon 6248 + V100 per GPU slot).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// PyG sampling cost per sampled edge, single thread (ns).
    pub pyg_sample_ns_per_edge: f64,
    /// SALIENT sampling cost per sampled edge, single thread (ns).
    pub salient_sample_ns_per_edge: f64,
    /// Amdahl serial fraction of PyG multiprocessing sampling.
    pub sample_serial_frac_pyg: f64,
    /// Amdahl serial fraction of SALIENT shared-memory sampling.
    pub sample_serial_frac_salient: f64,
    /// Single-thread slicing bandwidth of PyG (bytes/s).
    pub slice_bw_pyg: f64,
    /// Single-thread slicing bandwidth of SALIENT (bytes/s).
    pub slice_bw_salient: f64,
    /// Amdahl serial fraction of PyG OpenMP slicing (DRAM contention).
    pub slice_serial_frac_pyg: f64,
    /// Amdahl serial fraction of SALIENT per-thread serial slicing.
    pub slice_serial_frac_salient: f64,
    /// Bandwidth of the extra multiprocessing shared-memory copy (bytes/s).
    pub mp_copy_bw: f64,
    /// Peak pinned-memory DMA bandwidth (bytes/s).
    pub dma_bw: f64,
    /// Blocking CPU↔GPU round-trip per MFG layer in the baseline transfer
    /// path (sparse-tensor validity assertions), ns.
    pub rt_latency_ns: f64,
    /// Fraction of peak DMA achieved once assertions are skipped.
    pub dma_eff_pipelined: f64,
    /// Effective GPU compute throughput for GNN kernels (FLOP/s).
    pub gpu_flops: f64,
    /// Effective GPU memory bandwidth for gather/scatter kernels (bytes/s).
    pub gpu_mem_bw: f64,
    /// Fixed per-batch kernel-launch + optimizer overhead (ns).
    pub gpu_overhead_ns: f64,
    /// Per-machine network bandwidth (bytes/s), 10 GigE.
    pub nic_bw: f64,
    /// Per-hop all-reduce latency (ns).
    pub allreduce_latency_ns: f64,
    /// Fixed per-batch main-loop overhead of the PyG DataLoader path
    /// (Python batch collation), ns. Together with the IPC term below it is
    /// why ogbn-arxiv's baseline spends 58 % in "batch prep" (Table 1)
    /// despite its tiny MFGs.
    pub pyg_batch_overhead_ns: f64,
    /// Fixed per-batch overhead of SALIENT's C++ prep threads, ns.
    pub salient_batch_overhead_ns: f64,
    /// Main-process IPC bandwidth for receiving the sampled MFG structure
    /// from DataLoader worker processes (bytes/s). SALIENT's shared-memory
    /// threads eliminate this copy entirely (§4.2).
    pub ipc_bw: f64,
    /// DataLoader sampling worker processes in the PyG baseline. Standard
    /// practice leaves cores free for the main process's OpenMP slicing, so
    /// this is below the 20 hardware cores per GPU.
    pub pyg_dataloader_workers: usize,
}

impl CostModel {
    /// The model calibrated to the paper's hardware (see module docs).
    pub fn paper_hardware() -> Self {
        CostModel {
            pyg_sample_ns_per_edge: 475.0,
            salient_sample_ns_per_edge: 190.0,
            sample_serial_frac_pyg: 0.054,
            sample_serial_frac_salient: 0.018,
            slice_bw_pyg: 2.66e9,
            slice_bw_salient: 2.77e9,
            slice_serial_frac_pyg: 0.114,
            slice_serial_frac_salient: 0.034,
            mp_copy_bw: 5.5e9,
            dma_bw: 12.3e9,
            rt_latency_ns: 1.25e6,
            dma_eff_pipelined: 0.99,
            gpu_flops: 5.0e12,
            gpu_mem_bw: 650.0e9,
            gpu_overhead_ns: 1.0e6,
            nic_bw: 1.25e9,
            allreduce_latency_ns: 50_000.0,
            pyg_batch_overhead_ns: 3.0e6,
            salient_batch_overhead_ns: 0.2e6,
            ipc_bw: 2.0e9,
            pyg_dataloader_workers: 12,
        }
    }

    /// Per-batch main-process cost of receiving a worker-sampled MFG over
    /// multiprocessing IPC (ns).
    pub fn ipc_receive_ns(&self, w: &BatchWorkload) -> f64 {
        self.pyg_batch_overhead_ns + w.structure_bytes() / self.ipc_bw * 1e9
    }

    /// Amdahl-style parallel time: `t1 * (serial + (1 - serial) / p)`.
    pub fn parallel_time(t1_ns: f64, threads: usize, serial_frac: f64) -> f64 {
        t1_ns * (serial_frac + (1.0 - serial_frac) / threads.max(1) as f64)
    }

    /// Single-thread sampling time for one batch (ns).
    pub fn sample_batch_ns(&self, who: Impl, w: &BatchWorkload) -> f64 {
        let per_edge = match who {
            Impl::Pyg => self.pyg_sample_ns_per_edge,
            Impl::Salient => self.salient_sample_ns_per_edge,
        };
        w.mfg_edges * per_edge
    }

    /// Single-thread slicing time for one batch (ns).
    pub fn slice_batch_ns(&self, who: Impl, w: &BatchWorkload) -> f64 {
        let bw = match who {
            Impl::Pyg => self.slice_bw_pyg,
            Impl::Salient => self.slice_bw_salient,
        };
        w.feature_bytes() / bw * 1e9
    }

    /// Extra shared-memory copy paid per batch by multiprocessing workers
    /// (ns).
    pub fn mp_copy_ns(&self, w: &BatchWorkload) -> f64 {
        w.feature_bytes() / self.mp_copy_bw * 1e9
    }

    /// CPU→GPU transfer time for one batch (ns). `skip_assertions` models
    /// SALIENT's removal of the per-sparse-tensor validity checks (§4.3).
    pub fn transfer_batch_ns(&self, w: &BatchWorkload, skip_assertions: bool) -> f64 {
        let layers = w.hop_edges.len() as f64;
        if skip_assertions {
            w.transfer_bytes() / (self.dma_bw * self.dma_eff_pipelined) * 1e9
        } else {
            w.transfer_bytes() / self.dma_bw * 1e9 + layers * self.rt_latency_ns
        }
    }

    /// Forward-pass FLOPs of one batch for an architecture.
    ///
    /// `hop_nodes` is ordered batch-outward, so forward layer `i` (input
    /// side first) has `n_dst = hop_nodes[L-1-i]` output rows and aggregates
    /// `hop_edges[L-1-i]` edges.
    pub fn forward_flops(
        &self,
        arch: GnnArch,
        w: &BatchWorkload,
        hidden: u32,
        classes: u32,
    ) -> f64 {
        let l = w.hop_edges.len();
        let h = hidden as f64;
        let mut flops = 0.0;
        for i in 0..l {
            let in_dim = if i == 0 { w.feat_dim as f64 } else { h };
            let n_dst = w.hop_nodes[l - 1 - i];
            let n_src = w.hop_nodes[l - i];
            let edges = w.hop_edges[l - 1 - i];
            flops += match arch {
                // Two dense transforms on destination rows.
                GnnArch::Sage => 4.0 * n_dst * in_dim * h,
                // Transform all sources (attention needs them), plus
                // per-edge attention arithmetic.
                GnnArch::Gat => 2.0 * n_src * in_dim * h + 8.0 * edges,
                // Sum aggregation then a 2-layer MLP on destinations.
                GnnArch::Gin => 2.0 * n_dst * (in_dim * h + h * h),
                // SAGE plus residual linear and batch norm.
                GnnArch::SageRi => 4.0 * n_dst * in_dim * h + 2.0 * n_dst * in_dim * h,
            };
        }
        // Readout.
        let batch = w.batch_size as f64;
        flops += match arch {
            GnnArch::Sage | GnnArch::Gat => 2.0 * batch * h * classes as f64,
            GnnArch::Gin => 2.0 * batch * (h * h + h * classes as f64),
            GnnArch::SageRi => 2.0 * batch * ((l as f64 + 1.0) * h * h + h * classes as f64),
        };
        flops
    }

    /// Bytes moved by gather/scatter aggregation kernels per batch.
    fn aggregation_bytes(&self, arch: GnnArch, w: &BatchWorkload, hidden: u32) -> f64 {
        let l = w.hop_edges.len();
        let h = hidden as f64;
        let mut bytes = 0.0;
        for i in 0..l {
            let in_dim = if i == 0 { w.feat_dim as f64 } else { h };
            let edges = w.hop_edges[l - 1 - i];
            let width = match arch {
                GnnArch::Gat => h, // aggregates transformed features
                _ => in_dim,
            };
            bytes += edges * width * 4.0 * 2.0;
        }
        bytes
    }

    /// GPU time for one training iteration (forward + backward + update) of
    /// one batch (ns).
    pub fn gpu_train_batch_ns(
        &self,
        arch: GnnArch,
        w: &BatchWorkload,
        hidden: u32,
        classes: u32,
    ) -> f64 {
        let flops = 3.0 * self.forward_flops(arch, w, hidden, classes);
        let agg = 2.0 * self.aggregation_bytes(arch, w, hidden);
        flops / self.gpu_flops * 1e9 + agg / self.gpu_mem_bw * 1e9 + self.gpu_overhead_ns
    }

    /// GPU time for one inference (forward-only) batch (ns).
    pub fn gpu_infer_batch_ns(
        &self,
        arch: GnnArch,
        w: &BatchWorkload,
        hidden: u32,
        classes: u32,
    ) -> f64 {
        let flops = self.forward_flops(arch, w, hidden, classes);
        let agg = self.aggregation_bytes(arch, w, hidden);
        flops / self.gpu_flops * 1e9 + agg / self.gpu_mem_bw * 1e9 + self.gpu_overhead_ns
    }

    /// CPU→GPU transfer time with a device-side feature cache absorbing
    /// `hit_rate` of the feature rows (structure and labels always cross
    /// the bus). Models the GNS-style caching of §8's future work.
    pub fn transfer_batch_ns_cached(
        &self,
        w: &BatchWorkload,
        skip_assertions: bool,
        hit_rate: f64,
    ) -> f64 {
        let bytes = w.feature_bytes() * (1.0 - hit_rate.clamp(0.0, 1.0))
            + w.batch_size as f64 * 4.0
            + w.structure_bytes();
        let layers = w.hop_edges.len() as f64;
        if skip_assertions {
            bytes / (self.dma_bw * self.dma_eff_pipelined) * 1e9
        } else {
            bytes / self.dma_bw * 1e9 + layers * self.rt_latency_ns
        }
    }

    /// Ring all-reduce time across `ranks` for `bytes` of gradients (ns).
    pub fn allreduce_ns(&self, ranks: usize, bytes: f64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let n = ranks as f64;
        2.0 * (n - 1.0) / n * bytes / self.nic_bw * 1e9
            + 2.0 * (n - 1.0) * self.allreduce_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::expected_batch;
    use salient_graph::DatasetStats;

    fn products_w() -> BatchWorkload {
        expected_batch(&DatasetStats::products(), &[15, 10, 5], 1024)
    }

    #[test]
    fn sampling_anchors_reproduce_table2_p1() {
        let m = CostModel::paper_hardware();
        let w = products_w();
        let batches = DatasetStats::products().batches_per_epoch(1024) as f64;
        let pyg_epoch_s = m.sample_batch_ns(Impl::Pyg, &w) * batches / 1e9;
        let sal_epoch_s = m.sample_batch_ns(Impl::Salient, &w) * batches / 1e9;
        assert!(
            (55.0..90.0).contains(&pyg_epoch_s),
            "PyG P=1 sampling should be ≈71 s, got {pyg_epoch_s:.1}"
        );
        let speedup = pyg_epoch_s / sal_epoch_s;
        assert!(
            (2.3..2.7).contains(&speedup),
            "SALIENT sampler speedup should be ≈2.5×, got {speedup:.2}"
        );
    }

    #[test]
    fn sampling_scales_like_table2_p20() {
        let m = CostModel::paper_hardware();
        let w = products_w();
        let batches = DatasetStats::products().batches_per_epoch(1024) as f64;
        let t1 = m.sample_batch_ns(Impl::Pyg, &w) * batches;
        let t20 = CostModel::parallel_time(t1, 20, m.sample_serial_frac_pyg);
        let s = t20 / 1e9;
        assert!((5.5..9.5).contains(&s), "PyG P=20 sampling ≈7.2 s, got {s:.1}");

        let t1s = m.sample_batch_ns(Impl::Salient, &w) * batches;
        let t20s = CostModel::parallel_time(t1s, 20, m.sample_serial_frac_salient);
        let ss = t20s / 1e9;
        assert!((1.4..2.6).contains(&ss), "SALIENT P=20 ≈1.9 s, got {ss:.1}");
    }

    #[test]
    fn slicing_anchors_reproduce_table2() {
        let m = CostModel::paper_hardware();
        let w = products_w();
        let batches = DatasetStats::products().batches_per_epoch(1024) as f64;
        let pyg1 = m.slice_batch_ns(Impl::Pyg, &w) * batches / 1e9;
        assert!((5.0..11.0).contains(&pyg1), "PyG slicing P=1 ≈7.6 s, got {pyg1:.1}");
        let pyg20 =
            CostModel::parallel_time(m.slice_batch_ns(Impl::Pyg, &w) * batches, 20, m.slice_serial_frac_pyg)
                / 1e9;
        assert!((0.8..1.9).contains(&pyg20), "PyG slicing P=20 ≈1.2 s, got {pyg20:.2}");
    }

    #[test]
    fn transfer_efficiency_matches_section_3_3() {
        let m = CostModel::paper_hardware();
        let w = expected_batch(&DatasetStats::papers(), &[15, 10, 5], 1024);
        let pure = w.transfer_bytes() / m.dma_bw * 1e9;
        let baseline = m.transfer_batch_ns(&w, false);
        let eff = pure / baseline;
        assert!(
            (0.65..0.90).contains(&eff),
            "baseline transfer efficiency ≈75 %, got {:.0} %",
            eff * 100.0
        );
        let pipelined = m.transfer_batch_ns(&w, true);
        let eff_p = pure / pipelined;
        assert!(eff_p > 0.95, "pipelined ≈99 %, got {:.2}", eff_p);
    }

    #[test]
    fn gpu_train_time_in_v100_ballpark() {
        // Table 1: papers Train(GPU) = 13.9 s over 1179 batches ⇒ ≈11.8 ms.
        let m = CostModel::paper_hardware();
        let w = expected_batch(&DatasetStats::papers(), &[15, 10, 5], 1024);
        let ms = m.gpu_train_batch_ns(GnnArch::Sage, &w, 256, 172) / 1e6;
        assert!(
            (6.0..20.0).contains(&ms),
            "SAGE papers GPU batch ≈11.8 ms, got {ms:.1}"
        );
    }

    #[test]
    fn arch_compute_ordering_matches_figure6() {
        // Computation density: SAGE-RI > GIN ≈ GAT > SAGE (the paper's
        // stated ordering of compute density; SAGE trains fastest).
        let m = CostModel::paper_hardware();
        let stats = DatasetStats::papers();
        let sage = m.gpu_train_batch_ns(GnnArch::Sage, &expected_batch(&stats, &[15, 10, 5], 1024), 256, 172);
        let gat = m.gpu_train_batch_ns(GnnArch::Gat, &expected_batch(&stats, &[15, 10, 5], 1024), 256, 172);
        let gin = m.gpu_train_batch_ns(GnnArch::Gin, &expected_batch(&stats, &[20, 20, 20], 1024), 256, 172);
        let ri = m.gpu_train_batch_ns(GnnArch::SageRi, &expected_batch(&stats, &[12, 12, 12], 1024), 1024, 172);
        assert!(gat > sage, "GAT denser than SAGE");
        assert!(gin > sage, "GIN (fanout 20³) denser than SAGE");
        assert!(ri > gat && ri > gin, "SAGE-RI is the densest");
    }

    #[test]
    fn allreduce_scales_with_ranks_and_bytes() {
        let m = CostModel::paper_hardware();
        assert_eq!(m.allreduce_ns(1, 1e6), 0.0);
        let t2 = m.allreduce_ns(2, 1.3e6);
        let t16 = m.allreduce_ns(16, 1.3e6);
        assert!(t16 > t2);
        // Ring all-reduce asymptote: at most ~2× the 2-rank cost in the
        // bandwidth term.
        assert!(t16 < 4.0 * t2);
    }

    #[test]
    fn param_bytes_sane() {
        let sage = GnnArch::Sage.param_bytes(128, 256, 172);
        assert!((0.5e6..4.0e6).contains(&sage), "SAGE ≈1.5 MB of params, got {sage}");
        let ri = GnnArch::SageRi.param_bytes(128, 1024, 172);
        assert!(ri > sage);
    }
}
