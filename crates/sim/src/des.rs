//! Discrete-event simulation core: tasks with dependencies executing on
//! multi-server FIFO resources under a virtual clock.
//!
//! The timing experiments of the paper (Tables 1–3, Figures 1 and 4–6)
//! measure how a fixed *schedule shape* — which stages block which, what
//! overlaps what — interacts with stage throughputs. This module executes
//! such schedules exactly: an epoch is compiled to a DAG of [`TaskSpec`]s
//! over [`ResourceSpec`]s (CPU worker pools, a DMA engine, GPU streams, a
//! NIC), and [`Simulation::run`] produces per-task start/end times and the
//! epoch makespan, deterministically and independently of host hardware.
//!
//! Scheduling policy: non-preemptive, FIFO per resource in task *ready*
//! order (ties broken by task id), matching queue semantics of the systems
//! being modeled.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// Index of a task within a [`Simulation`].
pub type TaskId = usize;

/// Index of a resource within a [`Simulation`].
pub type ResourceId = usize;

/// A pool of identical servers (e.g. "20 CPU workers", "1 DMA engine").
#[derive(Clone, Debug)]
pub struct ResourceSpec {
    /// Human-readable name used in timeline exports.
    pub name: String,
    /// Number of servers that can run tasks concurrently.
    pub servers: usize,
}

/// One unit of work bound to a resource.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Label for timeline exports (e.g. `"sample[b3]"`).
    pub label: String,
    /// The resource this task occupies while running.
    pub resource: ResourceId,
    /// Service duration in virtual nanoseconds.
    pub duration: SimTime,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
}

/// A complete schedule: resources plus a task DAG.
#[derive(Clone, Debug, Default)]
pub struct Simulation {
    resources: Vec<ResourceSpec>,
    tasks: Vec<TaskSpec>,
}

/// The result of executing a [`Simulation`].
#[derive(Clone, Debug)]
pub struct Executed {
    /// Start time of each task.
    pub start: Vec<SimTime>,
    /// End time of each task.
    pub end: Vec<SimTime>,
    /// Which server of its resource each task ran on (for timeline lanes).
    pub server: Vec<usize>,
    /// Time at which the last task finished.
    pub makespan: SimTime,
    /// Busy time accumulated per resource.
    pub busy: Vec<SimTime>,
}

impl Executed {
    /// Utilization of a resource over the makespan: busy time divided by
    /// `servers × makespan`.
    pub fn utilization(&self, sim: &Simulation, resource: ResourceId) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy[resource] as f64
            / (self.makespan as f64 * sim.resources[resource].servers as f64)
    }
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource pool and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn resource(&mut self, name: impl Into<String>, servers: usize) -> ResourceId {
        assert!(servers > 0, "resource needs at least one server");
        self.resources.push(ResourceSpec {
            name: name.into(),
            servers,
        });
        self.resources.len() - 1
    }

    /// Adds a task and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the resource id is unknown or a dependency refers to a
    /// not-yet-added task (the DAG must be constructed in topological
    /// order).
    pub fn task(
        &mut self,
        label: impl Into<String>,
        resource: ResourceId,
        duration: SimTime,
        deps: impl Into<Vec<TaskId>>,
    ) -> TaskId {
        let deps = deps.into();
        assert!(resource < self.resources.len(), "unknown resource");
        let id = self.tasks.len();
        assert!(
            deps.iter().all(|&d| d < id),
            "dependencies must be added before dependents"
        );
        self.tasks.push(TaskSpec {
            label: label.into(),
            resource,
            duration,
            deps,
        });
        id
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The registered resources.
    pub fn resources(&self) -> &[ResourceSpec] {
        &self.resources
    }

    /// The registered tasks.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Executes the schedule and returns per-task times.
    ///
    /// Runs in `O((T + E) log T)` for `T` tasks and `E` dependency edges.
    pub fn run(&self) -> Executed {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            indeg[id] = t.deps.len();
            for &d in &t.deps {
                children[d].push(id);
            }
        }

        // Per-resource server pools: min-heaps of (free_at, server_index).
        let mut servers: Vec<BinaryHeap<Reverse<(SimTime, usize)>>> = self
            .resources
            .iter()
            .map(|r| (0..r.servers).map(|s| Reverse((0, s))).collect())
            .collect();

        // Ready events in (ready_time, task_id) order.
        let mut ready: BinaryHeap<Reverse<(SimTime, TaskId)>> = BinaryHeap::new();
        let mut ready_at = vec![0 as SimTime; n];
        for (id, t) in self.tasks.iter().enumerate() {
            if t.deps.is_empty() {
                ready.push(Reverse((0, id)));
            }
        }

        let mut start = vec![0 as SimTime; n];
        let mut end = vec![0 as SimTime; n];
        let mut server_of = vec![0usize; n];
        let mut busy = vec![0 as SimTime; self.resources.len()];
        let mut makespan = 0;
        let mut done = 0usize;

        while let Some(Reverse((r_time, id))) = ready.pop() {
            let t = &self.tasks[id];
            let pool = &mut servers[t.resource];
            let Reverse((free_at, srv)) = pool.pop().expect("resource has servers");
            let s = r_time.max(free_at);
            let e = s + t.duration;
            pool.push(Reverse((e, srv)));
            start[id] = s;
            end[id] = e;
            server_of[id] = srv;
            busy[t.resource] += t.duration;
            makespan = makespan.max(e);
            done += 1;
            for &c in &children[id] {
                ready_at[c] = ready_at[c].max(e);
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    ready.push(Reverse((ready_at[c], c)));
                }
            }
        }
        assert_eq!(done, n, "dependency cycle: {} tasks never became ready", n - done);

        Executed {
            start,
            end,
            server: server_of,
            makespan,
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 1);
        let t = sim.task("work", cpu, 100, vec![]);
        let ex = sim.run();
        assert_eq!(ex.start[t], 0);
        assert_eq!(ex.end[t], 100);
        assert_eq!(ex.makespan, 100);
        assert_eq!(ex.utilization(&sim, cpu), 1.0);
    }

    #[test]
    fn chain_serializes() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 4);
        let a = sim.task("a", cpu, 10, vec![]);
        let b = sim.task("b", cpu, 20, vec![a]);
        let c = sim.task("c", cpu, 30, vec![b]);
        let ex = sim.run();
        assert_eq!(ex.start[b], 10);
        assert_eq!(ex.start[c], 30);
        assert_eq!(ex.makespan, 60);
    }

    #[test]
    fn parallel_tasks_share_servers() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 2);
        for _ in 0..4 {
            sim.task("w", cpu, 50, vec![]);
        }
        let ex = sim.run();
        // 4 tasks × 50 on 2 servers → 100.
        assert_eq!(ex.makespan, 100);
        assert!((ex.utilization(&sim, cpu) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_order_by_ready_time() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 1);
        let gate = sim.resource("gate", 1);
        // b becomes ready at 5 (after g), a at 0; a must run first.
        let g = sim.task("g", gate, 5, vec![]);
        let b = sim.task("b", cpu, 10, vec![g]);
        let a = sim.task("a", cpu, 10, vec![]);
        let ex = sim.run();
        assert_eq!(ex.start[a], 0);
        assert_eq!(ex.start[b], 10, "later-ready task queues behind");
    }

    #[test]
    fn diamond_dependency_waits_for_both() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 2);
        let a = sim.task("a", cpu, 10, vec![]);
        let b = sim.task("b", cpu, 25, vec![]);
        let c = sim.task("c", cpu, 5, vec![a, b]);
        let ex = sim.run();
        assert_eq!(ex.start[c], 25);
        assert_eq!(ex.makespan, 30);
    }

    #[test]
    fn pipeline_overlap_reduces_makespan() {
        // Two-stage pipeline, 3 items: serial = 3*(10+10)=60,
        // pipelined = 10 + 3*10 = 40.
        let mut sim = Simulation::new();
        let s1 = sim.resource("stage1", 1);
        let s2 = sim.resource("stage2", 1);
        let mut prev = None;
        for i in 0..3 {
            let a = sim.task(format!("s1[{i}]"), s1, 10, vec![]);
            let deps = match prev {
                Some(p) => vec![a, p],
                None => vec![a],
            };
            prev = Some(sim.task(format!("s2[{i}]"), s2, 10, deps));
        }
        let ex = sim.run();
        assert_eq!(ex.makespan, 40);
    }

    #[test]
    fn zero_duration_tasks_are_fine() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 1);
        let a = sim.task("a", cpu, 0, vec![]);
        let b = sim.task("b", cpu, 7, vec![a]);
        let ex = sim.run();
        assert_eq!(ex.start[b], 0);
        assert_eq!(ex.makespan, 7);
    }

    #[test]
    #[should_panic(expected = "before dependents")]
    fn forward_dependency_rejected() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 1);
        sim.task("a", cpu, 1, vec![3]);
    }

    #[test]
    fn busy_accounting() {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 1);
        let gpu = sim.resource("gpu", 1);
        let a = sim.task("a", cpu, 30, vec![]);
        sim.task("b", gpu, 10, vec![a]);
        let ex = sim.run();
        assert_eq!(ex.busy[cpu], 30);
        assert_eq!(ex.busy[gpu], 10);
        assert_eq!(ex.makespan, 40);
        assert!((ex.utilization(&sim, gpu) - 0.25).abs() < 1e-9);
    }
}
