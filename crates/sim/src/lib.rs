//! # salient-sim
//!
//! A discrete-event simulator of the paper's testbed, used to reproduce the
//! *timing* experiments (Tables 1–3, Figures 1 and 4–6) at paper scale on
//! any host. The schedule shapes — what blocks what, what overlaps what —
//! are modeled exactly; stage costs come from a [`CostModel`] whose every
//! constant is anchored to a measurement published in the paper.
//!
//! # Example
//!
//! ```
//! use salient_graph::DatasetStats;
//! use salient_sim::{simulate_epoch, CostModel, EpochConfig, OptLevel};
//!
//! let model = CostModel::paper_hardware();
//! let base = simulate_epoch(
//!     &EpochConfig::paper_default(DatasetStats::products(), OptLevel::PygBaseline),
//!     &model,
//! );
//! let salient = simulate_epoch(
//!     &EpochConfig::paper_default(DatasetStats::products(), OptLevel::Pipelined),
//!     &model,
//! );
//! assert!(base.epoch_s / salient.epoch_s > 2.0);
//! ```

#![warn(missing_docs)]

mod cost;
mod des;
mod multi;
mod schedules;
mod timeline;
mod workload;

pub use cost::{CostModel, GnnArch, Impl};
pub use des::{Executed, ResourceId, ResourceSpec, SimTime, Simulation, TaskId, TaskSpec};
pub use multi::{scaling_sweep, simulate_multi_gpu, MultiGpuConfig, MultiGpuReport};
pub use schedules::{
    pipelined_shape_ns, simulate_epoch, simulate_epoch_detailed, simulate_inference_epoch,
    EpochConfig, EpochReport, OptLevel, PipelinedShapeNs,
};
pub use timeline::{render_text, to_csv};
pub use workload::{epoch_totals, expected_batch, expected_samples_per_node, BatchWorkload};
