//! Multi-GPU distributed data-parallel epoch simulation (Figure 5 / 6).
//!
//! SALIENT "straightforwardly applies the PyTorch DDP module and performs
//! distributed communications with the NCCL backend" (§6). Each rank runs
//! the full pipelined single-GPU schedule on its shard of the (batch-size ×
//! ranks) effective batch; after every iteration's backward pass a ring
//! all-reduce synchronizes gradients before the next iteration may start.

use crate::cost::CostModel;
use crate::des::{Simulation, TaskId};
use crate::schedules::{EpochConfig, OptLevel};
use crate::workload::expected_batch;

/// Multi-GPU run configuration.
#[derive(Clone, Debug)]
pub struct MultiGpuConfig {
    /// Per-rank configuration (level is forced to [`OptLevel::Pipelined`]
    /// for SALIENT runs; baseline multi-GPU uses the given level).
    pub base: EpochConfig,
    /// Number of GPUs (ranks). Batch size is per GPU, as in Table 5.
    pub ranks: usize,
    /// GPUs per machine (2 V100s in the paper's cluster); communication
    /// within one machine uses the PCIe fabric, across machines the NIC.
    pub gpus_per_machine: usize,
}

/// Result of a multi-GPU epoch simulation.
#[derive(Clone, Copy, Debug)]
pub struct MultiGpuReport {
    /// Virtual epoch seconds.
    pub epoch_s: f64,
    /// Mean GPU utilization across ranks.
    pub gpu_util: f64,
    /// Total all-reduce seconds per rank.
    pub allreduce_s: f64,
}

/// Simulates one distributed training epoch.
///
/// # Panics
///
/// Panics if `ranks == 0`.
pub fn simulate_multi_gpu(cfg: &MultiGpuConfig, model: &CostModel) -> MultiGpuReport {
    assert!(cfg.ranks > 0, "need at least one rank");
    let base = &cfg.base;
    let w = expected_batch(&base.stats, &base.fanouts, base.batch_size);
    let total_batches = base
        .stats
        .train_size
        .div_ceil((base.batch_size * cfg.ranks) as u64) as usize;

    // Per-batch stage durations follow the configured ladder level, exactly
    // as in the single-GPU schedule builder.
    let s = crate::schedules::stage_durations(base, model, &w);
    let pipelined = base.level == OptLevel::Pipelined;
    let transfer_ns = s.transfer;
    let train_ns = s.train;

    let grad_bytes = base.arch.param_bytes(base.stats.feat_dim, base.hidden, base.classes);
    // Within one machine gradients move over the PCIe fabric; across
    // machines over the shared NIC (halved per-GPU when both GPUs of a
    // machine communicate).
    let allreduce_ns = if cfg.ranks <= cfg.gpus_per_machine {
        let n = cfg.ranks as f64;
        if cfg.ranks == 1 {
            0.0
        } else {
            2.0 * (n - 1.0) / n * grad_bytes / model.dma_bw * 1e9
        }
    } else {
        let shared = model.nic_bw / cfg.gpus_per_machine as f64;
        let n = cfg.ranks as f64;
        2.0 * (n - 1.0) / n * grad_bytes / shared * 1e9
            + 2.0 * (n - 1.0) * model.allreduce_latency_ns
    };

    let mut sim = Simulation::new();
    let mut workers = Vec::with_capacity(cfg.ranks);
    let mut mains = Vec::with_capacity(cfg.ranks);
    let mut dma = Vec::with_capacity(cfg.ranks);
    let mut gpu = Vec::with_capacity(cfg.ranks);
    let mut nic = Vec::with_capacity(cfg.ranks);
    let worker_pool = if pipelined || base.level == OptLevel::SharedMemPrep {
        base.cpu_workers
    } else {
        s.sample_workers
    };
    for r in 0..cfg.ranks {
        workers.push(sim.resource(format!("workers[{r}]"), worker_pool));
        mains.push(sim.resource(format!("main[{r}]"), 1));
        dma.push(sim.resource(format!("dma[{r}]"), 1));
        gpu.push(sim.resource(format!("gpu[{r}]"), 1));
        nic.push(sim.resource(format!("nic[{r}]"), 1));
    }

    let prefetch_depth = 2 * base.cpu_workers;
    let mut prev_allreduce: Vec<Option<TaskId>> = vec![None; cfg.ranks];
    let mut train_hist: Vec<Vec<TaskId>> = vec![Vec::new(); cfg.ranks];
    for b in 0..total_batches {
        let mut trains = Vec::with_capacity(cfg.ranks);
        for r in 0..cfg.ranks {
            let mut prep_deps = Vec::new();
            if b >= prefetch_depth {
                prep_deps.push(train_hist[r][b - prefetch_depth]);
            }
            let train = if pipelined {
                // SALIENT: prep → transfer (own stream) → train; nothing
                // blocks the main loop.
                let prep =
                    sim.task(format!("prep[{b},{r}]"), workers[r], s.prep_worker as u64, prep_deps);
                let transfer = sim.task(
                    format!("transfer[{b},{r}]"),
                    dma[r],
                    transfer_ns as u64,
                    vec![prep],
                );
                let mut train_deps = vec![transfer];
                if let Some(ar) = prev_allreduce[r] {
                    train_deps.push(ar);
                }
                sim.task(format!("train[{b},{r}]"), gpu[r], train_ns as u64, train_deps)
            } else {
                // Baseline ladder levels: per-rank main thread serializes
                // slice → transfer and blocks on training, as in the
                // single-GPU schedules.
                let sample_ns = match base.level {
                    // Shared-memory prep: workers sample *and* slice.
                    OptLevel::SharedMemPrep => s.prep_worker,
                    _ => s.sample_worker,
                };
                let sample = sim.task(
                    format!("sample[{b},{r}]"),
                    workers[r],
                    sample_ns as u64,
                    prep_deps,
                );
                let mut slice_deps = vec![sample];
                if let Some(&prev) = train_hist[r].last() {
                    slice_deps.push(prev);
                }
                let (slice_ns, slice_label) = match base.level {
                    OptLevel::SharedMemPrep => (0.0, "noop"),
                    _ => (s.slice_main, "slice"),
                };
                let slice = sim.task(
                    format!("{slice_label}[{b},{r}]"),
                    mains[r],
                    slice_ns as u64,
                    slice_deps,
                );
                let transfer = sim.task(
                    format!("transfer[{b},{r}]"),
                    mains[r],
                    transfer_ns as u64,
                    vec![slice],
                );
                let mut train_deps = vec![transfer];
                if let Some(ar) = prev_allreduce[r] {
                    train_deps.push(ar);
                }
                sim.task(format!("train[{b},{r}]"), gpu[r], train_ns as u64, train_deps)
            };
            trains.push(train);
            train_hist[r].push(train);
        }
        for r in 0..cfg.ranks {
            // Ring all-reduce starts once every rank finished backward.
            let ar = sim.task(
                format!("allreduce[{b},{r}]"),
                nic[r],
                allreduce_ns as u64,
                trains.clone(),
            );
            prev_allreduce[r] = Some(ar);
        }
    }

    let ex = sim.run();
    let mut util = 0.0;
    for r in 0..cfg.ranks {
        util += ex.utilization(&sim, gpu[r]);
    }
    MultiGpuReport {
        epoch_s: ex.makespan as f64 / 1e9,
        gpu_util: util / cfg.ranks as f64,
        allreduce_s: total_batches as f64 * allreduce_ns / 1e9,
    }
}

/// Sweeps rank counts (Figure 5) and returns `(ranks, epoch_s)` pairs.
pub fn scaling_sweep(
    base: &EpochConfig,
    ranks: &[usize],
    model: &CostModel,
) -> Vec<(usize, f64)> {
    ranks
        .iter()
        .map(|&r| {
            let cfg = MultiGpuConfig {
                base: base.clone(),
                ranks: r,
                gpus_per_machine: 2,
            };
            (r, simulate_multi_gpu(&cfg, model).epoch_s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use salient_graph::DatasetStats;

    fn base(stats: DatasetStats) -> EpochConfig {
        EpochConfig::paper_default(stats, OptLevel::Pipelined)
    }

    #[test]
    fn single_rank_matches_single_gpu_schedule() {
        let cfg = MultiGpuConfig {
            base: base(DatasetStats::products()),
            ranks: 1,
            gpus_per_machine: 2,
        };
        let m = CostModel::paper_hardware();
        let multi = simulate_multi_gpu(&cfg, &m).epoch_s;
        let single = crate::schedules::simulate_epoch(&cfg.base, &m).epoch_s;
        let ratio = multi / single;
        assert!(
            (0.9..1.1).contains(&ratio),
            "1-rank multi ({multi:.2}) vs single ({single:.2})"
        );
    }

    #[test]
    fn papers_16_gpu_epoch_near_2s() {
        // §1: "training takes 2.0 seconds per epoch" with 16 GPUs.
        let cfg = MultiGpuConfig {
            base: base(DatasetStats::papers()),
            ranks: 16,
            gpus_per_machine: 2,
        };
        let t = simulate_multi_gpu(&cfg, &CostModel::paper_hardware()).epoch_s;
        assert!((1.0..3.5).contains(&t), "papers 16-GPU epoch ≈2.0 s, got {t:.2}");
    }

    #[test]
    fn figure5_speedup_bands() {
        // "With 16 GPUs, the speedup ranges from 4.45× to 8.05×", larger
        // datasets scaling better.
        let m = CostModel::paper_hardware();
        let mut speedups = Vec::new();
        for stats in DatasetStats::all() {
            let sweep = scaling_sweep(&base(stats.clone()), &[1, 16], &m);
            let speedup = sweep[0].1 / sweep[1].1;
            assert!(
                (3.0..12.0).contains(&speedup),
                "{}: 16-GPU speedup {speedup:.2} outside plausible band",
                stats.name
            );
            speedups.push((stats.name, speedup));
        }
        let arxiv = speedups[0].1;
        let papers = speedups[2].1;
        assert!(
            papers > arxiv,
            "bigger graphs amortize startup latency better: papers {papers:.2} vs arxiv {arxiv:.2}"
        );
    }

    #[test]
    fn scaling_is_monotone_in_ranks() {
        let m = CostModel::paper_hardware();
        let sweep = scaling_sweep(&base(DatasetStats::papers()), &[1, 2, 4, 8, 16], &m);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 < pair[0].1 * 1.02,
                "epoch time should not regress with more GPUs: {:?}",
                sweep
            );
        }
    }
}
