//! Epoch schedules: the Table-3 optimization ladder compiled to DES task
//! graphs.
//!
//! Four cumulative configurations are modeled, exactly as the paper applies
//! them (§4.4, Table 3):
//!
//! 1. [`OptLevel::PygBaseline`] — multiprocessing sampling workers; the main
//!    thread serially slices (OpenMP), transfers (with per-sparse-tensor
//!    assertion round trips), and blocks on GPU training.
//! 2. [`OptLevel::FastSampling`] — same schedule, SALIENT's 2.5× sampler.
//! 3. [`OptLevel::SharedMemPrep`] — batch-prep threads sample *and* slice
//!    end-to-end into pinned memory; the main thread only transfers and
//!    launches training.
//! 4. [`OptLevel::Pipelined`] — transfers move to a separate stream (DMA
//!    resource), assertions are skipped, and GPU compute overlaps transfer.

use crate::cost::{CostModel, GnnArch, Impl};
use crate::des::{Executed, ResourceId, Simulation, TaskId};
use crate::workload::{expected_batch, BatchWorkload};
use salient_graph::DatasetStats;
use salient_pipeline::shape::{self, ResourceKind, TRANSFER_QUEUE_CAP};

/// Cumulative optimization level (each includes the previous).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Tuned PyG baseline ("None (PyG)" in Table 3).
    PygBaseline,
    /// + fast neighborhood sampling.
    FastSampling,
    /// + shared-memory batch preparation.
    SharedMemPrep,
    /// + pipelined data transfers (full SALIENT).
    Pipelined,
}

impl OptLevel {
    /// The ladder in Table-3 order.
    pub fn ladder() -> [OptLevel; 4] {
        [
            OptLevel::PygBaseline,
            OptLevel::FastSampling,
            OptLevel::SharedMemPrep,
            OptLevel::Pipelined,
        ]
    }

    /// Row label used by the bench harness.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::PygBaseline => "None (PyG)",
            OptLevel::FastSampling => "+ Fast sampling",
            OptLevel::SharedMemPrep => "+ Shared-memory batch prep.",
            OptLevel::Pipelined => "+ Pipelined data transfers",
        }
    }
}

/// Configuration of one simulated training epoch on one GPU.
#[derive(Clone, Debug)]
pub struct EpochConfig {
    /// Dataset statistics (paper scale).
    pub stats: DatasetStats,
    /// Sampling fanouts, PyG order.
    pub fanouts: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// GNN architecture.
    pub arch: GnnArch,
    /// Hidden dimensionality.
    pub hidden: u32,
    /// Output classes.
    pub classes: u32,
    /// CPU batch-preparation workers per GPU.
    pub cpu_workers: usize,
    /// Optimization ladder level.
    pub level: OptLevel,
}

impl EpochConfig {
    /// The paper's default single-GPU setup for a dataset (Table 5 row).
    pub fn paper_default(stats: DatasetStats, level: OptLevel) -> Self {
        EpochConfig {
            stats,
            fanouts: vec![15, 10, 5],
            batch_size: 1024,
            arch: GnnArch::Sage,
            hidden: 256,
            classes: 172,
            cpu_workers: 20,
            level,
        }
    }
}

/// Blocking-time breakdown of a simulated epoch (the Table-1 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochReport {
    /// Total epoch wall-clock (seconds, virtual).
    pub epoch_s: f64,
    /// Main-loop blocking time attributed to batch preparation.
    pub prep_s: f64,
    /// Blocking time attributed to CPU→GPU transfer.
    pub transfer_s: f64,
    /// Blocking time attributed to GPU training.
    pub train_s: f64,
    /// GPU busy fraction over the epoch.
    pub gpu_util: f64,
}

impl EpochReport {
    /// Percent of epoch attributed to a stage.
    pub fn pct(&self, stage_s: f64) -> f64 {
        if self.epoch_s == 0.0 {
            0.0
        } else {
            100.0 * stage_s / self.epoch_s
        }
    }
}

/// Stage durations (ns) for one batch under a ladder level.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StageNs {
    pub(crate) sample_worker: f64,
    pub(crate) sample_workers: usize,
    pub(crate) slice_main: f64,
    pub(crate) prep_worker: f64,
    pub(crate) transfer: f64,
    pub(crate) train: f64,
}

pub(crate) fn stage_durations(cfg: &EpochConfig, m: &CostModel, w: &BatchWorkload) -> StageNs {
    let p = cfg.cpu_workers;
    let (sampler, slicer) = match cfg.level {
        OptLevel::PygBaseline => (Impl::Pyg, Impl::Pyg),
        _ => (Impl::Salient, Impl::Salient),
    };
    // Per-batch duration on one worker inflates with P active workers such
    // that aggregate throughput follows the calibrated Amdahl curve. The
    // multiprocessing baseline runs fewer sampling workers than hardware
    // cores (the main process's OpenMP slicing needs cores too).
    let (sample_serial, sample_workers) = match cfg.level {
        OptLevel::PygBaseline | OptLevel::FastSampling => {
            (m.sample_serial_frac_pyg, m.pyg_dataloader_workers.min(p))
        }
        _ => (m.sample_serial_frac_salient, p),
    };
    let contention = |serial: f64, workers: usize| serial * workers as f64 + (1.0 - serial);
    let sample_t1 = m.sample_batch_ns(sampler, w);
    let sample_worker = sample_t1 * contention(sample_serial, sample_workers);

    // Baseline slicing runs on the main thread with OpenMP across all
    // cores, after receiving the sampled MFG from a worker process over
    // IPC. The calibrated PyG slice bandwidth and serial fraction already
    // include the shared-memory slicing overheads (fitted to Table 2).
    let slice_t1 = m.slice_batch_ns(slicer, w);
    let slice_main = CostModel::parallel_time(slice_t1, p, m.slice_serial_frac_pyg)
        + m.ipc_receive_ns(w);

    // Shared-memory prep: sample + serial slice end-to-end on a worker,
    // zero-copy into pinned memory (no IPC term).
    let prep_worker = sample_t1 * contention(m.sample_serial_frac_salient, p)
        + m.slice_batch_ns(Impl::Salient, w) * contention(m.slice_serial_frac_salient, p)
        + m.salient_batch_overhead_ns;

    let transfer = m.transfer_batch_ns(w, cfg.level == OptLevel::Pipelined);
    let train = m.gpu_train_batch_ns(cfg.arch, w, cfg.hidden, cfg.classes);
    StageNs {
        sample_worker,
        sample_workers,
        slice_main,
        prep_worker,
        transfer,
        train,
    }
}

/// The Pipelined schedule's per-batch stage durations and shape constants,
/// exported for cross-validation: the trace-side what-if projector
/// (`salient_trace::critical_path::Replay`) builds the same batch-major
/// greedy schedule from these numbers, and CI gates its makespan against
/// the DES result from [`simulate_epoch_detailed`].
#[derive(Clone, Copy, Debug)]
pub struct PipelinedShapeNs {
    /// Per-batch end-to-end prep duration on one worker (ns).
    pub prep_ns: u64,
    /// Per-batch transfer duration on the DMA stream (ns).
    pub transfer_ns: u64,
    /// Per-batch GPU train duration (ns).
    pub train_ns: u64,
    /// Prep worker-pool width.
    pub workers: usize,
    /// Batches per epoch.
    pub batches: usize,
    /// Bounded transfer→train queue capacity (see
    /// [`salient_pipeline::shape::TRANSFER_QUEUE_CAP`]).
    pub queue_cap: usize,
    /// Source prefetch depth: how many batches may enter prep before the
    /// first train completion gates further sourcing.
    pub prefetch: usize,
}

/// Computes the [`PipelinedShapeNs`] for `cfg` under `model` — the exact
/// constants [`simulate_epoch_detailed`] uses for [`OptLevel::Pipelined`].
pub fn pipelined_shape_ns(cfg: &EpochConfig, model: &CostModel) -> PipelinedShapeNs {
    let w = expected_batch(&cfg.stats, &cfg.fanouts, cfg.batch_size);
    let s = stage_durations(cfg, model, &w);
    PipelinedShapeNs {
        prep_ns: s.prep_worker as u64,
        transfer_ns: s.transfer as u64,
        train_ns: s.train as u64,
        workers: cfg.cpu_workers,
        batches: cfg.stats.batches_per_epoch(cfg.batch_size),
        queue_cap: TRANSFER_QUEUE_CAP,
        prefetch: 2 * cfg.cpu_workers,
    }
}

/// Builds and runs the DES for one epoch, returning the report plus the raw
/// execution (for timeline export).
pub fn simulate_epoch_detailed(
    cfg: &EpochConfig,
    model: &CostModel,
) -> (EpochReport, Simulation, Executed) {
    let w = expected_batch(&cfg.stats, &cfg.fanouts, cfg.batch_size);
    let batches = cfg.stats.batches_per_epoch(cfg.batch_size);
    let s = stage_durations(cfg, model, &w);
    let mut sim = Simulation::new();
    let sampler_pool = match cfg.level {
        OptLevel::PygBaseline | OptLevel::FastSampling => s.sample_workers,
        _ => cfg.cpu_workers,
    };
    let workers = sim.resource("cpu-workers", sampler_pool);
    let main = sim.resource("main", 1);
    let dma = sim.resource("dma", 1);
    let gpu = sim.resource("gpu", 1);

    let mut train_tasks: Vec<TaskId> = Vec::with_capacity(batches);
    let prefetch_depth = 2 * cfg.cpu_workers;

    match cfg.level {
        OptLevel::PygBaseline | OptLevel::FastSampling => {
            // Workers sample ahead (bounded prefetch); main thread slices,
            // transfers, and blocks on training.
            for b in 0..batches {
                let mut sample_deps = Vec::new();
                if b >= prefetch_depth {
                    sample_deps.push(train_tasks[b - prefetch_depth]);
                }
                let sample = sim.task(
                    format!("sample[{b}]"),
                    workers,
                    s.sample_worker as u64,
                    sample_deps,
                );
                let mut slice_deps = vec![sample];
                if let Some(&prev) = train_tasks.last() {
                    slice_deps.push(prev); // main thread is busy until train returns
                }
                let slice = sim.task(format!("slice[{b}]"), main, s.slice_main as u64, slice_deps);
                let transfer = sim.task(format!("transfer[{b}]"), main, s.transfer as u64, vec![slice]);
                let train = sim.task(format!("train[{b}]"), gpu, s.train as u64, vec![transfer]);
                train_tasks.push(train);
            }
        }
        OptLevel::SharedMemPrep => {
            // Workers prepare end-to-end; main thread transfers (still
            // blocking, assertions still on) then blocks on training.
            for b in 0..batches {
                let mut prep_deps = Vec::new();
                if b >= prefetch_depth {
                    prep_deps.push(train_tasks[b - prefetch_depth]);
                }
                let prep = sim.task(format!("prep[{b}]"), workers, s.prep_worker as u64, prep_deps);
                let mut tr_deps = vec![prep];
                if let Some(&prev) = train_tasks.last() {
                    tr_deps.push(prev);
                }
                let transfer = sim.task(format!("transfer[{b}]"), main, s.transfer as u64, tr_deps);
                let train = sim.task(format!("train[{b}]"), gpu, s.train as u64, vec![transfer]);
                train_tasks.push(train);
            }
        }
        OptLevel::Pipelined => {
            // Full SALIENT: prep on workers, transfer on its own stream
            // (DMA), GPU compute overlaps; nothing blocks the main loop.
            // The schedule is compiled from the canonical stage shape shared
            // with the real executor (`salient_pipeline::shape::train`), so
            // stage names, resource classes, and the double-buffer bound
            // cannot silently drift between the two planes.
            let [prep_sh, transfer_sh, train_sh] = shape::train();
            let res = |kind: ResourceKind| -> ResourceId {
                match kind {
                    ResourceKind::Workers => workers,
                    ResourceKind::Dma => dma,
                    ResourceKind::Gpu => gpu,
                }
            };
            for b in 0..batches {
                let mut prep_deps = Vec::new();
                if b >= prefetch_depth {
                    prep_deps.push(train_tasks[b - prefetch_depth]);
                }
                let prep = sim.task(
                    format!("{}[{b}]", prep_sh.sim_task),
                    res(prep_sh.resource),
                    s.prep_worker as u64,
                    prep_deps,
                );
                // The bounded queue feeding compute: the transfer stage can
                // run at most TRANSFER_QUEUE_CAP + 1 batches ahead of the
                // consumer (cap queued plus one parked in send), mirroring
                // the real executor's backpressure.
                let mut tr_deps = vec![prep];
                if b > TRANSFER_QUEUE_CAP {
                    tr_deps.push(train_tasks[b - TRANSFER_QUEUE_CAP - 1]);
                }
                let transfer = sim.task(
                    format!("{}[{b}]", transfer_sh.sim_task),
                    res(transfer_sh.resource),
                    s.transfer as u64,
                    tr_deps,
                );
                let train = sim.task(
                    format!("{}[{b}]", train_sh.sim_task),
                    res(train_sh.resource),
                    s.train as u64,
                    vec![transfer],
                );
                train_tasks.push(train);
            }
        }
    }

    let ex = sim.run();
    let report = build_report(cfg, &sim, &ex, &s, &train_tasks);
    (report, sim, ex)
}

fn build_report(
    cfg: &EpochConfig,
    sim: &Simulation,
    ex: &Executed,
    s: &StageNs,
    train_tasks: &[TaskId],
) -> EpochReport {
    let epoch_s = ex.makespan as f64 / 1e9;
    let batches = train_tasks.len() as f64;
    let train_s = batches * s.train / 1e9;
    let (prep_s, transfer_s) = match cfg.level {
        OptLevel::PygBaseline | OptLevel::FastSampling | OptLevel::SharedMemPrep => {
            // Blocking accounting from the main loop's perspective: whatever
            // is not transfer or training is preparation (slice + waiting on
            // samplers), as in Table 1.
            let transfer_s = batches * s.transfer / 1e9;
            let prep_s = (epoch_s - transfer_s - train_s).max(0.0);
            (prep_s, transfer_s)
        }
        OptLevel::Pipelined => {
            // Nothing blocks except residual non-overlap.
            let residual = (epoch_s - train_s).max(0.0);
            (residual, 0.0)
        }
    };
    // GPU resource is registered last (index 3).
    let gpu_util = ex.utilization(sim, 3);
    EpochReport {
        epoch_s,
        prep_s,
        transfer_s,
        train_s,
        gpu_util,
    }
}


/// Simulates a pipelined *inference* pass (forward only) over `num_nodes`
/// evaluation nodes spread across `ranks` GPUs — the paper's "inference
/// with fanout (20, 20, 20) takes 2.4 seconds" workload.
pub fn simulate_inference_epoch(
    cfg: &EpochConfig,
    model: &CostModel,
    num_nodes: u64,
    ranks: usize,
) -> f64 {
    let w = expected_batch(&cfg.stats, &cfg.fanouts, cfg.batch_size);
    let batches = num_nodes.div_ceil((cfg.batch_size * ranks.max(1)) as u64) as usize;
    let contention = |serial: f64| serial * cfg.cpu_workers as f64 + (1.0 - serial);
    let prep_ns = model.sample_batch_ns(Impl::Salient, &w)
        * contention(model.sample_serial_frac_salient)
        + model.slice_batch_ns(Impl::Salient, &w) * contention(model.slice_serial_frac_salient)
        + model.salient_batch_overhead_ns;
    let transfer_ns = model.transfer_batch_ns(&w, true);
    let infer_ns = model.gpu_infer_batch_ns(cfg.arch, &w, cfg.hidden, cfg.classes);

    let mut sim = Simulation::new();
    let workers = sim.resource("workers", cfg.cpu_workers);
    let dma = sim.resource("dma", 1);
    let gpu = sim.resource("gpu", 1);
    let mut infer_tasks: Vec<TaskId> = Vec::with_capacity(batches);
    let prefetch = 2 * cfg.cpu_workers;
    let [prep_sh, transfer_sh, _] = shape::train();
    for b in 0..batches {
        let mut deps = Vec::new();
        if b >= prefetch {
            deps.push(infer_tasks[b - prefetch]);
        }
        let prep = sim.task(format!("{}[{b}]", prep_sh.sim_task), workers, prep_ns as u64, deps);
        let mut tr_deps = vec![prep];
        if b > TRANSFER_QUEUE_CAP {
            tr_deps.push(infer_tasks[b - TRANSFER_QUEUE_CAP - 1]);
        }
        let transfer = sim.task(
            format!("{}[{b}]", transfer_sh.sim_task),
            dma,
            transfer_ns as u64,
            tr_deps,
        );
        let infer = sim.task(format!("infer[{b}]"), gpu, infer_ns as u64, vec![transfer]);
        infer_tasks.push(infer);
    }
    sim.run().makespan as f64 / 1e9
}

/// Convenience wrapper returning just the report.
pub fn simulate_epoch(cfg: &EpochConfig, model: &CostModel) -> EpochReport {
    simulate_epoch_detailed(cfg, model).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(stats: DatasetStats, level: OptLevel) -> EpochReport {
        simulate_epoch(&EpochConfig::paper_default(stats, level), &CostModel::paper_hardware())
    }

    #[test]
    fn table1_baseline_epoch_times_in_range() {
        // Table 1: arxiv 1.7 s, products 8.6 s, papers 50.4 s.
        let arxiv = report(DatasetStats::arxiv(), OptLevel::PygBaseline).epoch_s;
        let products = report(DatasetStats::products(), OptLevel::PygBaseline).epoch_s;
        let papers = report(DatasetStats::papers(), OptLevel::PygBaseline).epoch_s;
        assert!((0.6..3.4).contains(&arxiv), "arxiv baseline ≈1.7 s, got {arxiv:.2}");
        assert!((5.0..14.0).contains(&products), "products baseline ≈8.6 s, got {products:.2}");
        assert!((33.0..75.0).contains(&papers), "papers baseline ≈50.4 s, got {papers:.1}");
    }

    #[test]
    fn table1_gpu_share_is_minority() {
        // "Across all three data sets, only about 28% of the time is spent
        // on GPU training."
        for stats in DatasetStats::all() {
            let r = report(stats.clone(), OptLevel::PygBaseline);
            let pct = r.pct(r.train_s);
            assert!(
                (15.0..45.0).contains(&pct),
                "{}: GPU share ≈28 %, got {pct:.0} %",
                stats.name
            );
        }
    }

    #[test]
    fn table3_ladder_is_monotone() {
        for stats in DatasetStats::all() {
            let mut prev = f64::INFINITY;
            for level in OptLevel::ladder() {
                let t = report(stats.clone(), level).epoch_s;
                assert!(
                    t <= prev * 1.02,
                    "{}: ladder level {level:?} regressed {t:.2} > {prev:.2}",
                    stats.name
                );
                prev = t;
            }
        }
    }

    #[test]
    fn figure4_speedup_is_about_3x() {
        for stats in DatasetStats::all() {
            let base = report(stats.clone(), OptLevel::PygBaseline).epoch_s;
            let salient = report(stats.clone(), OptLevel::Pipelined).epoch_s;
            let speedup = base / salient;
            assert!(
                (2.0..4.5).contains(&speedup),
                "{}: single-GPU speedup ≈3–3.4×, got {speedup:.2}",
                stats.name
            );
        }
    }

    #[test]
    fn pipelined_epoch_close_to_bottleneck_stage() {
        // §8: "end-to-end training time per epoch is nearly equal to the
        // time for the slowest of these components in isolation."
        let cfg = EpochConfig::paper_default(DatasetStats::papers(), OptLevel::Pipelined);
        let m = CostModel::paper_hardware();
        let (r, sim, ex) = simulate_epoch_detailed(&cfg, &m);
        let _ = (sim, ex);
        // papers is prep-bound at 20 workers; epoch ≤ 1.15 × bottleneck.
        let w = expected_batch(&cfg.stats, &cfg.fanouts, cfg.batch_size);
        let s = stage_durations(&cfg, &m, &w);
        let batches = cfg.stats.batches_per_epoch(cfg.batch_size) as f64;
        let prep_capacity = batches * s.prep_worker / cfg.cpu_workers as f64 / 1e9;
        let gpu_total = batches * s.train / 1e9;
        let dma_total = batches * s.transfer / 1e9;
        let bottleneck = prep_capacity.max(gpu_total).max(dma_total);
        assert!(
            r.epoch_s <= bottleneck * 1.15 + 0.2,
            "epoch {:.2} should track bottleneck {:.2}",
            r.epoch_s,
            bottleneck
        );
    }

    #[test]
    fn papers_pipelined_epoch_matches_table3() {
        // Table 3: papers with all optimizations = 16.5 s on one GPU.
        let t = report(DatasetStats::papers(), OptLevel::Pipelined).epoch_s;
        assert!((11.0..23.0).contains(&t), "papers SALIENT 1-GPU ≈16.5 s, got {t:.1}");
    }


    #[test]
    fn papers_test_inference_near_paper_number() {
        // Abstract: "inference with fanout (20, 20, 20) takes 2.4 seconds"
        // over the 214K-node test set on 16 GPUs.
        let cfg = EpochConfig {
            fanouts: vec![20, 20, 20],
            ..EpochConfig::paper_default(DatasetStats::papers(), OptLevel::Pipelined)
        };
        let t = simulate_inference_epoch(&cfg, &CostModel::paper_hardware(), 214_338, 16);
        assert!((0.6..5.0).contains(&t), "papers inference ≈2.4 s, got {t:.2}");
    }

    #[test]
    fn inference_is_cheaper_than_training_per_node() {
        let m = CostModel::paper_hardware();
        let cfg = EpochConfig::paper_default(DatasetStats::products(), OptLevel::Pipelined);
        let w = expected_batch(&cfg.stats, &cfg.fanouts, cfg.batch_size);
        let fwd = m.gpu_infer_batch_ns(cfg.arch, &w, cfg.hidden, cfg.classes);
        let train = m.gpu_train_batch_ns(cfg.arch, &w, cfg.hidden, cfg.classes);
        assert!(fwd < train, "forward-only must be cheaper: {fwd} vs {train}");
    }

    #[test]
    fn gpu_utilization_improves_along_ladder() {
        let base = report(DatasetStats::products(), OptLevel::PygBaseline).gpu_util;
        let salient = report(DatasetStats::products(), OptLevel::Pipelined).gpu_util;
        assert!(
            salient > base + 0.15,
            "pipelining should lift GPU utilization: {base:.2} -> {salient:.2}"
        );
    }
}
