//! Timeline rendering (Figure 1): an ASCII Gantt chart of a simulated
//! epoch's first milliseconds, one lane per resource server.

use crate::des::{Executed, Simulation};
use std::fmt::Write as _;

/// Renders the window `[0, horizon_ns)` of an executed schedule as an ASCII
/// Gantt chart with `width` columns.
///
/// Each resource server gets one lane; a task paints its lane with the first
/// letter of its label (`s`ample, `p`rep, `t`ransfer/`t`rain are
/// disambiguated by resource name).
pub fn render_text(sim: &Simulation, ex: &Executed, horizon_ns: u64, width: usize) -> String {
    let horizon = horizon_ns.max(1);
    let mut lanes: Vec<(String, Vec<char>)> = Vec::new();
    let mut lane_index: Vec<(usize, usize)> = Vec::new(); // (resource, server) -> lane
    for (rid, r) in sim.resources().iter().enumerate() {
        for s in 0..r.servers {
            lane_index.push((rid, s));
            let name = if r.servers == 1 {
                r.name.clone()
            } else {
                format!("{}.{s}", r.name)
            };
            lanes.push((name, vec!['.'; width]));
        }
    }
    let lane_of = |rid: usize, srv: usize| -> usize {
        lane_index
            .iter()
            .position(|&(r, s)| r == rid && s == srv)
            .expect("lane exists")
    };
    for (tid, task) in sim.tasks().iter().enumerate() {
        let (s, e) = (ex.start[tid], ex.end[tid]);
        if s >= horizon {
            continue;
        }
        let c = task
            .label
            .chars()
            .next()
            .unwrap_or('#')
            .to_ascii_uppercase();
        let lane = lane_of(task.resource, ex.server[tid]);
        let from = (s as u128 * width as u128 / horizon as u128) as usize;
        let to = ((e.min(horizon) as u128 * width as u128).div_ceil(horizon as u128) as usize)
            .min(width);
        for cell in &mut lanes[lane].1[from..to.max(from + 1).min(width)] {
            *cell = c;
        }
    }
    let label_w = lanes.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:label_w$} |{}| 0 .. {:.2} ms",
        "resource",
        "-".repeat(width),
        horizon as f64 / 1e6
    );
    for (name, cells) in &lanes {
        let row: String = cells.iter().collect();
        let _ = writeln!(out, "{name:label_w$} |{row}|");
    }
    out
}

/// Exports the executed schedule as CSV (`task,label,resource,server,start_ns,end_ns`).
pub fn to_csv(sim: &Simulation, ex: &Executed) -> String {
    let mut out = String::from("task,label,resource,server,start_ns,end_ns\n");
    for (tid, task) in sim.tasks().iter().enumerate() {
        let _ = writeln!(
            out,
            "{tid},{},{},{},{},{}",
            task.label,
            sim.resources()[task.resource].name,
            ex.server[tid],
            ex.start[tid],
            ex.end[tid]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Simulation;

    fn tiny() -> (Simulation, Executed) {
        let mut sim = Simulation::new();
        let cpu = sim.resource("cpu", 2);
        let gpu = sim.resource("gpu", 1);
        let a = sim.task("alpha", cpu, 100, vec![]);
        sim.task("beta", cpu, 100, vec![]);
        sim.task("gamma", gpu, 50, vec![a]);
        let ex = sim.run();
        (sim, ex)
    }

    #[test]
    fn gantt_has_one_lane_per_server() {
        let (sim, ex) = tiny();
        let text = render_text(&sim, &ex, 200, 40);
        let lanes: Vec<&str> = text.lines().collect();
        // Header + cpu.0 + cpu.1 + gpu.
        assert_eq!(lanes.len(), 4);
        assert!(lanes[1].starts_with("cpu.0"));
        assert!(lanes[3].starts_with("gpu"));
        assert!(text.contains('A'));
        assert!(text.contains('G'));
    }

    #[test]
    fn csv_lists_every_task() {
        let (sim, ex) = tiny();
        let csv = to_csv(&sim, &ex);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(1).unwrap().contains("alpha"));
    }

    #[test]
    fn horizon_clips_late_tasks() {
        let (sim, ex) = tiny();
        // Horizon of 10 ns: gamma (starts at 100) must not appear.
        let text = render_text(&sim, &ex, 10, 20);
        assert!(!text.contains('G'));
    }
}
