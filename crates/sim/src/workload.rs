//! Analytic workload model: expected MFG sizes per mini-batch.
//!
//! The simulator needs, for each dataset × fanout configuration, the
//! expected number of sampled nodes and edges per batch — the quantities
//! that drive sampling cost, slicing bytes, and transfer bytes.
//!
//! Model: hop-by-hop expansion with two corrections,
//!
//! 1. **degree truncation** — a node of degree `deg` yields
//!    `min(fanout, deg)` samples; under the heavy-tailed degree mix we use
//!    the smooth surrogate `E[min(deg, d)] ≈ avg_deg · (1 − exp(−d/avg_deg))`,
//!    which is exact in both limits (`d → ∞` and `d ≪ avg_deg`);
//! 2. **dedup saturation** — sampling `s` edges whose endpoints fall in an
//!    effective reachable population `R = reach · |V|` discovers
//!    `(R − seen) · (1 − exp(−s/R))` *new* nodes.
//!
//! Calibration check (documented in tests): for ogbn-papers100M with batch
//! 1024 and fanout (15, 10, 5) the model predicts ≈ 0.7 M nodes per batch ≈
//! 170 MB at 128 half-precision features — matching the paper's measured
//! 164 GB transferred per 1179-batch epoch (§3.3) to within ~25 %.

use salient_graph::DatasetStats;

/// Fraction of the graph effectively reachable by multi-hop expansion from a
/// random batch. Cross-validation against the real sampler on materialized
/// synthetic graphs (tests/sim_vs_real.rs) showed no locality discount is
/// warranted: uniform batches reach the whole graph.
const REACH_FRACTION: f64 = 1.0;

/// Expected per-batch MFG statistics.
#[derive(Clone, Debug)]
pub struct BatchWorkload {
    /// Mini-batch (output) size.
    pub batch_size: usize,
    /// Expected sampled nodes (feature rows to slice and transfer).
    pub mfg_nodes: f64,
    /// Expected sampled edges across all hops.
    pub mfg_edges: f64,
    /// Feature dimensionality.
    pub feat_dim: u32,
    /// Cumulative frontier size after each hop, batch outward:
    /// `hop_nodes[0] = batch_size`, `hop_nodes[k]` = nodes known after hop
    /// `k`. Length = fanouts + 1.
    pub hop_nodes: Vec<f64>,
    /// Edges sampled at each hop, batch outward. Length = fanouts.
    pub hop_edges: Vec<f64>,
}

impl BatchWorkload {
    /// Bytes of half-precision features sliced/transferred per batch.
    pub fn feature_bytes(&self) -> f64 {
        self.mfg_nodes * self.feat_dim as f64 * 2.0
    }

    /// Bytes of MFG structure (edge lists as two `u32`s plus node ids)
    /// transferred per batch.
    pub fn structure_bytes(&self) -> f64 {
        self.mfg_edges * 8.0 + self.mfg_nodes * 4.0
    }

    /// Total bytes per batch crossing the CPU→GPU bus (features + labels +
    /// structure).
    pub fn transfer_bytes(&self) -> f64 {
        self.feature_bytes() + self.batch_size as f64 * 4.0 + self.structure_bytes()
    }
}

/// Expected number of samples drawn per frontier node at fanout `d` given
/// the dataset's average degree.
pub fn expected_samples_per_node(avg_degree: f64, fanout: usize) -> f64 {
    avg_degree * (1.0 - (-(fanout as f64) / avg_degree).exp())
}

/// Computes the expected per-batch workload for a dataset at the given
/// fanouts (PyG order) and batch size.
///
/// # Panics
///
/// Panics if `fanouts` is empty or `batch_size == 0`.
pub fn expected_batch(stats: &DatasetStats, fanouts: &[usize], batch_size: usize) -> BatchWorkload {
    assert!(!fanouts.is_empty(), "need at least one fanout");
    assert!(batch_size > 0, "batch size must be positive");
    let reachable = REACH_FRACTION * stats.num_nodes as f64;
    let mut frontier = batch_size as f64;
    let mut seen = frontier;
    let mut edges = 0.0;
    let mut hop_nodes = vec![frontier];
    let mut hop_edges = Vec::with_capacity(fanouts.len());
    for &d in fanouts {
        let samples = frontier * expected_samples_per_node(stats.avg_degree, d);
        edges += samples;
        hop_edges.push(samples);
        let fresh = (reachable - seen).max(0.0) * (1.0 - (-samples / reachable).exp());
        seen += fresh;
        frontier = seen;
        hop_nodes.push(seen);
    }
    BatchWorkload {
        batch_size,
        mfg_nodes: seen,
        mfg_edges: edges,
        feat_dim: stats.feat_dim,
        hop_nodes,
        hop_edges,
    }
}

/// Per-epoch totals at a given batch size: `(batches, nodes, edges, bytes)`.
pub fn epoch_totals(
    stats: &DatasetStats,
    fanouts: &[usize],
    batch_size: usize,
) -> (usize, f64, f64, f64) {
    let w = expected_batch(stats, fanouts, batch_size);
    let batches = stats.batches_per_epoch(batch_size);
    (
        batches,
        w.mfg_nodes * batches as f64,
        w.mfg_edges * batches as f64,
        w.transfer_bytes() * batches as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_limits() {
        // Huge fanout: every neighbor taken.
        assert!((expected_samples_per_node(10.0, 10_000) - 10.0).abs() < 1e-6);
        // Tiny fanout relative to degree: ≈ fanout.
        let s = expected_samples_per_node(1_000.0, 5);
        assert!((s - 5.0).abs() < 0.05, "got {s}");
    }

    #[test]
    fn expansion_monotone_in_fanout() {
        let stats = DatasetStats::products();
        let small = expected_batch(&stats, &[5, 5, 5], 1024);
        let large = expected_batch(&stats, &[15, 10, 5], 1024);
        assert!(large.mfg_nodes > small.mfg_nodes);
        assert!(large.mfg_edges > small.mfg_edges);
    }

    #[test]
    fn papers_transfer_volume_matches_paper_measurement() {
        // §3.3: "During a typical epoch with ogbn-papers100M, a total of
        // 164GB are transferred from CPU to GPU."
        let stats = DatasetStats::papers();
        let (_, _, _, bytes) = epoch_totals(&stats, &[15, 10, 5], 1024);
        let gb = bytes / 1e9;
        assert!(
            (120.0..260.0).contains(&gb),
            "epoch transfer volume {gb:.0} GB should be within ~40% of the paper's 164 GB"
        );
    }

    #[test]
    fn products_batch_is_large_fraction_of_graph() {
        // Products MFGs famously blow up to hundreds of thousands of nodes.
        let stats = DatasetStats::products();
        let w = expected_batch(&stats, &[15, 10, 5], 1024);
        assert!(
            (150_000.0..700_000.0).contains(&w.mfg_nodes),
            "products nodes/batch {}",
            w.mfg_nodes
        );
    }

    #[test]
    fn arxiv_expands_to_large_graph_fraction() {
        // arxiv is small enough that a 3-hop batch touches most of it (this
        // is what the real sampler does on matched synthetic graphs too).
        let stats = DatasetStats::arxiv();
        let w = expected_batch(&stats, &[15, 10, 5], 1024);
        assert!(w.mfg_nodes < stats.num_nodes as f64);
        assert!(w.mfg_nodes > 0.3 * stats.num_nodes as f64);
    }

    #[test]
    fn epoch_totals_scale_with_batches() {
        let stats = DatasetStats::arxiv();
        let (batches, nodes, _, _) = epoch_totals(&stats, &[15, 10, 5], 1024);
        assert_eq!(batches, 89);
        let w = expected_batch(&stats, &[15, 10, 5], 1024);
        assert!((nodes - w.mfg_nodes * 89.0).abs() < 1.0);
    }
}
