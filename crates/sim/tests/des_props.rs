//! Property-style tests of the discrete-event simulation engine: random
//! task DAGs must execute with no server overlap, respected dependencies,
//! and a makespan bounded by critical path and total-work arguments.
//!
//! Cases are generated from the workspace's seeded RNG so failures
//! reproduce exactly by seed.

use salient_sim::Simulation;
use salient_tensor::rng::{Rng, StdRng};

/// A random schedule description: resources with server counts, tasks with
/// durations, resource assignments, and backward-pointing dependencies.
#[derive(Debug, Clone)]
struct RandomSchedule {
    servers: Vec<usize>,
    tasks: Vec<(usize, u64, Vec<usize>)>, // (resource, duration, deps)
}

fn random_schedule(rng: &mut StdRng) -> RandomSchedule {
    let num_res = rng.random_range(1usize..4);
    let num_tasks = rng.random_range(1usize..40);
    let servers: Vec<usize> = (0..num_res).map(|_| rng.random_range(1usize..4)).collect();
    let tasks = (0..num_tasks)
        .map(|id| {
            let res = rng.random_range(0..num_res);
            let dur = rng.random_range(0u64..200);
            let n_deps = rng.random_range(0usize..3);
            // Deps must point to earlier tasks.
            let deps: Vec<usize> = (0..n_deps)
                .filter(|_| id > 0)
                .map(|_| rng.random_range(0..1000usize) % id.max(1))
                .collect();
            (res, dur, deps)
        })
        .collect();
    RandomSchedule { servers, tasks }
}

fn build(s: &RandomSchedule) -> Simulation {
    let mut sim = Simulation::new();
    let resources: Vec<_> = s
        .servers
        .iter()
        .enumerate()
        .map(|(i, &k)| sim.resource(format!("r{i}"), k))
        .collect();
    for (id, (res, dur, deps)) in s.tasks.iter().enumerate() {
        let t = sim.task(format!("t{id}"), resources[*res], *dur, deps.clone());
        assert_eq!(t, id);
    }
    sim
}

/// Longest dependency chain (ignoring resources): a lower bound on makespan.
fn critical_path(s: &RandomSchedule) -> u64 {
    let mut finish = vec![0u64; s.tasks.len()];
    for (id, (_, dur, deps)) in s.tasks.iter().enumerate() {
        let ready = deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
        finish[id] = ready + dur;
    }
    finish.into_iter().max().unwrap_or(0)
}

#[test]
fn execution_is_well_formed() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random_schedule(&mut rng);
        let sim = build(&s);
        let ex = sim.run();

        // 1. Dependencies respected.
        for (id, (_, _, deps)) in s.tasks.iter().enumerate() {
            for &d in deps {
                assert!(
                    ex.start[id] >= ex.end[d],
                    "task {id} started before dep {d} finished"
                );
            }
        }

        // 2. Duration honored.
        for (id, (_, dur, _)) in s.tasks.iter().enumerate() {
            assert_eq!(ex.end[id] - ex.start[id], *dur);
        }

        // 3. No two tasks overlap on the same (resource, server) lane.
        let mut lanes: std::collections::HashMap<(usize, usize), Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for (id, (res, dur, _)) in s.tasks.iter().enumerate() {
            if *dur == 0 {
                continue;
            }
            lanes
                .entry((*res, ex.server[id]))
                .or_default()
                .push((ex.start[id], ex.end[id]));
        }
        for ((res, srv), mut intervals) in lanes {
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0,
                    "overlap on resource {res} server {srv}: {pair:?}"
                );
            }
        }

        // 4. Makespan bounds: at least the critical path, at most total work
        //    serialized plus the critical path (loose but universal).
        let cp = critical_path(&s);
        let total: u64 = s.tasks.iter().map(|(_, d, _)| *d).sum();
        assert!(ex.makespan >= cp, "makespan {} < critical path {cp}", ex.makespan);
        assert!(
            ex.makespan <= total + cp,
            "makespan {} > total work {total} + cp {cp}",
            ex.makespan
        );

        // 5. Busy accounting equals summed durations per resource.
        for (res, _) in s.servers.iter().enumerate() {
            let expect: u64 = s
                .tasks
                .iter()
                .filter(|(r, _, _)| *r == res)
                .map(|(_, d, _)| *d)
                .sum();
            assert_eq!(ex.busy[res], expect);
        }
    }
}

#[test]
fn more_servers_cannot_double_makespan() {
    // Greedy list scheduling is subject to Graham anomalies, so adding
    // servers may occasionally *increase* the makespan — but never past
    // Graham's 2x bound relative to the narrower schedule.
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let s = random_schedule(&mut rng);
        let base = build(&s).run().makespan;
        let mut wider = s.clone();
        for k in &mut wider.servers {
            *k += 4;
        }
        let wide = build(&wider).run().makespan;
        assert!(wide <= base * 2 + 1, "anomaly beyond Graham bound: {wide} vs {base}");
    }
}

#[test]
fn determinism() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let s = random_schedule(&mut rng);
        let a = build(&s).run();
        let b = build(&s).run();
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
        assert_eq!(a.makespan, b.makespan);
    }
}
