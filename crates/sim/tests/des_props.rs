//! Property-based tests of the discrete-event simulation engine: random
//! task DAGs must execute with no server overlap, respected dependencies,
//! and a makespan bounded by critical path and total-work arguments.

use proptest::prelude::*;
use salient_sim::Simulation;

/// A random schedule description: resources with server counts, tasks with
/// durations, resource assignments, and backward-pointing dependencies.
#[derive(Debug, Clone)]
struct RandomSchedule {
    servers: Vec<usize>,
    tasks: Vec<(usize, u64, Vec<usize>)>, // (resource, duration, deps)
}

fn schedules() -> impl Strategy<Value = RandomSchedule> {
    (1usize..4, 1usize..40).prop_flat_map(|(num_res, num_tasks)| {
        let servers = prop::collection::vec(1usize..4, num_res..=num_res);
        let tasks = prop::collection::vec(
            (0usize..num_res, 0u64..200, prop::collection::vec(0usize..1000, 0..3)),
            num_tasks..=num_tasks,
        );
        (servers, tasks).prop_map(|(servers, raw)| {
            let tasks = raw
                .into_iter()
                .enumerate()
                .map(|(id, (res, dur, deps))| {
                    // Deps must point to earlier tasks.
                    let deps: Vec<usize> = deps
                        .into_iter()
                        .filter(|_| id > 0)
                        .map(|d| d % id.max(1))
                        .collect();
                    (res, dur, deps)
                })
                .collect();
            RandomSchedule { servers, tasks }
        })
    })
}

fn build(s: &RandomSchedule) -> Simulation {
    let mut sim = Simulation::new();
    let resources: Vec<_> = s
        .servers
        .iter()
        .enumerate()
        .map(|(i, &k)| sim.resource(format!("r{i}"), k))
        .collect();
    for (id, (res, dur, deps)) in s.tasks.iter().enumerate() {
        let t = sim.task(format!("t{id}"), resources[*res], *dur, deps.clone());
        assert_eq!(t, id);
    }
    sim
}

/// Longest dependency chain (ignoring resources): a lower bound on makespan.
fn critical_path(s: &RandomSchedule) -> u64 {
    let mut finish = vec![0u64; s.tasks.len()];
    for (id, (_, dur, deps)) in s.tasks.iter().enumerate() {
        let ready = deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
        finish[id] = ready + dur;
    }
    finish.into_iter().max().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn execution_is_well_formed(s in schedules()) {
        let sim = build(&s);
        let ex = sim.run();

        // 1. Dependencies respected.
        for (id, (_, _, deps)) in s.tasks.iter().enumerate() {
            for &d in deps {
                prop_assert!(ex.start[id] >= ex.end[d],
                    "task {id} started before dep {d} finished");
            }
        }

        // 2. Duration honored.
        for (id, (_, dur, _)) in s.tasks.iter().enumerate() {
            prop_assert_eq!(ex.end[id] - ex.start[id], *dur);
        }

        // 3. No two tasks overlap on the same (resource, server) lane.
        let mut lanes: std::collections::HashMap<(usize, usize), Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for (id, (res, dur, _)) in s.tasks.iter().enumerate() {
            if *dur == 0 {
                continue;
            }
            lanes
                .entry((*res, ex.server[id]))
                .or_default()
                .push((ex.start[id], ex.end[id]));
        }
        for ((res, srv), mut intervals) in lanes {
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0,
                    "overlap on resource {res} server {srv}: {pair:?}");
            }
        }

        // 4. Makespan bounds: at least the critical path, at most total work
        //    serialized plus the critical path (loose but universal).
        let cp = critical_path(&s);
        let total: u64 = s.tasks.iter().map(|(_, d, _)| *d).sum();
        prop_assert!(ex.makespan >= cp, "makespan {} < critical path {cp}", ex.makespan);
        prop_assert!(ex.makespan <= total + cp,
            "makespan {} > total work {total} + cp {cp}", ex.makespan);

        // 5. Busy accounting equals summed durations per resource.
        for (res, _) in s.servers.iter().enumerate() {
            let expect: u64 = s
                .tasks
                .iter()
                .filter(|(r, _, _)| *r == res)
                .map(|(_, d, _)| *d)
                .sum();
            prop_assert_eq!(ex.busy[res], expect);
        }
    }

    #[test]
    fn more_servers_cannot_double_makespan(s in schedules()) {
        // Greedy list scheduling is subject to Graham anomalies, so adding
        // servers may occasionally *increase* the makespan — but never past
        // Graham's 2x bound relative to the narrower schedule.
        let base = build(&s).run().makespan;
        let mut wider = s.clone();
        for k in &mut wider.servers {
            *k += 4;
        }
        let wide = build(&wider).run().makespan;
        prop_assert!(wide <= base * 2 + 1, "anomaly beyond Graham bound: {wide} vs {base}");
    }

    #[test]
    fn determinism(s in schedules()) {
        let a = build(&s).run();
        let b = build(&s).run();
        prop_assert_eq!(a.start, b.start);
        prop_assert_eq!(a.end, b.end);
        prop_assert_eq!(a.makespan, b.makespan);
    }
}
