//! Reverse-mode automatic differentiation on a per-batch tape.
//!
//! Each training iteration builds a fresh [`Tape`]: the forward pass records
//! one node per operation, and [`Tape::backward`] walks the nodes in reverse
//! to produce a [`Gradients`] map. Trainable tensors live outside the tape in
//! [`Param`]s (identified by a stable [`ParamId`]), so a model can be reused
//! across batches, threads hold independent tapes, and the DDP layer can
//! all-reduce gradients by parameter identity.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stable identity of a trainable parameter, unique within the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ParamId(u64);

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

impl ParamId {
    fn fresh() -> Self {
        // Relaxed: ids only need to be unique, not ordered with anything.
        ParamId(NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// A trainable parameter: a value tensor plus an accumulated gradient.
///
/// # Examples
///
/// ```
/// use salient_tensor::{Param, Tensor};
///
/// let mut p = Param::new("w", Tensor::ones([2, 2]));
/// assert_eq!(p.grad().sum(), 0.0);
/// p.zero_grad();
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    id: ParamId,
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of the same shape.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            id: ParamId::fresh(),
            name: name.into(),
            value,
            grad,
        }
    }

    /// The parameter's stable identity.
    pub fn id(&self) -> ParamId {
        self.id
    }

    /// The parameter's name (for debugging and checkpoints).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the value (used by optimizers).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Replaces the value, keeping identity and gradient shape.
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs from the old.
    pub fn set_value(&mut self, value: Tensor) {
        assert_eq!(
            self.value.shape(),
            value.shape(),
            "set_value must preserve shape"
        );
        self.value = value;
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable access to the gradient (used by DDP all-reduce).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs from the value shape.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad.axpy(1.0, g);
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }
}

/// Gradient contributions flowing to the parents of one tape node.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<(usize, Tensor)>>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) backward: Option<BackwardFn>,
    /// Set when this node is a leaf bound to a parameter.
    pub(crate) param: Option<ParamId>,
}

pub(crate) struct TapeInner {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

/// A recording of one forward pass, able to run backpropagation.
///
/// The tape is single-threaded by design (one per rank / per worker); the
/// parallelism in SALIENT lives in batch preparation, not inside a batch's
/// backward pass.
///
/// # Examples
///
/// ```
/// use salient_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let x = tape.constant(Tensor::from_vec(vec![2.0], [1]));
/// let y = x.mul(&x); // y = x^2
/// let grads = tape.backward(&y.sum_all());
/// // dy/dx = 2x = 4
/// assert_eq!(grads.wrt(&x).unwrap().data(), &[4.0]);
/// ```
#[derive(Clone)]
pub struct Tape {
    pub(crate) inner: Rc<TapeInner>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.inner.nodes.borrow().len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            inner: Rc::new(TapeInner {
                nodes: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// Whether the tape has recorded any node.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&self, node: Node) -> Var {
        let mut nodes = self.inner.nodes.borrow_mut();
        nodes.push(node);
        Var {
            tape: Rc::clone(&self.inner),
            id: nodes.len() - 1,
        }
    }

    /// Records a non-trainable input (activations, sliced features).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(Node {
            value,
            backward: None,
            param: None,
        })
    }

    /// Records a leaf bound to a trainable parameter; its gradient appears in
    /// [`Gradients::by_param`] after [`Tape::backward`].
    pub fn param(&self, param: &Param) -> Var {
        self.push(Node {
            value: param.value().clone(),
            backward: None,
            param: Some(param.id()),
        })
    }

    /// Runs reverse-mode differentiation from `output`, which must be a
    /// scalar, and returns gradients for every reachable node.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not on this tape or is not a scalar.
    pub fn backward(&self, output: &Var) -> Gradients {
        assert!(
            Rc::ptr_eq(&self.inner, &output.tape),
            "backward() var from a different tape"
        );
        let nodes = self.inner.nodes.borrow();
        assert_eq!(
            nodes[output.id].value.len(),
            1,
            "backward() requires a scalar output, got shape {}",
            nodes[output.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[output.id] = Some(Tensor::full(
            nodes[output.id].value.shape().clone(),
            1.0,
        ));
        for id in (0..=output.id).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            if let Some(backward) = &nodes[id].backward {
                for (pid, contrib) in backward(&grad) {
                    debug_assert!(pid < id, "gradient must flow to earlier node");
                    match &mut grads[pid] {
                        Some(acc) => acc.axpy(1.0, &contrib),
                        slot @ None => *slot = Some(contrib),
                    }
                }
            }
            grads[id] = Some(grad);
        }
        let mut by_param = HashMap::new();
        for (id, node) in nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, &grads[id]) {
                by_param
                    .entry(pid)
                    .and_modify(|acc: &mut Tensor| acc.axpy(1.0, g))
                    .or_insert_with(|| g.clone());
            }
        }
        Gradients {
            by_node: grads,
            by_param,
        }
    }
}

/// The result of a backward pass: per-node and per-parameter gradients.
#[derive(Debug)]
pub struct Gradients {
    by_node: Vec<Option<Tensor>>,
    by_param: HashMap<ParamId, Tensor>,
}

impl Gradients {
    /// Gradient with respect to a tape variable, if it was reached.
    pub fn wrt(&self, var: &Var) -> Option<&Tensor> {
        self.by_node.get(var.id).and_then(|g| g.as_ref())
    }

    /// Gradient with respect to a parameter, if it was used in the forward
    /// pass.
    pub fn by_param(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(&id)
    }

    /// Accumulates all parameter gradients into the matching [`Param`]s.
    ///
    /// Parameters that did not participate in the forward pass are left
    /// untouched.
    pub fn apply_to<'a>(&self, params: impl IntoIterator<Item = &'a mut Param>) {
        for p in params {
            if let Some(g) = self.by_param.get(&p.id()) {
                p.accumulate_grad(g);
            }
        }
    }

    /// Iterates over `(ParamId, gradient)` pairs.
    pub fn iter_params(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.by_param.iter().map(|(k, v)| (*k, v))
    }
}

/// A value recorded on a [`Tape`]. Cloning is cheap (it is an id plus a
/// reference-counted tape handle).
#[derive(Clone)]
pub struct Var {
    pub(crate) tape: Rc<TapeInner>,
    pub(crate) id: usize,
}

impl Var {
    /// The forward value of this variable.
    pub fn value(&self) -> Tensor {
        // lint: allow(panic-reachability, node ids are indices this tape handed out at push and nodes only grows)
        self.tape.nodes.borrow()[self.id].value.clone()
    }

    /// The shape of the forward value.
    pub fn shape(&self) -> crate::Shape {
        self.tape.nodes.borrow()[self.id].value.shape().clone()
    }

    pub(crate) fn tape(&self) -> Tape {
        Tape {
            inner: Rc::clone(&self.tape),
        }
    }

    pub(crate) fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape, &other.tape),
            "operands recorded on different tapes"
        );
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(id={}, value={:?})", self.id, self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ids_are_unique() {
        let a = Param::new("a", Tensor::zeros([1]));
        let b = Param::new("b", Tensor::zeros([1]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn constant_has_no_param_grad() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::scalar(3.0));
        let g = tape.backward(&x);
        assert_eq!(g.iter_params().count(), 0);
        assert_eq!(g.wrt(&x).unwrap().item(), 1.0);
    }

    #[test]
    fn param_grad_accumulates_across_uses() {
        let p = Param::new("w", Tensor::scalar(5.0));
        let tape = Tape::new();
        let w1 = tape.param(&p);
        let w2 = tape.param(&p);
        let y = w1.add(&w2); // y = w + w
        let g = tape.backward(&y);
        assert_eq!(g.by_param(p.id()).unwrap().item(), 2.0);
    }

    #[test]
    fn apply_to_accumulates() {
        let mut p = Param::new("w", Tensor::scalar(1.0));
        let tape = Tape::new();
        let w = tape.param(&p);
        let y = w.scale(3.0);
        let g = tape.backward(&y);
        g.apply_to([&mut p]);
        g.apply_to([&mut p]);
        assert_eq!(p.grad().item(), 6.0, "two applications accumulate");
        p.zero_grad();
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros([2]));
        tape.backward(&x);
    }

    #[test]
    fn diamond_dependency_accumulates() {
        // y = x*x + x*x; dy/dx = 4x.
        let tape = Tape::new();
        let x = tape.constant(Tensor::scalar(3.0));
        let a = x.mul(&x);
        let b = x.mul(&x);
        let y = a.add(&b);
        let g = tape.backward(&y);
        assert_eq!(g.wrt(&x).unwrap().item(), 12.0);
    }
}
