//! IEEE 754 binary16 ("half") floating point, implemented from scratch.
//!
//! SALIENT stores node features in host memory as half precision to halve the
//! bytes moved during slicing and CPU→GPU transfer (§3, conventional
//! optimization (iii)). GPU compute still happens in `f32`, so the only
//! operations needed are conversion to/from `f32` plus ordering/formatting.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
/// Conversion from `f32` uses round-to-nearest-even, matching hardware
/// `F32 -> F16` conversion semantics.
///
/// # Examples
///
/// ```
/// use salient_tensor::F16;
///
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// assert_eq!(F16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(u16);

const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// The largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// The smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Creates an `F16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `F16` with round-to-nearest-even.
    ///
    /// Values whose magnitude exceeds [`F16::MAX`] become infinity; values
    /// below the subnormal range flush to (signed) zero; NaN stays NaN.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve a quiet-NaN payload bit so NaN stays NaN.
            let nan_payload = if man != 0 { 0x0200 } else { 0 };
            return F16(sign | EXP_MASK | nan_payload);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal range. 13 mantissa bits must be rounded away.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_man = (man >> 13) as u16;
            let round_bits = man & 0x1FFF;
            let mut h = sign | half_exp | half_man;
            // Round to nearest even.
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                h = h.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade or inf)
            }
            return F16(h);
        }
        if unbiased >= -25 {
            // Subnormal half. Shift the implicit leading 1 into the mantissa.
            // The unit in the last place of a subnormal half is 2^-24, so the
            // 24-bit significand (1 implicit + 23 explicit bits, worth
            // 2^(unbiased-23) per bit) must shift right by -(unbiased+1).
            let full_man = man | 0x0080_0000;
            let s = (-unbiased - 1) as u32; // 14..=24
            let half_man = (full_man >> s) as u16;
            let round_mask = (1u32 << s) - 1;
            let round_bits = full_man & round_mask;
            let halfway = 1u32 << (s - 1);
            let mut h = sign | half_man;
            if round_bits > halfway || (round_bits == halfway && (half_man & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts this half back to `f32` exactly (every `F16` value is
    /// representable in `f32`).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: normalize.
                let mut e = -14i32;
                let mut m = m;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Whether this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Whether this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// Whether this value is finite (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts a slice of `f32` into a freshly allocated vector of halves.
pub fn quantize(values: &[f32]) -> Vec<F16> {
    values.iter().map(|&v| F16::from_f32(v)).collect()
}

/// Converts halves back to `f32`, writing into `out`.
///
/// This is the "GPU-side upcast" in the SALIENT transfer path: features are
/// sliced and shipped as binary16 and widened on the device.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn dequantize_into(values: &[F16], out: &mut [f32]) {
    assert_eq!(values.len(), out.len(), "dequantize length mismatch");
    for (o, v) in out.iter_mut().zip(values.iter()) {
        *o = v.to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "value {f}");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let f = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(f).to_f32(), f);
            assert_eq!(F16::from_f32(-f).to_f32(), -f);
        }
    }

    #[test]
    fn constants() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), (2.0f32).powi(-14));
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(F16::from_f32(1e6).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_f32(), f32::NEG_INFINITY);
        // Values just above MAX round to infinity; just below stay finite.
        assert_eq!(F16::from_f32(65520.0).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(65472.0).to_f32(), 65472.0);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals() {
        let tiny = (2.0f32).powi(-24); // smallest positive subnormal half
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let sub = 3.0 * (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(F16::from_f32((2.0f32).powi(-26)).to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties go to
        // even mantissa, i.e. down to 1.0.
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + (2.0f32).powi(-11) + (2.0f32).powi(-16);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + (2.0f32).powi(-10));
    }

    #[test]
    fn quantize_dequantize_slices() {
        let xs = [0.0f32, 1.0, -2.5, 100.25, 0.099975586];
        let q = quantize(&xs);
        let mut out = vec![0.0f32; xs.len()];
        dequantize_into(&q, &mut out);
        for (a, b) in xs.iter().zip(out.iter()) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_relative_error_bound() {
        // Round-to-nearest: relative error at most 2^-11 for normal values.
        let mut x = 1.0f32;
        while x < 60000.0 {
            let h = F16::from_f32(x).to_f32();
            assert!((h - x).abs() <= x * (2.0f32).powi(-11) + f32::EPSILON);
            x *= 1.37;
        }
    }
}
